//! Citation-network federation — the paper's DBLP scenario: regional
//! research communities each hold a biased slice of a bibliographic
//! heterograph (authors / phrases / years, five link types) and jointly
//! train a link predictor for tasks like collaborator or topic
//! recommendation.
//!
//! This example drills into FedDA's *dynamic activation* behaviour: it
//! prints the per-round active-client counts and per-client uplink so you
//! can watch deactivation and the Explore reactivation at work.
//!
//! Run with: `cargo run -p fedda --release --example citation_fl`

use fedda::data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda::fl::{FedAvg, FedDa, FlConfig, FlSystem};
use fedda::hetgraph::split::split_edges;
use fedda::hgn::{HgnConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generated = dblp_like(&PresetOptions {
        scale: 0.002,
        seed: 5,
        ..Default::default()
    });
    let graph = generated.graph;
    println!(
        "bibliographic heterograph: {} nodes ({} types), {} links ({} types)",
        graph.num_nodes(),
        graph.schema().num_node_types(),
        graph.num_edges(),
        graph.schema().num_edge_types()
    );

    let mut rng = StdRng::seed_from_u64(0);
    let split = split_edges(&graph, 0.15, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(8, graph.schema().num_edge_types(), 3);
    let communities = partition_non_iid(&split.train, &pcfg);

    let fl_cfg = FlConfig {
        rounds: 12,
        model: HgnConfig {
            hidden_dim: 8,
            num_layers: 2,
            num_heads: 2,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs: 2,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 5,
        seed: 9,
        parallel: true,
        ..Default::default()
    };

    // Vanilla FedAvg as the reference bill.
    let mut system = FlSystem::new(
        &split.train,
        &split.test,
        communities.clone(),
        fl_cfg.clone(),
    );
    let n_units = system.num_units();
    let fedavg = FedAvg::vanilla().run(&mut system);
    println!(
        "\nFedAvg:       final AUC {:.4}, uplink {} units ({} clients x {} rounds x {} units)",
        fedavg.final_eval.roc_auc,
        fedavg.comm.total_uplink_units(),
        8,
        fl_cfg.rounds,
        n_units
    );

    // FedDA (Explore): watch the activation dynamics round by round.
    let mut system = FlSystem::new(&split.train, &split.test, communities, fl_cfg.clone());
    let fedda = FedDa::explore().run(&mut system);
    println!(
        "FedDA-Explore: final AUC {:.4}, uplink {} units\n",
        fedda.final_eval.roc_auc,
        fedda.comm.total_uplink_units()
    );

    println!("round  active  uplink-units  units/client  test-AUC");
    for (rc, eval) in fedda.comm.rounds().iter().zip(&fedda.curve) {
        println!(
            "{:>5}  {:>6}  {:>12}  {:>12.1}  {:.4}",
            eval.round,
            rc.active_clients,
            rc.uplink_units,
            rc.uplink_units as f64 / rc.active_clients.max(1) as f64,
            eval.roc_auc
        );
    }
    let saved = 1.0
        - fedda.comm.total_uplink_units() as f64 / fedavg.comm.total_uplink_units().max(1) as f64;
    println!(
        "\nFedDA transmitted {:.0}% fewer parameter units than FedAvg.",
        saved * 100.0
    );
}
