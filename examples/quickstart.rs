//! Quickstart: build a tiny federation over a synthetic heterograph and
//! compare FedAvg against both FedDA strategies in under a minute.
//!
//! Run with: `cargo run -p fedda --release --example quickstart`

use fedda::experiment::{Dataset, Experiment, ExperimentConfig, Framework};
use fedda::fl::{FedAvg, FedDa};

fn main() {
    // A small Amazon-like heterograph (one node type, co-view +
    // co-purchase links), split 8 ways with the paper's non-IID protocol.
    let cfg = ExperimentConfig {
        dataset: Dataset::AmazonLike,
        scale: 0.006,
        num_clients: 8,
        rounds: 10,
        runs: 1,
        ..Default::default()
    };
    println!(
        "Federating Simple-HGN link prediction over an {}-like heterograph",
        cfg.dataset.name()
    );
    let exp = Experiment::new(cfg);
    println!(
        "global graph: {} nodes, {} train edges / {} test edges\n",
        exp.split().train.num_nodes(),
        exp.split().train.num_edges(),
        exp.split().test.num_edges()
    );

    for fw in [
        Framework::FedAvg(FedAvg::vanilla()),
        Framework::FedDa(FedDa::restart()),
        Framework::FedDa(FedDa::explore()),
    ] {
        let res = exp.run_framework(&fw);
        println!(
            "{:<20} final AUC {:.4}  best AUC {:.4}  MRR {:.4}  uplink units {:>7.0}",
            res.name,
            res.final_auc.mean,
            res.best_auc.mean,
            res.final_mrr.mean,
            res.uplink_units.mean
        );
    }
    println!("\nFedDA matches (or beats) FedAvg accuracy while uploading fewer parameters.");
}
