//! Archive and reload a synthesized federation.
//!
//! Reproducibility workflow: generate a global heterograph, snapshot it and
//! every client's sub-heterograph to JSON (`fedda_hetgraph::io`), reload
//! them bit-identically, and verify a model evaluated on the original and
//! the reloaded data produces identical metrics.
//!
//! Run with: `cargo run -p fedda --release --example archive_federation`

use fedda::data::{amazon_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda::hetgraph::io::{self, GraphDoc};
use fedda::hetgraph::{split::split_edges, LinkSampler};
use fedda::hgn::{evaluate, GraphView, HgnConfig, SimpleHgn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("fedda_archive_demo");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Synthesize and split.
    let generated = amazon_like(&PresetOptions {
        scale: 0.004,
        seed: 9,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(1);
    let split = split_edges(&generated.graph, 0.10, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(4, 2, 5);
    let clients = partition_non_iid(&split.train, &pcfg);

    // 2. Archive everything.
    io::save_json(&split.train, &dir.join("global_train.json"))?;
    io::save_json(&split.test, &dir.join("global_test.json"))?;
    for (i, c) in clients.iter().enumerate() {
        io::save_json(&c.graph, &dir.join(format!("client_{i}.json")))?;
    }
    let archived: Vec<_> = std::fs::read_dir(&dir)?.collect();
    println!("archived {} graphs to {}", archived.len(), dir.display());

    // 3. Reload and verify bit-identity.
    let train2 = io::load_json(&dir.join("global_train.json"))?;
    assert_eq!(
        GraphDoc::from_graph(&train2),
        GraphDoc::from_graph(&split.train),
        "reloaded train graph differs"
    );
    for (i, c) in clients.iter().enumerate() {
        let g = io::load_json(&dir.join(format!("client_{i}.json")))?;
        assert_eq!(GraphDoc::from_graph(&g), GraphDoc::from_graph(&c.graph));
    }
    println!("reloaded graphs are bit-identical");

    // 4. Metrics computed on original vs reloaded data agree exactly.
    let cfg = HgnConfig {
        hidden_dim: 8,
        num_layers: 1,
        num_heads: 2,
        ..Default::default()
    };
    let (model, params) =
        SimpleHgn::init_params(split.train.schema(), &cfg, &mut StdRng::seed_from_u64(2));
    let test2 = io::load_json(&dir.join("global_test.json"))?;
    let eval = |train: &fedda::hetgraph::HeteroGraph, test: &fedda::hetgraph::HeteroGraph| {
        let view = GraphView::new(train, cfg.add_self_loops);
        let sampler = LinkSampler::new(train);
        let test_pos = LinkSampler::new(test).all_positives();
        let mut rng = StdRng::seed_from_u64(3);
        evaluate(&model, &params, &view, &sampler, &test_pos, 5, &mut rng)
    };
    let original = eval(&split.train, &split.test);
    let reloaded = eval(&train2, &test2);
    assert_eq!(original.roc_auc, reloaded.roc_auc);
    assert_eq!(original.mrr, reloaded.mrr);
    println!(
        "evaluation identical on both copies: AUC {:.4}, MRR {:.4}",
        original.roc_auc, original.mrr
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
