//! Node classification — the companion task on HGN benchmarks: recover the
//! planted community of every author in a DBLP-like heterograph from
//! features + typed structure, using the Simple-HGN encoder with a softmax
//! head (and R-GCN for comparison).
//!
//! Run with: `cargo run -p fedda --release --example node_classification`

use fedda::data::{dblp_like, PresetOptions};
use fedda::hetgraph::NodeTypeId;
use fedda::hgn::{
    GraphView, HgnConfig, LinkPredictor, NodeClassifier, Rgcn, RgcnConfig, SimpleHgn,
};
use fedda::metrics::majority_baseline;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generated = dblp_like(&PresetOptions {
        scale: 0.003,
        seed: 21,
        ..Default::default()
    });
    let g = &generated.graph;
    let k = generated.communities_per_type;
    println!(
        "DBLP-like heterograph: {} nodes, {} edges; classifying authors into {k} communities",
        g.num_nodes(),
        g.num_edges()
    );

    let authors = g.nodes().nodes_of_type(NodeTypeId(0));
    let labels: Vec<u32> = authors
        .iter()
        .map(|&v| generated.communities[v as usize])
        .collect();
    let cut = authors.len() * 7 / 10;
    let (train_nodes, test_nodes) = authors.split_at(cut);
    let (train_labels, test_labels) = labels.split_at(cut);
    let baseline = majority_baseline(test_labels, k);
    println!(
        "{} train / {} test authors; majority baseline accuracy {:.3}\n",
        train_nodes.len(),
        test_nodes.len(),
        baseline
    );

    // Simple-HGN encoder + head.
    let cfg = HgnConfig {
        hidden_dim: 8,
        num_layers: 2,
        num_heads: 2,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(0);
    let (encoder, mut params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
    let clf = NodeClassifier::new(encoder, &mut params, cfg.out_dim(), k, &mut rng);
    let view = GraphView::new(g, cfg.add_self_loops);
    let loss = clf.train(&mut params, &view, train_nodes, train_labels, 80, 5e-3);
    let (acc, f1) = clf.evaluate(&params, &view, test_nodes, test_labels);
    println!("Simple-HGN: final loss {loss:.4}, test accuracy {acc:.3}, macro-F1 {f1:.3}");

    // R-GCN encoder + head (the LinkPredictor seam means the classifier is
    // encoder-agnostic).
    let rgcn_cfg = RgcnConfig {
        hidden_dim: 16,
        num_layers: 2,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(0);
    let (rgcn, mut rgcn_params) = Rgcn::init_params(g.schema(), &rgcn_cfg, &mut rng);
    let rgcn_view = GraphView::new(g, rgcn.uses_self_loops());
    let rgcn_clf = NodeClassifier::new(rgcn, &mut rgcn_params, rgcn_cfg.hidden_dim, k, &mut rng);
    let loss = rgcn_clf.train(
        &mut rgcn_params,
        &rgcn_view,
        train_nodes,
        train_labels,
        80,
        5e-3,
    );
    let (acc, f1) = rgcn_clf.evaluate(&rgcn_params, &rgcn_view, test_nodes, test_labels);
    println!("R-GCN:      final loss {loss:.4}, test accuracy {acc:.3}, macro-F1 {f1:.3}");
    println!("\nBoth encoders recover the planted communities well above the baseline.");
}
