//! Clinic federation — the paper's motivating healthcare scenario (Fig. 1)
//! built with the public API, end to end and from scratch:
//!
//! * a custom clinical schema (patients, drugs, procedures, diseases with
//!   prescribed/underwent/diagnosed/interacts links);
//! * a city-wide latent-factor heterograph;
//! * specialised clinics as non-IID clients (a heart-surgery clinic records
//!   mostly procedures, a psychiatric clinic mostly diagnoses);
//! * FedDA training of a global link predictor no clinic could learn alone.
//!
//! Run with: `cargo run -p fedda --release --example clinic_fl`

use fedda::data::{latent, non_iidness, partition_non_iid, PartitionConfig};
use fedda::fl::{baselines, FedDa, FlConfig, FlSystem};
use fedda::hetgraph::{split::split_edges, Schema};
use fedda::hgn::{HgnConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The clinical heterograph schema of the paper's Fig. 1.
    let mut schema = Schema::new();
    let patient = schema.add_node_type("patient", 24);
    let drug = schema.add_node_type("drug", 16);
    let procedure = schema.add_node_type("procedure", 16);
    let disease = schema.add_node_type("disease", 16);
    schema.add_edge_type("prescribed", patient, drug, false);
    schema.add_edge_type("underwent", patient, procedure, false);
    schema.add_edge_type("diagnosed", patient, disease, false);
    schema.add_edge_type("interacts", patient, patient, true);

    // 2. The (conceptual) city-wide graph: ~400 patients, shared drug /
    //    procedure / disease vocabularies.
    let cfg =
        latent::LatentGraphConfig::new(schema, vec![400, 60, 50, 70], vec![2400, 1800, 2600, 1200]);
    let city = latent::generate(&cfg, 42);
    println!(
        "city-wide clinical heterograph: {} nodes, {} links across {} link types",
        city.graph.num_nodes(),
        city.graph.num_edges(),
        city.graph.schema().num_edge_types()
    );

    // 3. Hold out links for the city-level evaluation task, then synthesise
    //    six specialised clinics (each over-samples 2 of the 4 link types).
    let mut rng = StdRng::seed_from_u64(7);
    let split = split_edges(&city.graph, 0.15, &mut rng);
    let pcfg = PartitionConfig {
        num_clients: 6,
        r_a: 0.35,
        r_b: 0.05,
        specialized_types_per_client: 2,
        seed: 11,
    };
    let clinics = partition_non_iid(&split.train, &pcfg);
    println!(
        "six clinics, mean pairwise non-IIDness (TV distance): {:.3}\n",
        non_iidness(&clinics)
    );
    for (i, clinic) in clinics.iter().enumerate() {
        let names: Vec<&str> = clinic
            .specialized
            .iter()
            .map(|&t| clinic.graph.schema().edge_type(t).name.as_str())
            .collect();
        println!(
            "  clinic {i}: {} local links, specialised in {}",
            clinic.num_edges(),
            names.join(" + ")
        );
    }

    // 4. Federate with FedDA (Explore) and compare against training alone.
    let fl_cfg = FlConfig {
        rounds: 12,
        model: HgnConfig {
            hidden_dim: 8,
            num_layers: 2,
            num_heads: 2,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs: 2,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 5,
        seed: 1,
        parallel: true,
        ..Default::default()
    };
    let mut system = FlSystem::new(&split.train, &split.test, clinics, fl_cfg);

    let local = baselines::run_local_only(&system);
    println!(
        "\nisolated clinics:  mean test AUC {:.4} (± {:.4})",
        local.auc_summary().mean,
        local.auc_summary().std
    );

    let result = FedDa::explore().run(&mut system);
    println!(
        "FedDA federation:  final test AUC {:.4} (best {:.4}), {} parameter units uplinked",
        result.final_eval.roc_auc,
        result.best_auc(),
        result.comm.total_uplink_units()
    );
    println!("\nThe federated model generalises across specialities no single clinic covers.");
}
