//! Efficiency planner — use the paper's closed-form communication model
//! (Eqs. 8–11) to size a FedDA deployment *before* running it: given a
//! federation (M clients, N parameter units, N_d disentangled) and
//! estimates of the retention ratio `r_c` / masking ratio `r_p`, print the
//! expected communication bill of both strategies across a β sweep.
//!
//! Run with: `cargo run -p fedda --release --example efficiency_planner`

use fedda::fl::analysis::{
    explore_ratio_bound, restart_expected_units, restart_period, restart_ratio, EfficiencyInputs,
};

fn main() -> Result<(), String> {
    // A paper-sized deployment: Simple-HGN has ~65 named parameter tensors,
    // ~20 of which are per-edge-type (disentangled); 16 hospitals.
    let inputs = EfficiencyInputs {
        m: 16,
        n: 65,
        n_d: 20,
        r_c: 0.8,
        r_p: 0.5,
    };
    inputs.validate()?;
    println!(
        "Deployment: M={} clients, N={} units (N_d={} disentangled), r_c={}, r_p={}\n",
        inputs.m, inputs.n, inputs.n_d, inputs.r_c, inputs.r_p
    );

    println!("Restart strategy (Eqs. 8-9):");
    println!(
        "{:>8} {:>10} {:>16} {:>14}",
        "beta_r", "t0 rounds", "E[units]/cycle", "vs FedAvg"
    );
    for beta_r in [0.2, 0.4, 0.6, 0.8] {
        let t0 = restart_period(inputs.r_c, beta_r);
        let expected = restart_expected_units(&inputs, t0);
        let ratio = restart_ratio(&inputs, beta_r);
        println!(
            "{beta_r:>8.2} {t0:>10} {expected:>16.0} {ratio:>13.1}%",
            ratio = ratio * 100.0
        );
    }

    println!("\nExplore strategy (Eq. 11 upper bound):");
    println!("{:>8} {:>16}", "beta_e", "bound vs FedAvg");
    for beta_e in [0.33, 0.5, 0.667, 0.83] {
        let bound = explore_ratio_bound(&inputs, beta_e);
        println!("{beta_e:>8.3} {bound:>15.1}%", bound = bound * 100.0);
    }

    println!("\nSensitivity: how the Explore bound moves with masking depth r_p (beta_e = 0.667):");
    for r_p in [0.2, 0.4, 0.6, 0.8] {
        let inp = EfficiencyInputs { r_p, ..inputs };
        println!(
            "  r_p = {r_p:.1}  →  ≤ {:.1}% of FedAvg traffic",
            explore_ratio_bound(&inp, 0.667) * 100.0
        );
    }
    println!(
        "\nReading: β controls how aggressively clients stay deactivated; smaller β\n\
         saves more traffic but (per the paper's Fig. 6) risks final accuracy —\n\
         the paper lands on β_r = 0.4 and β_e = 0.667 as the sweet spots."
    );
    Ok(())
}
