//! Figure 5 — convergence curves with 16 clients: mean-of-runs curves for
//! Global / FedAvg / FedDA-Restart / FedDA-Explore (panels a–b) and
//! best/worst envelopes for the FL frameworks (panels c–d), on both
//! datasets. Also prints the RQ3 rounds-to-threshold comparison.
//!
//! Usage: `cargo run -p fedda-bench --release --bin fig5 [--quick|--paper]`

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::{FedAvg, FedDa};
use fedda::report;
use fedda_bench::{base_config, maybe_write_json, render_curve, Options};
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let mut json_blobs = Vec::new();

    for dataset in [Dataset::DblpLike, Dataset::AmazonLike] {
        let mut cfg = base_config(dataset, &opts);
        cfg.num_clients = opts.get("clients").unwrap_or(16);
        let exp = Experiment::new(cfg);
        println!(
            "== Fig. 5: {} convergence, M={} ({} runs x {} rounds) ==\n",
            dataset.name(),
            exp.config().num_clients,
            exp.config().runs,
            exp.config().rounds
        );
        let frameworks = [
            Framework::Global,
            Framework::FedAvg(FedAvg::vanilla()),
            Framework::FedDa(FedDa::restart()),
            Framework::FedDa(FedDa::explore()),
        ];
        let mut results = Vec::new();
        for fw in &frameworks {
            let res = exp.run_framework(fw);
            println!(
                "{}",
                render_curve(
                    &format!("{} (mean)", res.name),
                    &res.eval_rounds,
                    &res.auc_curves.mean_curve()
                )
            );
            results.push(res);
        }
        let mut chart = fedda::plot::AsciiChart::new(64, 14);
        for res in &results {
            chart.series(res.name.clone(), &res.auc_curves.mean_curve());
        }
        println!("{}", chart.render());
        println!("-- best/worst envelopes (Fig. 5c/5d style) --");
        for res in &results[1..] {
            println!(
                "{}",
                render_curve(
                    &format!("{} best", res.name),
                    &res.eval_rounds,
                    &res.auc_curves.max_curve()
                )
            );
            println!(
                "{}",
                render_curve(
                    &format!("{} worst", res.name),
                    &res.eval_rounds,
                    &res.auc_curves.min_curve()
                )
            );
        }

        // RQ3: rounds needed to reach FedAvg's final mean AUC.
        let fedavg_final = results[1]
            .auc_curves
            .mean_curve()
            .last()
            .copied()
            .unwrap_or(0.5);
        println!("-- rounds to reach FedAvg's final mean AUC ({fedavg_final:.4}) --");
        for res in &results[1..] {
            // rounds_to_reach returns a curve *position*; translate it to
            // the true round via eval_rounds (they differ when the eval
            // cadence is sparse).
            match res
                .auc_curves
                .rounds_to_reach(fedavg_final)
                .map(|pos| res.eval_rounds.get(pos).copied().unwrap_or(pos))
            {
                Some(r) => println!("{:<20} round {}", res.name, r),
                None => println!("{:<20} not reached", res.name),
            }
        }
        println!();
        json_blobs.push(report::experiment_to_json(
            &format!("fig5_{}", dataset.name()),
            json!({"dataset": dataset.name(), "clients": exp.config().num_clients}),
            &results,
        ));
    }

    maybe_write_json(&opts, &json!(json_blobs));
}
