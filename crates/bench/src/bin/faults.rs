//! Degradation under faults — how gracefully each protocol loses accuracy
//! (and how its communication bill shifts) as the client dropout rate
//! rises, with stragglers and corruption riding along at half the rate.
//!
//! The interesting comparison is FedDA vs FedAvg: FedDA's activation
//! machinery treats a faulted client as deactivated and re-admits it
//! through Restart/Explore, so real failures exercise exactly the dynamics
//! the paper motivates with simulated masks.
//!
//! Usage: `cargo run -p fedda-bench --release --bin faults
//! [--quick|--paper] [--rate-steps n] [--json out.json]`
//!
//! Each row injects `drop=r, straggle=r/2 (delay ≤ 2, discount γ=0.5),
//! corrupt=r/2 (NaN)`; pass `--faults <spec>` to any *other* bench binary
//! to run its table under a custom fault mix instead.

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::{Corruption, FaultConfig, FedAvg, FedDa, StalenessPolicy};
use fedda::table::TextTable;
use fedda_bench::{base_config, maybe_write_json, pm, Options};
use serde_json::json;

/// The mixed fault schedule at headline dropout rate `r`.
fn mix(rate: f64) -> Option<FaultConfig> {
    if rate == 0.0 {
        return None;
    }
    Some(FaultConfig {
        dropout: rate,
        straggler: rate / 2.0,
        max_staleness: 2,
        corruption: rate / 2.0,
        corruption_kind: Corruption::NaN,
        staleness: StalenessPolicy::Discount { gamma: 0.5 },
        ..Default::default()
    })
}

fn main() {
    let opts = Options::from_env();
    let rates: Vec<f64> = match opts.get::<usize>("rate-steps") {
        Some(n) => (0..n)
            .map(|i| 0.4 * i as f64 / (n - 1).max(1) as f64)
            .collect(),
        None => vec![0.0, 0.1, 0.2, 0.3],
    };
    let frameworks = [
        Framework::FedAvg(FedAvg::vanilla()),
        Framework::FedDa(FedDa::restart()),
        Framework::FedDa(FedDa::explore()),
    ];
    let mut json_blobs = Vec::new();
    let mut table = TextTable::new(&["Fault rate", "Framework", "AUC", "MRR", "Uplink", "Faults"]);
    for &rate in &rates {
        let mut cfg = base_config(Dataset::DblpLike, &opts);
        cfg.faults = mix(rate);
        let exp = Experiment::new(cfg);
        eprintln!(
            "running fault rate {rate:.2} ({} runs x {} rounds)...",
            exp.config().runs,
            exp.config().rounds
        );
        for framework in &frameworks {
            let res = exp.run_framework(framework);
            // One representative run for the fault count (the schedule is
            // per-seed, so counts vary across runs).
            let mut system = exp.system_for_run(0);
            let faults = match framework.protocol() {
                Some(mut p) => fedda::fl::RoundDriver::new()
                    .run(p.as_mut(), &mut system)
                    .map(|r| r.faults.len())
                    .unwrap_or(0),
                None => 0,
            };
            table.row(&[
                format!("{rate:.2}"),
                res.name.clone(),
                pm(&res.final_auc),
                pm(&res.final_mrr),
                format!("{:.0}", res.uplink_units.mean),
                faults.to_string(),
            ]);
            json_blobs.push(json!({
                "rate": rate, "framework": res.name,
                "final_auc": res.final_auc.mean, "final_auc_std": res.final_auc.std,
                "final_mrr": res.final_mrr.mean,
                "uplink_units": res.uplink_units.mean,
                "fault_events_run0": faults,
            }));
        }
    }
    println!("Degradation under faults (DBLP-like, mixed dropout/straggler/corruption)\n");
    println!("{}", table.render());
    println!(
        "(Dropout rate r also injects stragglers at r/2 with gamma=0.5 staleness\n discounting and NaN corruption at r/2; corrupted updates are rejected by\n the server's non-finite check. AUC should degrade gracefully, not collapse.)"
    );

    maybe_write_json(&opts, &json!(json_blobs));
}
