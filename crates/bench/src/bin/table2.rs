//! Table 2 — link prediction results (ROC-AUC and MRR, mean ± std over
//! runs) for the full protocol zoo — Global / Local / FedAvg / FedProx /
//! FedDyn / FedAdam / FedDA-Restart / FedDA-Explore — on DBLP-like
//! (M ∈ {4, 8, 16}) and Amazon-like (M ∈ {8, 16}) federations, situating
//! FedDA against the standard non-IID baselines.
//!
//! Usage: `cargo run -p fedda-bench --release --bin table2 [--quick|--paper]`
//! Optional: `--dataset dblp|amazon` to run one dataset only. The
//! FedProx/FedDyn/FedAdam hyper-parameter knobs (`--mu`, `--alpha`,
//! `--server-lr`, `--beta1`, `--beta2`, `--adam-eps`) apply here too.

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::{FedAvg, FedDa};
use fedda::report;
use fedda::table::TextTable;
use fedda_bench::parse_framework;
use fedda_bench::{base_config, maybe_write_json, pm, Options};
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let which = opts.get_str("dataset").map(str::to_string);
    let mut json_blobs = Vec::new();

    let grid: &[(Dataset, &[usize])] = &[
        (Dataset::DblpLike, &[4, 8, 16]),
        (Dataset::AmazonLike, &[8, 16]),
    ];

    for &(dataset, client_counts) in grid {
        if let Some(w) = &which {
            let keep = match dataset {
                Dataset::DblpLike => w.eq_ignore_ascii_case("dblp"),
                Dataset::AmazonLike => w.eq_ignore_ascii_case("amazon"),
            };
            if !keep {
                continue;
            }
        }
        for &m in client_counts {
            let mut cfg = base_config(dataset, &opts);
            cfg.num_clients = m;
            let exp = Experiment::new(cfg);
            println!(
                "== Table 2: {} with M={} clients ({} runs, {} rounds, scale {}) ==",
                dataset.name(),
                m,
                exp.config().runs,
                exp.config().rounds,
                exp.config().scale
            );
            let frameworks = [
                Framework::Global,
                Framework::Local,
                Framework::FedAvg(FedAvg::vanilla()),
                // The hyper-parameters of the three ports come from the
                // shared knob flags (protocol defaults when omitted).
                parse_framework("fedprox", &opts).expect("known framework"),
                parse_framework("feddyn", &opts).expect("known framework"),
                parse_framework("fedadam", &opts).expect("known framework"),
                Framework::FedDa(FedDa::restart()),
                Framework::FedDa(FedDa::explore()),
            ];
            let mut table =
                TextTable::new(&["Framework", "ROC-AUC", "MRR", "Best AUC", "Uplink units"]);
            let mut results = Vec::new();
            for fw in &frameworks {
                let res = exp.run_framework(fw);
                table.row(&[
                    res.name.clone(),
                    pm(&res.final_auc),
                    pm(&res.final_mrr),
                    pm(&res.best_auc),
                    format!("{:.0}", res.uplink_units.mean),
                ]);
                results.push(res);
            }
            println!("{}", table.render());
            json_blobs.push(report::experiment_to_json(
                &format!("table2_{}_M{}", dataset.name(), m),
                json!({"dataset": dataset.name(), "clients": m,
                       "rounds": exp.config().rounds, "runs": exp.config().runs,
                       "scale": exp.config().scale}),
                &results,
            ));
        }
    }

    maybe_write_json(&opts, &json!(json_blobs));
}
