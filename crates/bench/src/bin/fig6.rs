//! Figure 6 — hyper-parameter studies on DBLP-like with 16 clients:
//! (a) `β_r` for the Restart strategy, (b) `α` for the Explore strategy,
//! (c) `β_e` for the Explore strategy. Prints mean test-AUC curves per
//! setting plus the final/best summary.
//!
//! Usage: `cargo run -p fedda-bench --release --bin fig6 [--quick|--paper]`

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::{FedDa, Reactivation};
use fedda::report;
use fedda_bench::{base_config, maybe_write_json, render_curve, Options};
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let mut cfg = base_config(Dataset::DblpLike, &opts);
    cfg.num_clients = opts.get("clients").unwrap_or(16);
    let exp = Experiment::new(cfg);
    let mut json_blobs = Vec::new();

    println!(
        "== Fig. 6: hyper-parameter studies ({} clients, {} runs x {} rounds) ==\n",
        exp.config().num_clients,
        exp.config().runs,
        exp.config().rounds
    );

    println!("-- (a) beta_r for Restart (alpha = 0.5) --");
    for beta_r in [0.2, 0.4, 0.6, 0.8] {
        let mut fedda = FedDa::restart();
        fedda.strategy = Reactivation::Restart { beta_r };
        let res = exp.run_framework(&Framework::FedDa(fedda));
        println!(
            "{}",
            render_curve(
                &format!("beta_r={beta_r}"),
                &res.eval_rounds,
                &res.auc_curves.mean_curve()
            )
        );
        println!(
            "  final={} best={} uplink={:.0}\n",
            res.final_auc.fmt_pm(),
            res.best_auc.fmt_pm(),
            res.uplink_units.mean
        );
        json_blobs.push(json!({"panel": "a", "beta_r": beta_r,
            "data": report::framework_to_json(&res)}));
    }

    println!("-- (b) alpha for Explore (beta_e = 0.667) --");
    for alpha in [0.25, 0.5, 0.75] {
        let mut fedda = FedDa::explore();
        fedda.alpha = alpha;
        let res = exp.run_framework(&Framework::FedDa(fedda));
        println!(
            "{}",
            render_curve(
                &format!("alpha={alpha}"),
                &res.eval_rounds,
                &res.auc_curves.mean_curve()
            )
        );
        println!(
            "  final={} best={} uplink={:.0}\n",
            res.final_auc.fmt_pm(),
            res.best_auc.fmt_pm(),
            res.uplink_units.mean
        );
        json_blobs.push(json!({"panel": "b", "alpha": alpha,
            "data": report::framework_to_json(&res)}));
    }

    println!("-- (c) beta_e for Explore (alpha = 0.5) --");
    for beta_e in [0.33, 0.5, 0.667, 0.83] {
        let mut fedda = FedDa::explore();
        fedda.strategy = Reactivation::Explore { beta_e };
        let res = exp.run_framework(&Framework::FedDa(fedda));
        println!(
            "{}",
            render_curve(
                &format!("beta_e={beta_e}"),
                &res.eval_rounds,
                &res.auc_curves.mean_curve()
            )
        );
        println!(
            "  final={} best={} uplink={:.0}\n",
            res.final_auc.fmt_pm(),
            res.best_auc.fmt_pm(),
            res.uplink_units.mean
        );
        json_blobs.push(json!({"panel": "c", "beta_e": beta_e,
            "data": report::framework_to_json(&res)}));
    }

    maybe_write_json(&opts, &json!(json_blobs));
}
