//! The accuracy-vs-communication frontier under uplink compression: every
//! protocol × codec cell reports the final ROC-AUC next to the *ledgered*
//! cumulative uplink bytes, so the table shows what each compression ratio
//! actually buys — and what it costs in accuracy. Degradation is reported,
//! never hidden: the ΔAUC column is the drop (or gain) against the same
//! protocol's uncompressed run.
//!
//! Usage: `cargo run -p fedda-bench --release --bin auc_vs_bytes
//! [--quick|--paper] [--dataset dblp|amazon] [--json out.json]`
//!
//! The codec sweep is fixed (none, ident, f16, q8, topk:0.25, topk:0.1);
//! `--compress` is therefore rejected here — it would silently contradict
//! the sweep. All other shared flags (`--rounds`, `--runs`, `--faults`,
//! `--runtime async`, …) apply to every cell uniformly.

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::{Compression, FedAvg, FedDa};
use fedda::table::TextTable;
use fedda_bench::{base_config, maybe_write_json, pm, usage, Options};
use serde_json::json;

/// The codec sweep, densest first: `None` is the uncompressed baseline,
/// `ident` must match it byte-for-byte, then the lossy codecs in order of
/// shrinking effective wire size per masked scalar (f16 = 2 B, topk:0.25 =
/// 8 B × 0.25 ≤ 2 B, q8 = 1 B, topk:0.1 = 0.8 B).
fn codecs(quick: bool) -> Vec<Option<Compression>> {
    let mut list = vec![
        None,
        Some(Compression::Identity),
        Some(Compression::QuantF16),
        Some(Compression::TopK { frac: 0.25 }),
        Some(Compression::QuantI8),
    ];
    if !quick {
        list.push(Some(Compression::TopK { frac: 0.1 }));
    }
    list
}

fn main() {
    let opts = Options::from_env();
    if opts.has("compress") {
        eprintln!(
            "error: auc_vs_bytes sweeps every codec itself; drop --compress\n{}",
            usage()
        );
        std::process::exit(2);
    }
    let dataset = match opts.get_str("dataset").unwrap_or("dblp") {
        d if d.eq_ignore_ascii_case("amazon") => Dataset::AmazonLike,
        _ => Dataset::DblpLike,
    };
    let frameworks = if opts.quick {
        vec![
            Framework::FedAvg(FedAvg::vanilla()),
            Framework::FedDa(FedDa::explore()),
        ]
    } else {
        vec![
            Framework::FedAvg(FedAvg::vanilla()),
            Framework::FedDa(FedDa::restart()),
            Framework::FedDa(FedDa::explore()),
        ]
    };

    let mut table = TextTable::new(&[
        "Framework",
        "Codec",
        "AUC",
        "dAUC",
        "Uplink B",
        "Ratio",
        "Scalars",
    ]);
    let mut json_blobs = Vec::new();
    for framework in &frameworks {
        let mut baseline_auc = f64::NAN;
        let mut baseline_bytes = f64::NAN;
        let mut prev_bytes = f64::INFINITY;
        for codec in codecs(opts.quick) {
            let mut cfg = base_config(dataset, &opts);
            cfg.compression = codec;
            let exp = Experiment::new(cfg);
            let label = codec.map_or_else(|| "none".to_string(), |c| c.label());
            eprintln!(
                "running {} / {label} ({} runs x {} rounds)...",
                framework.name(),
                exp.config().runs,
                exp.config().rounds
            );
            let res = exp.run_framework(framework);
            if codec.is_none() {
                baseline_auc = res.final_auc.mean;
                baseline_bytes = res.uplink_bytes.mean;
            }
            let ratio = res.uplink_bytes.mean / baseline_bytes;
            // The frontier must be a frontier: under a fixed mask schedule
            // a denser codec never ledgers fewer bytes than a sparser one
            // (ident == none exactly). Only FedAvg's masks are
            // trajectory-independent; FedDA's dynamic activation reacts to
            // the lossy updates, so its masked volume may drift between
            // codecs — that drift is reported via the Ratio column, not
            // asserted away.
            if matches!(framework, Framework::FedAvg(_)) {
                assert!(
                    res.uplink_bytes.mean <= prev_bytes + 1e-9,
                    "{} / {label}: ledgered bytes rose along the sweep ({} > {prev_bytes})",
                    framework.name(),
                    res.uplink_bytes.mean
                );
            }
            prev_bytes = res.uplink_bytes.mean;
            table.row(&[
                res.name.clone(),
                label.clone(),
                pm(&res.final_auc),
                format!("{:+.4}", res.final_auc.mean - baseline_auc),
                format!("{:.0}", res.uplink_bytes.mean),
                format!("{:.3}", ratio),
                format!("{:.0}", res.uplink_scalars.mean),
            ]);
            json_blobs.push(json!({
                "framework": res.name, "codec": label,
                "final_auc": res.final_auc.mean, "final_auc_std": res.final_auc.std,
                "delta_auc": res.final_auc.mean - baseline_auc,
                "uplink_bytes": res.uplink_bytes.mean,
                "bytes_ratio": ratio,
                "uplink_scalars": res.uplink_scalars.mean,
                "uplink_units": res.uplink_units.mean,
            }));
        }
    }
    println!(
        "AUC vs ledgered uplink bytes ({}, mask-then-compress)\n",
        dataset.name()
    );
    println!("{}", table.render());
    println!(
        "(Uplink B is the comm ledger's cumulative compressed payload bytes,\n charged at arrival. 'ident' must match 'none' exactly; lossy codecs\n trade the dAUC column for the Ratio column. FedAvg's bytes shrink\n monotonically along the sweep by construction; FedDA's dynamic masks\n react to the lossy updates, so its Ratio can drift off the nominal\n codec ratio — that drift is part of the result.)"
    );

    maybe_write_json(&opts, &json!(json_blobs));
}
