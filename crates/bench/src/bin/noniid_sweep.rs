//! Non-IIDness sweep (beyond the paper): how FedDA's advantage over FedAvg
//! moves with the *strength* of the local bias. The paper fixes
//! `r_a = 0.3, r_b = 0.05`; sweeping `r_b` from `r_a` (IID-like) down to
//! near zero (extreme specialisation) traces the regime where dynamic
//! activation pays off.
//!
//! Usage: `cargo run -p fedda-bench --release --bin noniid_sweep [--quick]
//! [--json out.json]`

use fedda::data::{non_iidness, partition_non_iid, PartitionConfig};
use fedda::experiment::{Dataset, SPLIT_STREAM_TWEAK};
use fedda::fl::{FedAvg, FedDa, FlConfig, FlSystem};
use fedda::hetgraph::split::split_edges;
use fedda::table::TextTable;
use fedda_bench::{base_config, experiment_model, experiment_train, maybe_write_json, Options};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let cfg = base_config(Dataset::DblpLike, &opts);
    let m = opts.get("clients").unwrap_or(8usize);
    let preset = fedda::data::PresetOptions {
        scale: cfg.scale,
        seed: cfg.seed,
        ..Default::default()
    };
    let generated = fedda::data::dblp_like(&preset);
    // Same split stream as `Experiment::new` — this sweep re-derives the
    // split outside the Experiment facade but must see identical data.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ SPLIT_STREAM_TWEAK);
    let split = split_edges(&generated.graph, 0.15, &mut rng);

    println!(
        "== Non-IIDness sweep: DBLP-like, M={m}, {} rounds, r_a = 0.30 ==\n",
        cfg.rounds
    );
    let mut json_blobs = Vec::new();
    let mut table = TextTable::new(&[
        "r_b",
        "non-IIDness",
        "FedAvg AUC",
        "FedDA AUC",
        "gain",
        "uplink ratio",
    ]);
    for r_b in [0.30, 0.15, 0.05, 0.01] {
        let pcfg = PartitionConfig {
            num_clients: m,
            r_a: 0.30,
            r_b,
            specialized_types_per_client: 2,
            seed: cfg.seed,
        };
        let clients = partition_non_iid(&split.train, &pcfg);
        let bias = non_iidness(&clients);
        let fl_cfg = FlConfig {
            rounds: cfg.rounds,
            model: experiment_model(opts.paper),
            train: experiment_train(),
            eval_negatives: 5,
            seed: cfg.seed,
            ..Default::default()
        };
        let mut sys_avg = FlSystem::new(&split.train, &split.test, clients.clone(), fl_cfg.clone());
        let fedavg = FedAvg::vanilla().run(&mut sys_avg);
        let mut sys_da = FlSystem::new(&split.train, &split.test, clients, fl_cfg);
        let fedda = FedDa::explore().run(&mut sys_da);
        let uplink_ratio =
            fedda.comm.total_uplink_units() as f64 / fedavg.comm.total_uplink_units().max(1) as f64;
        table.row(&[
            format!("{r_b:.2}"),
            format!("{bias:.3}"),
            format!("{:.4}", fedavg.best_auc()),
            format!("{:.4}", fedda.best_auc()),
            format!("{:+.4}", fedda.best_auc() - fedavg.best_auc()),
            format!("{uplink_ratio:.2}"),
        ]);
        json_blobs.push(json!({
            "r_b": r_b, "non_iidness": bias,
            "fedavg_best_auc": fedavg.best_auc(),
            "fedda_best_auc": fedda.best_auc(),
            "uplink_ratio": uplink_ratio,
        }));
    }
    println!("{}", table.render());
    println!(
        "Reading: as r_b shrinks the federation grows more biased (non-IIDness\n\
         column) and dynamic activation's savings and relative accuracy matter\n\
         more — the regime the paper targets."
    );

    maybe_write_json(&opts, &json!(json_blobs));
}
