//! Table 3 — average total amount of transmitted gradients (parameter
//! units uplinked over the whole run) for FedAvg vs FedDA on both datasets
//! with varying client counts.
//!
//! Usage: `cargo run -p fedda-bench --release --bin table3 [--quick|--paper]`

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::{FedAvg, FedDa};
use fedda::table::TextTable;
use fedda_bench::{base_config, maybe_write_json, Options};
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let grid: &[(Dataset, &[usize])] = &[
        (Dataset::DblpLike, &[4, 8, 16]),
        (Dataset::AmazonLike, &[8, 16]),
    ];
    let mut json_blobs = Vec::new();

    let mut table = TextTable::new(&[
        "Dataset",
        "M",
        "FedAvg",
        "FedDA 1",
        "FedDA 2",
        "FedDA1/FedAvg",
        "FedDA2/FedAvg",
    ]);
    for &(dataset, client_counts) in grid {
        for &m in client_counts {
            let mut cfg = base_config(dataset, &opts);
            cfg.num_clients = m;
            let exp = Experiment::new(cfg);
            eprintln!(
                "running {} M={} ({} runs x {} rounds)...",
                dataset.name(),
                m,
                exp.config().runs,
                exp.config().rounds
            );
            let fedavg = exp.run_framework(&Framework::FedAvg(FedAvg::vanilla()));
            let fedda1 = exp.run_framework(&Framework::FedDa(FedDa::restart()));
            let fedda2 = exp.run_framework(&Framework::FedDa(FedDa::explore()));
            let base = fedavg.uplink_units.mean.max(1.0);
            table.row(&[
                dataset.name().into(),
                m.to_string(),
                format!("{:.0}", fedavg.uplink_units.mean),
                format!("{:.0}", fedda1.uplink_units.mean),
                format!("{:.0}", fedda2.uplink_units.mean),
                format!("{:.2}", fedda1.uplink_units.mean / base),
                format!("{:.2}", fedda2.uplink_units.mean / base),
            ]);
            json_blobs.push(json!({
                "dataset": dataset.name(), "clients": m,
                "fedavg": fedavg.uplink_units.mean,
                "fedda_restart": fedda1.uplink_units.mean,
                "fedda_explore": fedda2.uplink_units.mean,
            }));
        }
    }
    println!("Table 3: Average total transmitted parameter units\n");
    println!("{}", table.render());
    println!("(Paper: FedDA reduces FedAvg's transmission by roughly 25-50%\n on both datasets; ratios above reproduce the direction and rough size.)");

    maybe_write_json(&opts, &json!(json_blobs));
}
