//! Eqs. 8–11 — the closed-form communication-efficiency model, validated
//! against the simulator: we run FedDA, estimate `r_c` and `r_p` from the
//! observed rounds, feed them to the analytic formulas, and compare the
//! predicted uplink against the measured one.
//!
//! Usage: `cargo run -p fedda-bench --release --bin efficiency_model [--quick]
//! [--json out.json]`

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::{analysis, FedDa, Reactivation};
use fedda::table::TextTable;
use fedda_bench::{base_config, maybe_write_json, Options};
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let mut cfg = base_config(Dataset::DblpLike, &opts);
    cfg.num_clients = opts.get("clients").unwrap_or(8);
    cfg.runs = 1; // one run is enough to fit the analytic model
    let exp = Experiment::new(cfg);
    let system = exp.system_for_run(0);
    let m = system.num_clients();
    let n = system.num_units();
    let n_d = system.num_disentangled_units();

    println!("== Analytic communication model (Eqs. 8-11) vs simulation ==");
    println!("M = {m}, N = {n} units, N_d = {n_d} disentangled units\n");

    let mut json_blobs = Vec::new();
    let mut table = TextTable::new(&[
        "Strategy",
        "r_c (obs)",
        "r_p (obs)",
        "Measured uplink",
        "Predicted",
        "Pred/Meas",
        "FedAvg ratio",
    ]);

    for (label, fedda) in [
        ("Restart b=0.4", FedDa::restart()),
        ("Explore b=0.667", FedDa::explore()),
    ] {
        let res = exp.run_framework(&Framework::FedDa(fedda.clone()));
        let rounds = res.auc_curves.num_rounds();
        let measured = res.uplink_units.mean;
        let fedavg_total = (rounds * m * n) as f64;

        // Estimate r_c: mean ratio of consecutive active-client counts in
        // shrinking phases; estimate r_p: mean masked fraction per active
        // client after round 0.
        let mut sys = exp.system_for_run(0);
        let run = fedda.run(&mut sys);
        let comm = run.comm.rounds();
        let mut rc_samples = Vec::new();
        let mut rp_samples = Vec::new();
        for w in comm.windows(2) {
            if w[1].active_clients <= w[0].active_clients && w[0].active_clients > 0 {
                rc_samples.push(w[1].active_clients as f64 / w[0].active_clients as f64);
            }
        }
        for rc_round in comm.iter().skip(1) {
            if rc_round.active_clients > 0 {
                let per_client = rc_round.uplink_units as f64 / rc_round.active_clients as f64;
                let masked_units = (n as f64 - per_client).max(0.0);
                rp_samples.push((masked_units / n_d as f64).min(1.0));
            }
        }
        let r_c = mean(&rc_samples).unwrap_or(1.0).clamp(0.01, 1.0);
        let r_p = mean(&rp_samples).unwrap_or(0.0).clamp(0.0, 1.0);

        let inputs = analysis::EfficiencyInputs {
            m,
            n,
            n_d,
            r_c,
            r_p,
        };
        let predicted = match fedda.strategy {
            Reactivation::Restart { beta_r } => {
                let t0 = analysis::restart_period(r_c, beta_r).min(rounds.max(1));
                let cycles = (rounds as f64 / t0 as f64).max(1.0);
                analysis::restart_expected_units(&inputs, t0) * cycles
            }
            Reactivation::Explore { beta_e } => {
                // First round is full-cost; later rounds bounded by Eq. 11.
                let per_round_bound =
                    analysis::explore_ratio_bound(&inputs, beta_e) * (m * n) as f64;
                (m * n) as f64 + per_round_bound * (rounds.saturating_sub(1)) as f64
            }
        };
        table.row(&[
            label.into(),
            format!("{r_c:.3}"),
            format!("{r_p:.3}"),
            format!("{measured:.0}"),
            format!("{predicted:.0}"),
            format!("{:.2}", predicted / measured.max(1.0)),
            format!("{:.2}", measured / fedavg_total),
        ]);
        json_blobs.push(json!({
            "strategy": label,
            "r_c": r_c, "r_p": r_p,
            "measured_uplink": measured, "predicted_uplink": predicted,
            "fedavg_uplink": fedavg_total,
        }));
    }
    println!("{}", table.render());
    println!(
        "Prediction within ~2x of measurement validates the Eqs. 8-11 model;\n\
         the FedAvg ratio column is the paper's headline savings."
    );

    maybe_write_json(&opts, &json!(json_blobs));
}

fn mean(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}
