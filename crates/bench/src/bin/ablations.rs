//! Ablations of the design choices DESIGN.md §4 calls out:
//!
//! 1. mask-update rule — §5.3's gradient-mean rule vs median / quantile
//!    thresholds (the paper's footnote-2 future work) vs literal Eq. 7;
//! 2. encoder — Simple-HGN vs vanilla GAT (no edge-type attention), and
//!    the released Simple-HGN's attention-residual trick;
//! 3. decoder — dot product vs DistMult;
//! 4. explore cool-down on vs off;
//! 5. deactivation without any reactivation (what Restart/Explore prevent);
//! 6. aggregation weighting — uniform (paper) vs sample-count weighted;
//! 7. client-side differential privacy (clip + Gaussian noise) on top of
//!    FedDA (the conclusion's future-work direction).
//!
//! Usage: `cargo run -p fedda-bench --release --bin ablations [--quick]
//! [--json out.json]`

use fedda::experiment::{Dataset, Experiment, Framework, FrameworkResult};
use fedda::fl::{AggWeighting, FedDa, MaskRule, PrivacyConfig, Reactivation};
use fedda::hgn::Decoder;
use fedda::table::TextTable;
use fedda_bench::{base_config, maybe_write_json, pm, Options};
use serde_json::json;

fn row_json(ablation: &str, setting: &str, res: &FrameworkResult) -> serde_json::Value {
    json!({
        "ablation": ablation, "setting": setting,
        "final_auc": res.final_auc.mean, "final_auc_std": res.final_auc.std,
        "best_auc": res.best_auc.mean,
        "uplink_units": res.uplink_units.mean,
    })
}

fn main() {
    let opts = Options::from_env();
    let mut cfg = base_config(Dataset::DblpLike, &opts);
    cfg.num_clients = opts.get("clients").unwrap_or(8);
    let mut json_blobs = Vec::new();
    let mut table = TextTable::new(&["Ablation", "Setting", "ROC-AUC", "Best AUC", "Uplink units"]);

    // 1. mask-update rule
    let exp = Experiment::new(cfg.clone());
    for (setting, rule) in [
        ("gradient-mean (default)", MaskRule::GradientMean),
        ("gradient-median", MaskRule::GradientMedian),
        ("gradient-quantile q=0.25", MaskRule::GradientQuantile(0.25)),
        ("gradient-quantile q=0.75", MaskRule::GradientQuantile(0.75)),
        ("literal Eq.7", MaskRule::LiteralEq7),
    ] {
        let mut fedda = FedDa::explore();
        fedda.mask_rule = rule;
        let res = exp.run_framework(&Framework::FedDa(fedda));
        table.row(&[
            "mask rule".into(),
            setting.into(),
            pm(&res.final_auc),
            pm(&res.best_auc),
            format!("{:.0}", res.uplink_units.mean),
        ]);
        json_blobs.push(row_json("mask rule", setting, &res));
    }

    // 2. encoder: Simple-HGN vs GAT vs attention-residual Simple-HGN
    for setting in ["Simple-HGN", "vanilla GAT", "Simple-HGN + attn residual"] {
        let mut c = cfg.clone();
        match setting {
            "vanilla GAT" => c.model = c.model.gat(),
            "Simple-HGN + attn residual" => c.model.attn_residual = 0.3,
            _ => {}
        }
        let exp = Experiment::new(c);
        let res = exp.run_framework(&Framework::FedDa(FedDa::explore()));
        table.row(&[
            "encoder".into(),
            setting.into(),
            pm(&res.final_auc),
            pm(&res.best_auc),
            format!("{:.0}", res.uplink_units.mean),
        ]);
        json_blobs.push(row_json("encoder", setting, &res));
    }

    // 3. decoder
    for (setting, dec) in [
        ("dot product", Decoder::DotProduct),
        ("DistMult", Decoder::DistMult),
    ] {
        let mut c = cfg.clone();
        c.model.decoder = dec;
        let exp = Experiment::new(c);
        let res = exp.run_framework(&Framework::FedDa(FedDa::explore()));
        table.row(&[
            "decoder".into(),
            setting.into(),
            pm(&res.final_auc),
            pm(&res.best_auc),
            format!("{:.0}", res.uplink_units.mean),
        ]);
        json_blobs.push(row_json("decoder", setting, &res));
    }

    // 4. explore cool-down
    let exp = Experiment::new(cfg.clone());
    for (setting, cooldown) in [("cool-down on (paper)", true), ("cool-down off", false)] {
        let mut fedda = FedDa::explore();
        fedda.explore_cooldown = cooldown;
        let res = exp.run_framework(&Framework::FedDa(fedda));
        table.row(&[
            "explore cool-down".into(),
            setting.into(),
            pm(&res.final_auc),
            pm(&res.best_auc),
            format!("{:.0}", res.uplink_units.mean),
        ]);
        json_blobs.push(row_json("explore cool-down", setting, &res));
    }

    // 5. no reactivation: Restart with beta_r ~ 0 never restarts, Explore
    //    with beta_e ~ 0 never explores — pure deactivation.
    let exp = Experiment::new(cfg.clone());
    for (setting, fedda) in [
        ("Explore beta_e=0.667 (paper)", FedDa::explore()),
        ("no reactivation (beta→0)", {
            let mut f = FedDa::explore();
            f.strategy = Reactivation::Explore { beta_e: 0.01 };
            f
        }),
    ] {
        let res = exp.run_framework(&Framework::FedDa(fedda));
        table.row(&[
            "reactivation".into(),
            setting.into(),
            pm(&res.final_auc),
            pm(&res.best_auc),
            format!("{:.0}", res.uplink_units.mean),
        ]);
        json_blobs.push(row_json("reactivation", setting, &res));
    }

    // 6. aggregation weighting
    for (setting, weighting) in [
        ("uniform p_i = 1/M (paper)", AggWeighting::Uniform),
        ("sample-count weighted", AggWeighting::BySampleCount),
    ] {
        let mut c = cfg.clone();
        c.weighting = weighting;
        let exp = Experiment::new(c);
        let res = exp.run_framework(&Framework::FedDa(FedDa::explore()));
        table.row(&[
            "agg weighting".into(),
            setting.into(),
            pm(&res.final_auc),
            pm(&res.best_auc),
            format!("{:.0}", res.uplink_units.mean),
        ]);
        json_blobs.push(row_json("agg weighting", setting, &res));
    }

    // 7. differential privacy on returned updates
    for (setting, privacy) in [
        ("no DP (paper)", None),
        (
            "clip=1.0, sigma=0.01",
            Some(PrivacyConfig {
                clip_norm: 1.0,
                noise_multiplier: 0.01,
            }),
        ),
        (
            "clip=1.0, sigma=0.1",
            Some(PrivacyConfig {
                clip_norm: 1.0,
                noise_multiplier: 0.1,
            }),
        ),
    ] {
        let mut c = cfg.clone();
        c.privacy = privacy;
        let exp = Experiment::new(c);
        let res = exp.run_framework(&Framework::FedDa(FedDa::explore()));
        table.row(&[
            "privacy".into(),
            setting.into(),
            pm(&res.final_auc),
            pm(&res.best_auc),
            format!("{:.0}", res.uplink_units.mean),
        ]);
        json_blobs.push(row_json("privacy", setting, &res));
    }

    println!("== Ablations (DBLP-like, M={}) ==\n", cfg.num_clients);
    println!("{}", table.render());

    maybe_write_json(&opts, &json!(json_blobs));
}
