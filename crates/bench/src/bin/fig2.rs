//! Figure 2 — the motivating study: FedAvg with random client activation
//! rate `C` (panels a–b) and random parameter activation rate `D`
//! (panels c–d), on IID vs non-IID client splits.
//!
//! For each setting we print the per-round best (solid) and worst (dotted)
//! test ROC-AUC over the repeated runs, exactly the curves the paper plots.
//!
//! Usage: `cargo run -p fedda-bench --release --bin fig2 [--quick|--paper]`

use fedda::experiment::{Dataset, Experiment, Framework};
use fedda::fl::FedAvg;
use fedda::report;
use fedda_bench::{base_config, maybe_write_json, render_curve, Options};
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let mut results_json = Vec::new();

    // The paper's preliminary study runs a small DBLP subgraph with six
    // clients; C and D take {1.0, 0.8, 0.67} ≈ {6/6, 5/6, 4/6}.
    let fractions = [1.0, 0.8, 0.67];
    for iid in [true, false] {
        let label = if iid { "IID" } else { "Non-IID" };
        let mut cfg = base_config(Dataset::DblpLike, &opts);
        cfg.num_clients = opts.get("clients").unwrap_or(6);
        cfg.iid = iid;
        let exp = Experiment::new(cfg);

        println!(
            "== Fig. 2{} — client activation rate C ({label} link types) ==",
            if iid { "(a)" } else { "(b)" }
        );
        for &c in &fractions {
            let fw = Framework::FedAvg(FedAvg::with_fractions(c, 1.0));
            let res = exp.run_framework(&fw);
            println!(
                "{}",
                render_curve(
                    &format!("C={c:.2} best"),
                    &res.eval_rounds,
                    &res.auc_curves.max_curve()
                )
            );
            println!(
                "{}",
                render_curve(
                    &format!("C={c:.2} worst"),
                    &res.eval_rounds,
                    &res.auc_curves.min_curve()
                )
            );
            results_json.push((format!("fig2_C_{label}_{c}"), res));
        }

        println!(
            "== Fig. 2{} — parameter activation rate D ({label} link types) ==",
            if iid { "(c)" } else { "(d)" }
        );
        for &d in &fractions {
            let fw = Framework::FedAvg(FedAvg::with_fractions(1.0, d));
            let res = exp.run_framework(&fw);
            println!(
                "{}",
                render_curve(
                    &format!("D={d:.2} best"),
                    &res.eval_rounds,
                    &res.auc_curves.max_curve()
                )
            );
            println!(
                "{}",
                render_curve(
                    &format!("D={d:.2} worst"),
                    &res.eval_rounds,
                    &res.auc_curves.min_curve()
                )
            );
            results_json.push((format!("fig2_D_{label}_{d}"), res));
        }
    }

    // Observations 1 & 2 summary: spread between best and worst final AUC.
    println!("== Summary: best/worst spread at the final round ==");
    for (name, res) in &results_json {
        let best = res.auc_curves.max_curve().last().copied().unwrap_or(0.0);
        let worst = res.auc_curves.min_curve().last().copied().unwrap_or(0.0);
        println!(
            "{name:<28} best={best:.4} worst={worst:.4} spread={:.4}",
            best - worst
        );
    }

    maybe_write_json(
        &opts,
        &json!({
            "experiment": "fig2",
            "results": results_json
                .iter()
                .map(|(k, r)| json!({"setting": k, "data": report::framework_to_json(r)}))
                .collect::<Vec<_>>(),
        }),
    );
}
