//! Fairness analysis (beyond the paper): per-edge-type test ROC-AUC of the
//! final global model under each framework. In the non-IID setting, rare
//! or weakly-represented link types are exactly where naive averaging
//! hurts; this binary reports the per-type breakdown, the macro/weighted
//! means and the max−min fairness gap.
//!
//! Usage: `cargo run -p fedda-bench --release --bin fairness [--quick]
//! [--json out.json]`

use fedda::experiment::{Dataset, Experiment};
use fedda::fl::{FedAvg, FedDa};
use fedda::table::TextTable;
use fedda_bench::{base_config, maybe_write_json, Options};
use serde_json::json;

fn main() {
    let opts = Options::from_env();
    let mut cfg = base_config(Dataset::DblpLike, &opts);
    cfg.num_clients = opts.get("clients").unwrap_or(8);
    cfg.runs = 1; // one representative run; the breakdown is the point
    let exp = Experiment::new(cfg);

    println!(
        "== Per-edge-type fairness, DBLP-like, M={} ({} rounds) ==\n",
        exp.config().num_clients,
        exp.config().rounds
    );

    let mut json_blobs = Vec::new();
    let mut table: Option<TextTable> = None;
    for name in ["FedAvg", "FedDA 1 (Restart)", "FedDA 2 (Explore)"] {
        let mut system = exp.system_for_run(0);
        match name {
            "FedAvg" => {
                FedAvg::vanilla().run(&mut system);
            }
            "FedDA 1 (Restart)" => {
                FedDa::restart().run(&mut system);
            }
            _ => {
                FedDa::explore().run(&mut system);
            }
        }
        let detail = system.evaluate_global_detailed(exp.config().rounds);
        if table.is_none() {
            let mut header: Vec<String> = vec!["Framework".into()];
            header.extend(
                detail
                    .auc_by_edge_type
                    .groups
                    .iter()
                    .map(|(n, _, _)| n.clone()),
            );
            header.extend(["macro".into(), "weighted".into(), "gap".into()]);
            let refs: Vec<&str> = header.iter().map(String::as_str).collect();
            table = Some(TextTable::new(&refs));
        }
        let mut row: Vec<String> = vec![name.into()];
        row.extend(
            detail
                .auc_by_edge_type
                .groups
                .iter()
                .map(|(_, v, n)| format!("{v:.4} (n={n})")),
        );
        row.push(format!("{:.4}", detail.auc_by_edge_type.macro_mean()));
        row.push(format!("{:.4}", detail.auc_by_edge_type.weighted_mean()));
        row.push(format!("{:.4}", detail.auc_by_edge_type.gap()));
        table.as_mut().unwrap().row(&row);
        json_blobs.push(json!({
            "framework": name,
            "auc_by_edge_type": detail
                .auc_by_edge_type
                .groups
                .iter()
                .map(|(t, v, n)| json!({"edge_type": t.as_str(), "auc": *v, "n": *n}))
                .collect::<Vec<_>>(),
            "macro_mean": detail.auc_by_edge_type.macro_mean(),
            "weighted_mean": detail.auc_by_edge_type.weighted_mean(),
            "gap": detail.auc_by_edge_type.gap(),
        }));
    }
    println!("{}", table.unwrap().render());
    println!(
        "gap = max − min per-type AUC; a smaller gap means the global model\n\
         serves rare link types as well as dominant ones."
    );

    maybe_write_json(&opts, &json!(json_blobs));
}
