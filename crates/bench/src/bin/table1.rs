//! Table 1 — dataset statistics.
//!
//! Regenerates the paper's Table 1 for the synthetic Amazon-like and
//! DBLP-like heterographs at the requested scale, alongside the paper's
//! original numbers for reference.
//!
//! Usage: `cargo run -p fedda-bench --release --bin table1 [--scale 0.01]
//! [--json out.json]`

use fedda::data::{amazon_like, dblp_like, DatasetStats, PresetOptions};
use fedda_bench::{maybe_write_json, Options};
use serde_json::json;

fn stats_to_json(stats: &DatasetStats, edge_type_names: &[String]) -> serde_json::Value {
    json!({
        "name": stats.name,
        "num_nodes": stats.num_nodes,
        "num_node_types": stats.num_node_types,
        "num_edges": stats.num_edges,
        "num_edge_types": stats.num_edge_types,
        "density_pct": stats.density_pct,
        "edges_per_type": edge_type_names
            .iter()
            .zip(&stats.edges_per_type)
            .map(|(n, c)| json!({"edge_type": n.as_str(), "count": *c}))
            .collect::<Vec<_>>(),
    })
}

fn main() {
    let opts = Options::from_env();
    let scale: f64 = opts.get("scale").unwrap_or(0.01);
    let seed: u64 = opts.get("seed").unwrap_or(0);

    println!("Table 1: Statistics of the datasets (synthetic, scale = {scale})\n");
    println!("{}", DatasetStats::table_header());
    let amazon = amazon_like(&PresetOptions {
        scale,
        seed,
        ..Default::default()
    })
    .graph;
    println!("{}", DatasetStats::compute("Amazon", &amazon).table_row());
    let dblp = dblp_like(&PresetOptions {
        scale,
        seed,
        ..Default::default()
    })
    .graph;
    println!("{}", DatasetStats::compute("DBLP", &dblp).table_row());

    println!("\nPaper's original (scale = 1.0):");
    println!("{}", DatasetStats::table_header());
    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>11} {:>9.2}%",
        "Amazon", 10_099, 1, 148_659, 2, 0.15
    );
    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>11} {:>9.2}%",
        "DBLP", 114_145, 3, 7_566_543, 5, 0.58
    );

    let mut json_blobs = Vec::new();
    println!("\nPer-edge-type counts (synthetic):");
    for (name, g) in [("Amazon", &amazon), ("DBLP", &dblp)] {
        let counts = g.edge_counts();
        let names: Vec<String> = g
            .schema()
            .edge_type_ids()
            .map(|t| g.schema().edge_type(t).name.clone())
            .collect();
        let detail: Vec<String> = names
            .iter()
            .zip(&counts)
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        println!("  {name}: {}", detail.join(", "));
        json_blobs.push(json!({
            "experiment": format!("table1_{name}"),
            "meta": json!({"dataset": name, "scale": scale, "seed": seed}),
            "stats": stats_to_json(&DatasetStats::compute(name, g), &names),
        }));
    }

    maybe_write_json(&opts, &json!(json_blobs));
}
