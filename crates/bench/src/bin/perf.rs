//! `perf` — the perf-trajectory harness (ROADMAP item 5).
//!
//! **Snapshot mode** (default) runs the fixed, seeded suite ([GEMM
//! shapes, HGN forward/backward, full FL rounds](fedda_bench::suite)) and
//! writes a schema-versioned `BENCH_<date>.json` at the current directory
//! (the repo root, by convention):
//!
//! ```text
//! cargo run --release -p fedda-bench --bin perf -- --smoke
//! cargo run --release -p fedda-bench --bin perf            # full profile
//! ```
//!
//! Flags: `--smoke` (CI-sized profile), `--out <path>` (override the
//! `BENCH_<date>.json` default), `--seed <n>`, `--samples <n>`.
//!
//! **Compare mode** diffs two snapshots, prints the per-case delta table
//! and exits nonzero when any case regresses beyond the threshold
//! (default 10%) or disappeared:
//!
//! ```text
//! cargo run --release -p fedda-bench --bin perf -- \
//!     --compare BENCH_old.json BENCH_new.json [--threshold 0.10]
//! ```
//!
//! Every perf-focused PR must commit an updated snapshot; see
//! `DESIGN.md` §10 for the schema and policy.

use fedda_bench::compare::{compare, DEFAULT_THRESHOLD};
use fedda_bench::snapshot::{utc_today, EnvFingerprint, Snapshot, SCHEMA_VERSION};
use fedda_bench::suite::{run_suite, SuiteConfig};
use fedda_bench::Options;
use std::path::Path;

/// `Some((old, new))` when `--compare` was given.
type ComparePaths = Option<(String, String)>;

/// Pull `--compare <old> <new>` (two values) out of the raw argument
/// list, leaving the rest for the shared [`Options`] parser.
fn split_compare_args(mut args: Vec<String>) -> Result<(ComparePaths, Vec<String>), String> {
    match args.iter().position(|a| a == "--compare") {
        None => Ok((None, args)),
        Some(at) => {
            if args.len() < at + 3 {
                return Err("--compare needs two snapshot paths: --compare <old> <new>".into());
            }
            let new = args.remove(at + 2);
            let old = args.remove(at + 1);
            args.remove(at);
            if args.iter().any(|a| a == "--compare") {
                return Err("duplicate flag --compare".into());
            }
            Ok((Some((old, new)), args))
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (compare_paths, rest) = split_compare_args(raw).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // `--smoke` is perf-specific, so strip it before the shared parser.
    let smoke = rest.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = rest.into_iter().filter(|a| a != "--smoke").collect();
    let opts = match Options::try_from_args(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: perf [--smoke] [--out <path>] [--seed <n>] [--samples <n>] \
                 | perf --compare <old> <new> [--threshold <f>]"
            );
            std::process::exit(2);
        }
    };

    match compare_paths {
        Some((old_path, new_path)) => {
            let threshold: f64 = opts.get("threshold").unwrap_or(DEFAULT_THRESHOLD);
            let old = Snapshot::load(Path::new(&old_path)).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            let new = Snapshot::load(Path::new(&new_path)).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            if old.label != new.label {
                eprintln!(
                    "warning: comparing a '{}' snapshot against a '{}' snapshot — \
                     case sets differ by design",
                    old.label, new.label
                );
            }
            if old.env != new.env {
                eprintln!(
                    "note: environment fingerprints differ (old: {}/{} {} threads; \
                     new: {}/{} {} threads) — wall-times are only comparable on one machine",
                    old.env.os,
                    old.env.arch,
                    old.env.kernel_threads,
                    new.env.os,
                    new.env.arch,
                    new.env.kernel_threads
                );
            }
            let cmp = compare(&old, &new, threshold).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            println!(
                "Comparing {old_path} ({}, {}) -> {new_path} ({}, {})\n",
                old.created, old.label, new.created, new.label
            );
            println!("{}", cmp.render());
            if !cmp.passes() {
                std::process::exit(1);
            }
        }
        None => {
            let cfg = SuiteConfig {
                smoke,
                seed: opts.get("seed").unwrap_or(0),
                samples: opts.get("samples"),
                progress: true,
            };
            let created = utc_today();
            let out_path = opts
                .get_str("out")
                .map(str::to_string)
                .unwrap_or_else(|| Snapshot::default_path(&created));
            eprintln!(
                "running perf suite (profile {}, seed {}, {} kernel threads)...",
                cfg.label(),
                cfg.seed,
                fedda::tensor::gemm::configured_threads()
            );
            let cases = run_suite(&cfg);
            let snapshot = Snapshot {
                schema_version: SCHEMA_VERSION,
                created,
                label: cfg.label().to_string(),
                seed: cfg.seed,
                env: EnvFingerprint::capture(),
                cases,
            };
            snapshot.save(Path::new(&out_path)).unwrap_or_else(|e| {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(2);
            });
            println!(
                "wrote {out_path} ({} cases, schema v{})",
                snapshot.cases.len(),
                snapshot.schema_version
            );
        }
    }
}
