//! Shared plumbing for the experiment binaries: a tiny flag parser (no CLI
//! dependency) and the default configurations each table/figure uses.
//!
//! Every binary accepts:
//!
//! * `--scale <f64>`   — dataset size multiplier (default per binary)
//! * `--rounds <n>`    — communication rounds (default 40)
//! * `--runs <n>`      — repetitions (default 3; paper uses 5)
//! * `--clients <n>`   — override the client count where applicable
//! * `--seed <n>`      — base seed (default 0)
//! * `--eval-every <n>`— evaluate every n rounds (default 1; the final
//!   round always evaluates)
//! * `--json <path>`   — also dump machine-readable results
//! * `--faults <spec>` — deterministic fault injection, e.g.
//!   `drop=0.2,straggle=0.1,delay=3,corrupt=0.05,stale=discount:0.5`
//!   (see `fedda::fl::FaultConfig`'s `FromStr`)
//! * `--quick`         — smallest settings (CI smoke)
//! * `--paper`         — paper-like settings (5 runs, 40 rounds)
//! * `--events`        — stream per-round driver events to stderr

use fedda::experiment::{Dataset, ExperimentConfig};
use fedda::hgn::{HgnConfig, TrainConfig};
use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    flags: HashMap<String, String>,
    /// `--quick` present.
    pub quick: bool,
    /// `--paper` present.
    pub paper: bool,
    /// `--events` present: stream per-round [`fedda::fl::RoundEvent`]s to
    /// stderr via [`fedda::fl::StderrSink`].
    pub events: bool,
}

impl Options {
    /// Parse `std::env::args()`.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--paper" => out.paper = true,
                "--events" => out.events = true,
                flag if flag.starts_with("--") => {
                    let value = iter
                        .next()
                        .unwrap_or_else(|| panic!("missing value for {flag}"));
                    out.flags.insert(flag[2..].to_string(), value);
                }
                other => panic!("unexpected argument: {other}"),
            }
        }
        out
    }

    /// Look up a typed flag.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T>
    where
        T::Err: std::fmt::Debug,
    {
        self.flags.get(name).map(|v| {
            v.parse::<T>()
                .unwrap_or_else(|e| panic!("bad value for --{name}: {v} ({e:?})"))
        })
    }

    /// String flag.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

/// The model configuration the experiments use: a CPU-sized Simple-HGN
/// (2 layers × 2 heads; the paper's 3×3 is available behind `--paper`).
pub fn experiment_model(paper: bool) -> HgnConfig {
    if paper {
        HgnConfig::paper_default()
    } else {
        HgnConfig {
            hidden_dim: 8,
            num_layers: 2,
            num_heads: 2,
            edge_emb_dim: 8,
            ..Default::default()
        }
    }
}

/// The local-training configuration the experiments use.
pub fn experiment_train() -> TrainConfig {
    TrainConfig {
        local_epochs: 2,
        lr: 5e-3,
        ..Default::default()
    }
}

/// Build a baseline [`ExperimentConfig`] for a dataset from parsed options.
pub fn base_config(dataset: Dataset, opts: &Options) -> ExperimentConfig {
    let default_scale = match dataset {
        Dataset::AmazonLike => 0.008,
        Dataset::DblpLike => 0.0025,
    };
    let mut cfg = ExperimentConfig {
        dataset,
        scale: opts.get("scale").unwrap_or(default_scale),
        num_clients: opts.get("clients").unwrap_or(8),
        rounds: opts
            .get("rounds")
            .unwrap_or(if opts.paper { 40 } else { 20 }),
        runs: opts.get("runs").unwrap_or(if opts.paper { 5 } else { 3 }),
        model: experiment_model(opts.paper),
        train: experiment_train(),
        eval_every: opts.get("eval-every").unwrap_or(1),
        seed: opts.get("seed").unwrap_or(0),
        faults: opts.get("faults"),
        ..Default::default()
    };
    if opts.quick {
        cfg.scale = default_scale / 2.0;
        cfg.rounds = cfg.rounds.min(4);
        cfg.runs = cfg.runs.min(2);
    }
    cfg
}

/// Format a `MeanStd` the way the paper's tables do.
pub fn pm(m: &fedda::metrics::MeanStd) -> String {
    m.fmt_pm()
}

/// Render a curve as a compact sparkline-style series for the figure
/// binaries (round: value pairs, 8 per line).
pub fn render_curve(name: &str, curve: &[f64]) -> String {
    let mut out = format!("{name}:\n");
    for (i, chunk) in curve.chunks(8).enumerate() {
        out.push_str("  ");
        for (j, v) in chunk.iter().enumerate() {
            out.push_str(&format!("r{:02}={:.4} ", i * 8 + j, v));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_switches() {
        let o = Options::from_args(
            ["--scale", "0.01", "--runs", "5", "--quick"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.get::<f64>("scale"), Some(0.01));
        assert_eq!(o.get::<usize>("runs"), Some(5));
        assert!(o.quick);
        assert!(!o.paper);
        assert!(!o.events);
        assert_eq!(o.get::<u64>("seed"), None);
    }

    #[test]
    fn eval_every_and_events_flags_flow_into_config() {
        let o = Options::from_args(
            ["--eval-every", "5", "--events"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(o.events);
        let cfg = base_config(Dataset::DblpLike, &o);
        assert_eq!(cfg.eval_every, 5);
        // Default stays dense.
        let cfg = base_config(Dataset::DblpLike, &Options::default());
        assert_eq!(cfg.eval_every, 1);
    }

    #[test]
    fn base_config_respects_overrides() {
        let o = Options::from_args(
            ["--clients", "16", "--rounds", "10"]
                .iter()
                .map(|s| s.to_string()),
        );
        let cfg = base_config(Dataset::DblpLike, &o);
        assert_eq!(cfg.num_clients, 16);
        assert_eq!(cfg.rounds, 10);
        assert_eq!(cfg.runs, 3);
    }

    #[test]
    fn quick_mode_shrinks_everything() {
        let o = Options::from_args(["--quick"].iter().map(|s| s.to_string()));
        let cfg = base_config(Dataset::AmazonLike, &o);
        assert!(cfg.rounds <= 4);
        assert!(cfg.runs <= 2);
    }

    #[test]
    fn paper_mode_uses_paper_model() {
        let o = Options::from_args(["--paper"].iter().map(|s| s.to_string()));
        let cfg = base_config(Dataset::DblpLike, &o);
        assert_eq!(cfg.model.num_layers, 3);
        assert_eq!(cfg.runs, 5);
        assert_eq!(cfg.rounds, 40);
    }

    #[test]
    fn faults_flag_flows_into_config() {
        let o = Options::from_args(
            ["--faults", "drop=0.3,straggle=0.1,delay=2"]
                .iter()
                .map(|s| s.to_string()),
        );
        let cfg = base_config(Dataset::DblpLike, &o);
        let fc = cfg.faults.expect("--faults must populate the config");
        assert_eq!(fc.dropout, 0.3);
        assert_eq!(fc.straggler, 0.1);
        assert_eq!(fc.max_staleness, 2);
        assert!(base_config(Dataset::DblpLike, &Options::default())
            .faults
            .is_none());
    }

    #[test]
    #[should_panic(expected = "bad value for --faults")]
    fn bad_faults_spec_panics_with_context() {
        let o = Options::from_args(["--faults", "drop=1.5"].iter().map(|s| s.to_string()));
        let _ = base_config(Dataset::DblpLike, &o);
    }

    #[test]
    fn render_curve_contains_rounds() {
        let s = render_curve("FedAvg", &[0.5, 0.6, 0.7]);
        assert!(s.contains("r00=0.5000"));
        assert!(s.contains("r02=0.7000"));
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn rejects_positional_args() {
        let _ = Options::from_args(["oops".to_string()]);
    }
}
