//! Shared plumbing for the experiment binaries: a tiny flag parser (no CLI
//! dependency), the default configurations each table/figure uses, and the
//! perf-trajectory harness behind the `perf` binary ([`snapshot`],
//! [`compare`], [`suite`]).
//!
//! Every binary accepts:
//!
//! * `--scale <f64>`   — dataset size multiplier (default per binary)
//! * `--rounds <n>`    — communication rounds (default 40)
//! * `--runs <n>`      — repetitions (default 3; paper uses 5)
//! * `--clients <n>`   — override the client count where applicable
//! * `--seed <n>`      — base seed (default 0)
//! * `--eval-every <n>`— evaluate every n rounds (default 1; the final
//!   round always evaluates)
//! * `--json <path>`   — also dump machine-readable results
//!   (every binary honors this via [`maybe_write_json`])
//! * `--faults <spec>` — deterministic fault injection, e.g.
//!   `drop=0.2,straggle=0.1,delay=3,corrupt=0.05,stale=discount:0.5`
//!   (see `fedda::fl::FaultConfig`'s `FromStr`)
//! * `--runtime <m>`   — simulation driver: `sync` (default lockstep) or
//!   `async` (buffered aggregation on `K` arrivals)
//! * `--async-k <n>`   — async buffer size `K` (requires `--runtime async`)
//! * `--async-gamma <f>` — async staleness discount `γ ∈ (0, 1]`
//!   (requires `--runtime async`)
//! * `--workers <n>`   — worker-pool size for parallel client updates
//!   (default: one worker per dispatched client; results are identical
//!   for any value)
//! * `--compress <c>`  — uplink codec: `ident` (bit-exact), `q8`
//!   (int8 quantization), `f16` (half precision) or `topk:<frac>`
//!   (magnitude sparsification, e.g. `topk:0.25`); default: none
//!   (uncompressed ledger accounting, 4 bytes per masked scalar)
//! * `--quick`         — shrink the *defaults* to CI-smoke size (never
//!   overrides an explicit `--scale`/`--rounds`/`--runs`)
//! * `--paper`         — paper-like settings (5 runs, 40 rounds)
//! * `--events`        — stream per-round driver events to stderr

use fedda::experiment::{Dataset, ExperimentConfig, Framework};
use fedda::fl::{
    AsyncConfig, Compression, FedAdam, FedAvg, FedDa, FedDyn, FedProx, FlProtocol, RuntimeMode,
};
use fedda::hgn::{HgnConfig, TrainConfig};
use std::collections::HashMap;
use std::path::Path;

pub mod compare;
pub mod snapshot;
pub mod suite;

/// The flags the shared parser knows about, named in the usage line when
/// parsing fails. Individual binaries may consume extra `--flag value`
/// pairs (e.g. `faults`' `--rate-steps`, `perf`'s `--out`); unknown flags
/// are therefore accepted, but malformed or duplicated ones are not.
pub const KNOWN_FLAGS: &[&str] = &[
    "scale",
    "rounds",
    "runs",
    "clients",
    "seed",
    "eval-every",
    "json",
    "faults",
    "dataset",
    "runtime",
    "async-k",
    "async-gamma",
    "workers",
    "compress",
    "framework",
    "mu",
    "alpha",
    "server-lr",
    "beta1",
    "beta2",
    "adam-eps",
    "client-fraction",
    "quick",
    "paper",
    "events",
];

/// One-line usage hint naming the shared flags.
pub fn usage() -> String {
    let mut parts = Vec::new();
    for f in KNOWN_FLAGS {
        match *f {
            "quick" | "paper" | "events" => parts.push(format!("[--{f}]")),
            _ => parts.push(format!("[--{f} <value>]")),
        }
    }
    format!(
        "usage: {} (plus binary-specific flags; see the binary's doc comment)",
        parts.join(" ")
    )
}

/// Parsed command-line options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    flags: HashMap<String, String>,
    /// `--quick` present.
    pub quick: bool,
    /// `--paper` present.
    pub paper: bool,
    /// `--events` present: stream per-round [`fedda::fl::RoundEvent`]s to
    /// stderr via [`fedda::fl::StderrSink`].
    pub events: bool,
}

impl Options {
    /// Parse `std::env::args()`. On a malformed command line this prints
    /// the error plus a one-line usage hint to stderr and exits with
    /// status 2 (it never panics at the user).
    pub fn from_env() -> Self {
        match Self::try_from_args(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}\n{}", usage());
                std::process::exit(2);
            }
        }
    }

    /// Parse an explicit argument list, panicking on malformed input
    /// (testable; binaries go through [`Options::from_env`] which exits
    /// cleanly instead).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::try_from_args(args) {
            Ok(o) => o,
            Err(e) => panic!("{e}\n{}", usage()),
        }
    }

    /// Parse an explicit argument list. Rejects positional arguments,
    /// flags missing their value, and duplicate occurrences of the same
    /// flag (previously duplicates silently last-won).
    pub fn try_from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => {
                    if out.quick {
                        return Err("duplicate flag --quick".into());
                    }
                    out.quick = true;
                }
                "--paper" => {
                    if out.paper {
                        return Err("duplicate flag --paper".into());
                    }
                    out.paper = true;
                }
                "--events" => {
                    if out.events {
                        return Err("duplicate flag --events".into());
                    }
                    out.events = true;
                }
                flag if flag.starts_with("--") => {
                    let value = match iter.next() {
                        Some(v) => v,
                        None => return Err(format!("missing value for {flag}")),
                    };
                    if out.flags.insert(flag[2..].to_string(), value).is_some() {
                        return Err(format!("duplicate flag {flag}"));
                    }
                }
                other => return Err(format!("unexpected argument: {other}")),
            }
        }
        Ok(out)
    }

    /// Look up a typed flag; a malformed value panics with the usage hint.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T>
    where
        T::Err: std::fmt::Debug,
    {
        self.flags.get(name).map(|v| {
            v.parse::<T>()
                .unwrap_or_else(|e| panic!("bad value for --{name}: {v} ({e:?})\n{}", usage()))
        })
    }

    /// Whether the flag was given at all (used to tell an explicit value
    /// from a default, e.g. by `--quick`'s defaults-only shrinking).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// String flag.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

/// The model configuration the experiments use: a CPU-sized Simple-HGN
/// (2 layers × 2 heads; the paper's 3×3 is available behind `--paper`).
pub fn experiment_model(paper: bool) -> HgnConfig {
    if paper {
        HgnConfig::paper_default()
    } else {
        HgnConfig {
            hidden_dim: 8,
            num_layers: 2,
            num_heads: 2,
            edge_emb_dim: 8,
            ..Default::default()
        }
    }
}

/// The local-training configuration the experiments use.
pub fn experiment_train() -> TrainConfig {
    TrainConfig {
        local_epochs: 2,
        lr: 5e-3,
        ..Default::default()
    }
}

/// Resolve `--runtime` / `--async-k` / `--async-gamma` into a
/// [`RuntimeMode`]. Typos in the mode name and async knobs given without
/// `--runtime async` panic with the usage hint, matching [`Options::get`]'s
/// conventions.
pub fn runtime_config(opts: &Options) -> RuntimeMode {
    let mode = match opts.get_str("runtime") {
        None => RuntimeMode::Sync,
        Some("sync") => RuntimeMode::Sync,
        Some("async") => {
            let mut acfg = AsyncConfig::default();
            if let Some(k) = opts.get::<usize>("async-k") {
                acfg.k = k;
            }
            if let Some(gamma) = opts.get::<f64>("async-gamma") {
                acfg.gamma = gamma;
            }
            acfg.validate()
                .unwrap_or_else(|e| panic!("bad async runtime config: {e}\n{}", usage()));
            RuntimeMode::Async(acfg)
        }
        Some(other) => panic!(
            "bad value for --runtime: {other} (expected sync|async)\n{}",
            usage()
        ),
    };
    if mode == RuntimeMode::Sync {
        for knob in ["async-k", "async-gamma"] {
            if opts.has(knob) {
                panic!("--{knob} requires --runtime async\n{}", usage());
            }
        }
    }
    mode
}

/// Resolve `--compress` into an uplink [`Compression`] codec (`None`
/// when the flag is absent: the historical uncompressed ledger). A typo
/// or an out-of-range top-k fraction panics with the usage hint,
/// matching [`runtime_config`]'s conventions.
pub fn compression_config(opts: &Options) -> Option<Compression> {
    opts.get_str("compress").map(|spec| {
        spec.parse::<Compression>()
            .unwrap_or_else(|e| panic!("bad value for --compress: {spec} ({e})\n{}", usage()))
    })
}

/// Resolve a framework name plus its hyper-parameter flags into a
/// [`Framework`] — the one protocol parser shared by the CLI `train`
/// subcommand and the bench binaries.
///
/// Knobs (each optional, falling back to the protocol's default):
/// `--client-fraction` (fedavg/fedprox/feddyn/fedadam), `--mu` (fedprox),
/// `--alpha` (feddyn), `--server-lr`/`--beta1`/`--beta2`/`--adam-eps`
/// (fedadam). Invalid hyper-parameters are rejected here with the
/// protocol's own `validate()` message, so the CLI and bench binaries
/// fail cleanly before any training starts (the driver re-validates
/// before round 0 regardless).
pub fn parse_framework(name: &str, opts: &Options) -> Result<Framework, String> {
    let fraction = opts.get::<f64>("client-fraction");
    let fw = match name {
        "global" => Framework::Global,
        "local" => Framework::Local,
        "fedavg" => Framework::FedAvg(FedAvg {
            client_fraction: fraction.unwrap_or(1.0),
            param_fraction: 1.0,
        }),
        "fedprox" => Framework::FedProx(FedProx {
            mu: opts.get("mu").unwrap_or(0.01),
            client_fraction: fraction.unwrap_or(1.0),
        }),
        "feddyn" => Framework::FedDyn(FedDyn {
            alpha: opts.get("alpha").unwrap_or(0.01),
            client_fraction: fraction.unwrap_or(1.0),
        }),
        "fedadam" => Framework::FedAdam(FedAdam {
            server_lr: opts.get("server-lr").unwrap_or(0.01),
            beta1: opts.get("beta1").unwrap_or(0.9),
            beta2: opts.get("beta2").unwrap_or(0.99),
            epsilon: opts.get("adam-eps").unwrap_or(1e-3),
            client_fraction: fraction.unwrap_or(1.0),
        }),
        "fedda-restart" => Framework::FedDa(FedDa::restart()),
        "fedda-explore" => Framework::FedDa(FedDa::explore()),
        other => {
            return Err(format!(
                "unknown framework '{other}' (expected global|local|fedavg|fedprox|feddyn|fedadam|fedda-restart|fedda-explore)"
            ))
        }
    };
    match &fw {
        Framework::FedAvg(f) => f.validate(),
        Framework::FedProx(f) => f.validate(),
        Framework::FedDyn(f) => f.validate(),
        Framework::FedAdam(f) => f.validate(),
        Framework::Global | Framework::Local | Framework::FedDa(_) => Ok(()),
    }
    .map_err(|e| format!("invalid --framework {name} configuration: {e}"))?;
    Ok(fw)
}

/// Build a baseline [`ExperimentConfig`] for a dataset from parsed options.
///
/// `--quick` shrinks only the *defaults*: an explicit `--scale`,
/// `--rounds` or `--runs` always wins, so `--quick --scale 0.05` runs at
/// scale 0.05 with quick rounds/runs.
pub fn base_config(dataset: Dataset, opts: &Options) -> ExperimentConfig {
    let default_scale = match dataset {
        Dataset::AmazonLike => 0.008,
        Dataset::DblpLike => 0.0025,
    };
    let mut cfg = ExperimentConfig {
        dataset,
        scale: opts.get("scale").unwrap_or(default_scale),
        num_clients: opts.get("clients").unwrap_or(8),
        rounds: opts
            .get("rounds")
            .unwrap_or(if opts.paper { 40 } else { 20 }),
        runs: opts.get("runs").unwrap_or(if opts.paper { 5 } else { 3 }),
        model: experiment_model(opts.paper),
        train: experiment_train(),
        eval_every: opts.get("eval-every").unwrap_or(1),
        seed: opts.get("seed").unwrap_or(0),
        faults: opts.get("faults"),
        runtime: runtime_config(opts),
        workers: opts.get("workers"),
        compression: compression_config(opts),
        ..Default::default()
    };
    if opts.quick {
        if !opts.has("scale") {
            cfg.scale = default_scale / 2.0;
        }
        if !opts.has("rounds") {
            cfg.rounds = cfg.rounds.min(4);
        }
        if !opts.has("runs") {
            cfg.runs = cfg.runs.min(2);
        }
    }
    cfg
}

/// Format a `MeanStd` the way the paper's tables do.
pub fn pm(m: &fedda::metrics::MeanStd) -> String {
    m.fmt_pm()
}

/// Honor the documented `--json <path>` contract: when the flag is given,
/// write `value` pretty-printed to the path and confirm on stdout. Every
/// bench binary routes its machine-readable dump through this helper so
/// new binaries cannot silently drift from the contract.
pub fn maybe_write_json(opts: &Options, value: &serde_json::Value) {
    if let Some(path) = opts.get_str("json") {
        fedda::report::write_json(Path::new(path), value)
            .unwrap_or_else(|e| panic!("cannot write --json {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Render a curve as a compact sparkline-style series for the figure
/// binaries (round: value pairs, 8 per line). `rounds` carries the true
/// evaluated round index of each point (`FrameworkResult::eval_rounds`),
/// so sparse `--eval-every > 1` curves label points by the round they
/// measure rather than fabricating consecutive `r00,r01,…` labels; when a
/// point has no recorded round (legacy callers), its position is used.
pub fn render_curve(name: &str, rounds: &[usize], curve: &[f64]) -> String {
    let mut out = format!("{name}:\n");
    for (i, chunk) in curve.chunks(8).enumerate() {
        out.push_str("  ");
        for (j, v) in chunk.iter().enumerate() {
            let pos = i * 8 + j;
            let round = rounds.get(pos).copied().unwrap_or(pos);
            out.push_str(&format!("r{round:02}={v:.4} "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_flags_and_switches() {
        let o = Options::from_args(args(&["--scale", "0.01", "--runs", "5", "--quick"]));
        assert_eq!(o.get::<f64>("scale"), Some(0.01));
        assert_eq!(o.get::<usize>("runs"), Some(5));
        assert!(o.quick);
        assert!(!o.paper);
        assert!(!o.events);
        assert_eq!(o.get::<u64>("seed"), None);
        assert!(o.has("scale"));
        assert!(!o.has("seed"));
    }

    #[test]
    fn eval_every_and_events_flags_flow_into_config() {
        let o = Options::from_args(args(&["--eval-every", "5", "--events"]));
        assert!(o.events);
        let cfg = base_config(Dataset::DblpLike, &o);
        assert_eq!(cfg.eval_every, 5);
        // Default stays dense.
        let cfg = base_config(Dataset::DblpLike, &Options::default());
        assert_eq!(cfg.eval_every, 1);
    }

    #[test]
    fn base_config_respects_overrides() {
        let o = Options::from_args(args(&["--clients", "16", "--rounds", "10"]));
        let cfg = base_config(Dataset::DblpLike, &o);
        assert_eq!(cfg.num_clients, 16);
        assert_eq!(cfg.rounds, 10);
        assert_eq!(cfg.runs, 3);
    }

    #[test]
    fn quick_mode_shrinks_defaults() {
        let o = Options::from_args(args(&["--quick"]));
        let cfg = base_config(Dataset::AmazonLike, &o);
        assert!(cfg.rounds <= 4);
        assert!(cfg.runs <= 2);
        assert!(cfg.scale < 0.008);
    }

    #[test]
    fn quick_mode_never_clobbers_explicit_overrides() {
        // The regression the sweep fixes: `--quick --scale 0.05` used to
        // run at half the *default* scale, silently ignoring the user.
        let o = Options::from_args(args(&[
            "--quick", "--scale", "0.05", "--rounds", "9", "--runs", "4",
        ]));
        let cfg = base_config(Dataset::AmazonLike, &o);
        assert_eq!(cfg.scale, 0.05);
        assert_eq!(cfg.rounds, 9);
        assert_eq!(cfg.runs, 4);
        // Partial overrides: the rest still shrinks.
        let o = Options::from_args(args(&["--quick", "--scale", "0.05"]));
        let cfg = base_config(Dataset::AmazonLike, &o);
        assert_eq!(cfg.scale, 0.05);
        assert!(cfg.rounds <= 4);
        assert!(cfg.runs <= 2);
    }

    #[test]
    fn paper_mode_uses_paper_model() {
        let o = Options::from_args(args(&["--paper"]));
        let cfg = base_config(Dataset::DblpLike, &o);
        assert_eq!(cfg.model.num_layers, 3);
        assert_eq!(cfg.runs, 5);
        assert_eq!(cfg.rounds, 40);
    }

    #[test]
    fn faults_flag_flows_into_config() {
        let o = Options::from_args(args(&["--faults", "drop=0.3,straggle=0.1,delay=2"]));
        let cfg = base_config(Dataset::DblpLike, &o);
        let fc = cfg.faults.expect("--faults must populate the config");
        assert_eq!(fc.dropout, 0.3);
        assert_eq!(fc.straggler, 0.1);
        assert_eq!(fc.max_staleness, 2);
        assert!(base_config(Dataset::DblpLike, &Options::default())
            .faults
            .is_none());
    }

    #[test]
    #[should_panic(expected = "bad value for --faults")]
    fn bad_faults_spec_panics_with_context() {
        let o = Options::from_args(args(&["--faults", "drop=1.5"]));
        let _ = base_config(Dataset::DblpLike, &o);
    }

    #[test]
    fn parse_errors_name_known_flags() {
        let err = Options::try_from_args(args(&["--scale"])).unwrap_err();
        assert!(err.contains("missing value for --scale"), "{err}");
        let err = Options::try_from_args(args(&["oops"])).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
        // The panicking wrapper appends the usage hint naming the flags.
        let caught = std::panic::catch_unwind(|| Options::from_args(args(&["--scale"])));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("usage:"), "{msg}");
        assert!(msg.contains("--eval-every"), "{msg}");
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        let err = Options::try_from_args(args(&["--scale", "0.1", "--scale", "0.2"])).unwrap_err();
        assert!(err.contains("duplicate flag --scale"), "{err}");
        let err = Options::try_from_args(args(&["--quick", "--quick"])).unwrap_err();
        assert!(err.contains("duplicate flag --quick"), "{err}");
    }

    #[test]
    fn runtime_flags_flow_into_config() {
        // Default and explicit sync.
        assert_eq!(runtime_config(&Options::default()), RuntimeMode::Sync);
        let o = Options::from_args(args(&["--runtime", "sync"]));
        assert_eq!(runtime_config(&o), RuntimeMode::Sync);
        // Async with knobs.
        let o = Options::from_args(args(&[
            "--runtime",
            "async",
            "--async-k",
            "3",
            "--async-gamma",
            "0.8",
        ]));
        match runtime_config(&o) {
            RuntimeMode::Async(acfg) => {
                assert_eq!(acfg.k, 3);
                assert_eq!(acfg.gamma, 0.8);
            }
            other => panic!("expected async mode, got {other:?}"),
        }
        // Async defaults apply when knobs are omitted.
        let o = Options::from_args(args(&["--runtime", "async"]));
        assert_eq!(
            runtime_config(&o),
            RuntimeMode::Async(AsyncConfig::default())
        );
        // And base_config threads the mode + workers through.
        let o = Options::from_args(args(&["--runtime", "async", "--workers", "4"]));
        let cfg = base_config(Dataset::DblpLike, &o);
        assert_eq!(cfg.runtime, RuntimeMode::Async(AsyncConfig::default()));
        assert_eq!(cfg.workers, Some(4));
        assert_eq!(
            base_config(Dataset::DblpLike, &Options::default()).runtime,
            RuntimeMode::Sync
        );
    }

    #[test]
    fn compress_flag_flows_into_config() {
        // Absent flag: historical uncompressed accounting.
        assert_eq!(compression_config(&Options::default()), None);
        assert_eq!(
            base_config(Dataset::DblpLike, &Options::default()).compression,
            None
        );
        // Every codec spelling round-trips into the config.
        for (spec, want) in [
            ("ident", Compression::Identity),
            ("q8", Compression::QuantI8),
            ("f16", Compression::QuantF16),
            ("topk:0.25", Compression::TopK { frac: 0.25 }),
        ] {
            let o = Options::from_args(args(&["--compress", spec]));
            assert_eq!(compression_config(&o), Some(want), "{spec}");
            assert_eq!(
                base_config(Dataset::DblpLike, &o).compression,
                Some(want),
                "{spec}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad value for --compress")]
    fn compress_typo_panics_naming_choices() {
        let o = Options::from_args(args(&["--compress", "gzip"]));
        let _ = compression_config(&o);
    }

    #[test]
    #[should_panic(expected = "bad value for --compress")]
    fn compress_topk_fraction_out_of_range_panics() {
        let o = Options::from_args(args(&["--compress", "topk:0.9"]));
        let _ = compression_config(&o);
    }

    #[test]
    #[should_panic(expected = "bad value for --runtime")]
    fn runtime_typo_panics_naming_choices() {
        let o = Options::from_args(args(&["--runtime", "asink"]));
        let _ = runtime_config(&o);
    }

    #[test]
    #[should_panic(expected = "--async-k requires --runtime async")]
    fn async_knobs_without_async_runtime_panic() {
        let o = Options::from_args(args(&["--async-k", "3"]));
        let _ = runtime_config(&o);
    }

    #[test]
    #[should_panic(expected = "bad async runtime config")]
    fn invalid_async_gamma_panics() {
        let o = Options::from_args(args(&["--runtime", "async", "--async-gamma", "1.5"]));
        let _ = runtime_config(&o);
    }

    #[test]
    fn render_curve_labels_by_actual_round() {
        // Dense cadence: labels match positions.
        let s = render_curve("FedAvg", &[0, 1, 2], &[0.5, 0.6, 0.7]);
        assert!(s.contains("r00=0.5000"));
        assert!(s.contains("r02=0.7000"));
        // Sparse cadence (--eval-every 5 on 11 rounds): true rounds.
        let s = render_curve("FedAvg", &[4, 9, 10], &[0.5, 0.6, 0.7]);
        assert!(s.contains("r04=0.5000"));
        assert!(s.contains("r09=0.6000"));
        assert!(s.contains("r10=0.7000"));
        assert!(!s.contains("r00="), "sparse curves must not relabel from 0");
        // Legacy fallback: missing round info degrades to positions.
        let s = render_curve("FedAvg", &[], &[0.5, 0.6]);
        assert!(s.contains("r00=0.5000") && s.contains("r01=0.6000"));
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn rejects_positional_args() {
        let _ = Options::from_args(["oops".to_string()]);
    }

    #[test]
    fn parse_framework_resolves_the_whole_zoo() {
        let o = Options::default();
        for (name, display) in [
            ("global", "Global"),
            ("local", "Local"),
            ("fedavg", "FedAvg"),
            ("fedprox", "FedProx(mu=0.01)"),
            ("feddyn", "FedDyn(alpha=0.01)"),
            ("fedadam", "FedAdam(lr=0.01)"),
            ("fedda-restart", "FedDA 1 (Restart)"),
            ("fedda-explore", "FedDA 2 (Explore)"),
        ] {
            let fw = parse_framework(name, &o).expect(name);
            assert_eq!(fw.name(), display);
        }
        let err = parse_framework("fedsgd", &o).unwrap_err();
        assert!(err.contains("unknown framework 'fedsgd'"), "{err}");
        assert!(err.contains("fedprox|feddyn|fedadam"), "{err}");
    }

    #[test]
    fn protocol_knobs_flow_into_frameworks() {
        let o = Options::from_args(args(&["--mu", "0.5"]));
        match parse_framework("fedprox", &o).unwrap() {
            Framework::FedProx(p) => assert_eq!(p.mu, 0.5),
            other => panic!("expected FedProx, got {other:?}"),
        }
        let o = Options::from_args(args(&["--alpha", "0.1", "--client-fraction", "0.5"]));
        match parse_framework("feddyn", &o).unwrap() {
            Framework::FedDyn(p) => {
                assert_eq!(p.alpha, 0.1);
                assert_eq!(p.client_fraction, 0.5);
            }
            other => panic!("expected FedDyn, got {other:?}"),
        }
        let o = Options::from_args(args(&[
            "--server-lr",
            "0.1",
            "--beta1",
            "0.8",
            "--beta2",
            "0.95",
            "--adam-eps",
            "1e-6",
        ]));
        match parse_framework("fedadam", &o).unwrap() {
            Framework::FedAdam(p) => {
                assert_eq!(p.server_lr, 0.1);
                assert_eq!(p.beta1, 0.8);
                assert_eq!(p.beta2, 0.95);
                assert_eq!(p.epsilon, 1e-6);
            }
            other => panic!("expected FedAdam, got {other:?}"),
        }
    }

    #[test]
    fn invalid_protocol_knobs_are_rejected_at_parse_time() {
        let o = Options::from_args(args(&["--mu", "-1"]));
        assert_eq!(
            parse_framework("fedprox", &o).unwrap_err(),
            "invalid --framework fedprox configuration: \
             mu must be finite and non-negative, got -1"
        );
        let o = Options::from_args(args(&["--alpha", "0"]));
        assert_eq!(
            parse_framework("feddyn", &o).unwrap_err(),
            "invalid --framework feddyn configuration: \
             alpha must be finite and positive, got 0"
        );
        let o = Options::from_args(args(&["--beta1", "1"]));
        assert_eq!(
            parse_framework("fedadam", &o).unwrap_err(),
            "invalid --framework fedadam configuration: \
             beta1 must be in [0,1), got 1"
        );
        let o = Options::from_args(args(&["--client-fraction", "0"]));
        assert_eq!(
            parse_framework("fedavg", &o).unwrap_err(),
            "invalid --framework fedavg configuration: \
             client_fraction must be in (0,1], got 0"
        );
    }
}
