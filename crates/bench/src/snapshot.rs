//! Schema-versioned performance snapshots (`BENCH_<date>.json`).
//!
//! A [`Snapshot`] is the machine-readable record of one run of the fixed
//! perf suite ([`crate::suite`]): per-case wall-time statistics plus an
//! environment fingerprint, written to the repo root so perf claims stay
//! verifiable across PRs. The format is versioned by [`SCHEMA_VERSION`];
//! [`crate::compare`] diffs two snapshots and flags regressions.
//!
//! Wall-clock reads live in this bench crate only — the `fl` protocol code
//! is kept wall-clock-free by fedda-lint's D2 rule, so the harness observes
//! timing without ever perturbing the deterministic RNG streams.

use serde_json::{json, Value};
use std::path::Path;
use std::time::Instant;

/// Version of the `BENCH_*.json` schema. Bump on any incompatible change
/// (renamed fields, changed units); `--compare` refuses to diff snapshots
/// with mismatched versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Wall-time statistics of one benchmark case, in nanoseconds per
/// iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseResult {
    /// Stable case identifier, e.g. `gemm/nn/256/blocked`.
    pub name: String,
    /// Timed iterations per sample.
    pub iters: u64,
    /// Number of samples taken (each sample times `iters` iterations).
    pub samples: u64,
    /// Median over samples of per-iteration wall time (ns) — the number
    /// `--compare` verdicts use.
    pub median_ns: u64,
    /// Fastest sample (ns/iter) — the low-noise floor.
    pub min_ns: u64,
    /// Mean over samples (ns/iter).
    pub mean_ns: u64,
    /// Derived throughput for FL cases: dispatched clients per second at
    /// the median. Additive optional field — absent for non-FL cases and
    /// in snapshots written before it existed, so the schema version is
    /// unchanged.
    pub clients_per_sec: Option<f64>,
    /// Derived throughput for FL cases: rounds per second at the median
    /// (additive optional field, same compatibility rules).
    pub rounds_per_sec: Option<f64>,
}

impl CaseResult {
    fn to_value(&self) -> Value {
        let mut v = json!({
            "name": self.name,
            "iters": self.iters,
            "samples": self.samples,
            "median_ns": self.median_ns,
            "min_ns": self.min_ns,
            "mean_ns": self.mean_ns,
        });
        if let Some(cps) = self.clients_per_sec {
            v["clients_per_sec"] = json!(cps);
        }
        if let Some(rps) = self.rounds_per_sec {
            v["rounds_per_sec"] = json!(rps);
        }
        v
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let field = |k: &str| -> Result<u64, String> {
            v[k].as_u64()
                .ok_or_else(|| format!("case field {k:?} missing or not a non-negative integer"))
        };
        Ok(Self {
            name: v["name"]
                .as_str()
                .ok_or("case field \"name\" missing or not a string")?
                .to_string(),
            iters: field("iters")?,
            samples: field("samples")?,
            median_ns: field("median_ns")?,
            min_ns: field("min_ns")?,
            mean_ns: field("mean_ns")?,
            // Lenient on purpose: older snapshots predate these fields.
            clients_per_sec: v["clients_per_sec"].as_f64(),
            rounds_per_sec: v["rounds_per_sec"].as_f64(),
        })
    }
}

/// Fingerprint of the environment a snapshot was taken in. Cross-machine
/// comparisons are only order-of-magnitude meaningful; the fingerprint
/// makes the provenance explicit.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvFingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub cpus: u64,
    /// The kernel thread budget (`fedda_tensor::gemm::configured_threads`).
    pub kernel_threads: u64,
    /// Raw `FEDDA_THREADS` env var, if set.
    pub fedda_threads_env: Option<String>,
    /// `release` or `debug`.
    pub profile: String,
}

impl EnvFingerprint {
    /// Capture the current process environment.
    pub fn capture() -> Self {
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            kernel_threads: fedda_tensor::gemm::configured_threads() as u64,
            fedda_threads_env: std::env::var("FEDDA_THREADS").ok(),
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
        }
    }

    fn to_value(&self) -> Value {
        json!({
            "os": self.os,
            "arch": self.arch,
            "cpus": self.cpus,
            "kernel_threads": self.kernel_threads,
            "fedda_threads_env": match &self.fedda_threads_env {
                Some(v) => json!(v.as_str()),
                None => Value::Null,
            },
            "profile": self.profile,
        })
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let s = |k: &str| -> Result<String, String> {
            v[k].as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("env field {k:?} missing or not a string"))
        };
        let n = |k: &str| -> Result<u64, String> {
            v[k].as_u64()
                .ok_or_else(|| format!("env field {k:?} missing or not an integer"))
        };
        Ok(Self {
            os: s("os")?,
            arch: s("arch")?,
            cpus: n("cpus")?,
            kernel_threads: n("kernel_threads")?,
            fedda_threads_env: v["fedda_threads_env"].as_str().map(str::to_string),
            profile: s("profile")?,
        })
    }
}

/// One full perf-suite run: schema version, capture date, profile label,
/// environment fingerprint and per-case results.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// [`SCHEMA_VERSION`] at capture time.
    pub schema_version: u64,
    /// UTC capture date, `YYYY-MM-DD`.
    pub created: String,
    /// Suite profile: `smoke` or `full`.
    pub label: String,
    /// Base seed the suite inputs were generated from.
    pub seed: u64,
    /// Environment fingerprint.
    pub env: EnvFingerprint,
    /// Per-case timing results, in suite order.
    pub cases: Vec<CaseResult>,
}

impl Snapshot {
    /// The repo-root naming convention: `BENCH_<date>.json`.
    pub fn default_path(created: &str) -> String {
        format!("BENCH_{created}.json")
    }

    /// Look up a case by name.
    pub fn case(&self, name: &str) -> Option<&CaseResult> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// Serialize to the JSON tree written to `BENCH_*.json`.
    pub fn to_value(&self) -> Value {
        json!({
            "schema_version": self.schema_version,
            "created": self.created,
            "label": self.label,
            "seed": self.seed,
            "env": self.env.to_value(),
            "cases": self.cases.iter().map(CaseResult::to_value).collect::<Vec<_>>(),
        })
    }

    /// Rebuild from a parsed JSON tree, validating the schema version.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let version = v["schema_version"]
            .as_u64()
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this binary reads {SCHEMA_VERSION})"
            ));
        }
        let cases = match &v["cases"] {
            Value::Array(items) => items
                .iter()
                .map(CaseResult::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing cases array".into()),
        };
        Ok(Self {
            schema_version: version,
            created: v["created"]
                .as_str()
                .ok_or("missing created date")?
                .to_string(),
            label: v["label"].as_str().ok_or("missing label")?.to_string(),
            seed: v["seed"].as_u64().ok_or("missing seed")?,
            env: EnvFingerprint::from_value(&v["env"])?,
            cases,
        })
    }

    /// Parse a snapshot file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value = serde_json::from_str::<Value>(&text)
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        Self::from_value(&value).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the snapshot (pretty-printed, trailing newline).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fedda::report::write_json(path, &self.to_value())
    }
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (civil-date
/// conversion per Howard Hinnant's `days_from_civil` inverse — no calendar
/// dependency).
pub fn utc_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Convert days since 1970-01-01 to a (year, month, day) civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Time one case: `samples` timed samples of `iters` iterations each,
/// after one untimed warm-up iteration. Returns per-iteration statistics.
pub fn time_case<F: FnMut()>(name: &str, samples: u64, iters: u64, mut f: F) -> CaseResult {
    let samples = samples.max(1);
    let iters = iters.max(1);
    f(); // warm-up: fault in code paths and caches before the first sample
    let mut per_iter_ns: Vec<u64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let total = start.elapsed().as_nanos();
        per_iter_ns.push((total / u128::from(iters)).min(u128::from(u64::MAX)) as u64);
    }
    per_iter_ns.sort_unstable();
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let min_ns = per_iter_ns[0];
    let mean_ns = (per_iter_ns.iter().map(|&n| u128::from(n)).sum::<u128>()
        / per_iter_ns.len() as u128) as u64;
    CaseResult {
        name: name.to_string(),
        iters,
        samples,
        median_ns,
        min_ns,
        mean_ns,
        clients_per_sec: None,
        rounds_per_sec: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot() -> Snapshot {
        Snapshot {
            schema_version: SCHEMA_VERSION,
            created: "2026-08-08".into(),
            label: "smoke".into(),
            seed: 0,
            env: EnvFingerprint {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpus: 8,
                kernel_threads: 4,
                fedda_threads_env: Some("4".into()),
                profile: "release".into(),
            },
            cases: vec![
                CaseResult {
                    name: "gemm/nn/64/blocked".into(),
                    iters: 3,
                    samples: 5,
                    median_ns: 1_000,
                    min_ns: 900,
                    mean_ns: 1_050,
                    clients_per_sec: None,
                    rounds_per_sec: None,
                },
                CaseResult {
                    name: "fl_round/fedavg/s0.0015".into(),
                    iters: 1,
                    samples: 3,
                    median_ns: 2_000_000,
                    min_ns: 1_900_000,
                    mean_ns: 2_100_000,
                    clients_per_sec: Some(16_000.0),
                    rounds_per_sec: Some(500.0),
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        let text = serde_json::to_string_pretty(&snap.to_value()).unwrap();
        let back = Snapshot::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_round_trips_through_file() {
        let dir = std::env::temp_dir().join("fedda_snapshot_test");
        let path = dir.join("BENCH_2026-08-08.json");
        let snap = sample_snapshot();
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn none_env_var_round_trips_as_null() {
        let mut snap = sample_snapshot();
        snap.env.fedda_threads_env = None;
        let back = Snapshot::from_value(&snap.to_value()).unwrap();
        assert_eq!(back.env.fedda_threads_env, None);
    }

    #[test]
    fn throughput_fields_are_additive_and_lenient() {
        let v = sample_snapshot().to_value();
        // Written only where set…
        assert!(v["cases"][0].get("clients_per_sec").is_none());
        assert_eq!(v["cases"][1]["clients_per_sec"].as_f64(), Some(16_000.0));
        assert_eq!(v["cases"][1]["rounds_per_sec"].as_f64(), Some(500.0));
        // …and snapshots from before the fields existed read back as None,
        // without a schema bump.
        let mut old = v.clone();
        let case = old["cases"][1].as_object_mut().unwrap();
        case.retain(|(k, _)| k != "clients_per_sec" && k != "rounds_per_sec");
        let back = Snapshot::from_value(&old).unwrap();
        assert_eq!(back.cases[1].clients_per_sec, None);
        assert_eq!(back.cases[1].rounds_per_sec, None);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let mut v = sample_snapshot().to_value();
        v["schema_version"] = json!(SCHEMA_VERSION + 1);
        let err = Snapshot::from_value(&v).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
    }

    #[test]
    fn malformed_cases_are_rejected_with_field_names() {
        let mut v = sample_snapshot().to_value();
        v["cases"] = json!([{ "name": "x", "iters": 1 }]);
        let err = Snapshot::from_value(&v).unwrap_err();
        assert!(err.contains("samples"), "{err}");
    }

    #[test]
    fn default_path_follows_convention() {
        assert_eq!(
            Snapshot::default_path("2026-08-08"),
            "BENCH_2026-08-08.json"
        );
    }

    #[test]
    fn civil_date_conversion_hits_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_663), (2026, 7, 29));
        let today = utc_today();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
    }

    #[test]
    fn time_case_produces_ordered_stats() {
        let mut x = 0u64;
        let res = time_case("busy", 5, 10, || {
            for i in 0..100 {
                x = x.wrapping_add(i);
            }
            std::hint::black_box(x);
        });
        assert_eq!(res.samples, 5);
        assert_eq!(res.iters, 10);
        assert!(res.min_ns <= res.median_ns);
        assert!(res.median_ns > 0 || res.min_ns == 0);
    }

    #[test]
    fn zero_samples_and_iters_are_clamped() {
        let res = time_case("noop", 0, 0, || {});
        assert_eq!(res.samples, 1);
        assert_eq!(res.iters, 1);
    }
}
