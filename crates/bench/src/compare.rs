//! Regression diff between two [`Snapshot`]s (`perf --compare old new`).
//!
//! The verdict is driven by per-case `median_ns` ratios against a
//! configurable threshold (default [`DEFAULT_THRESHOLD`] = 10%): a case
//! whose median slowed down by more than the threshold is a regression, as
//! is a case that disappeared from the new snapshot (coverage must never
//! silently shrink). New cases are reported but pass.

use crate::snapshot::Snapshot;
use fedda::table::TextTable;

/// Default regression threshold: 10% median slowdown.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// Per-case outcome of a snapshot diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Median slowed down beyond the threshold.
    Regression,
    /// Median sped up beyond the threshold.
    Improvement,
    /// Within the threshold either way.
    Unchanged,
    /// Present in the old snapshot, missing from the new — treated as a
    /// failure so suite coverage cannot silently shrink.
    MissingInNew,
    /// Only present in the new snapshot (fresh coverage; passes).
    NewCase,
}

impl Verdict {
    /// Short display form for the delta table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Unchanged => "unchanged",
            Verdict::MissingInNew => "MISSING",
            Verdict::NewCase => "new",
        }
    }
}

/// One case's delta between two snapshots.
#[derive(Clone, Debug)]
pub struct CaseDelta {
    /// Case name.
    pub name: String,
    /// Old median (ns/iter), when the case exists in the old snapshot.
    pub old_median_ns: Option<u64>,
    /// New median (ns/iter), when the case exists in the new snapshot.
    pub new_median_ns: Option<u64>,
    /// `new / old` median ratio, when both sides exist.
    pub ratio: Option<f64>,
    /// The verdict under the comparison's threshold.
    pub verdict: Verdict,
}

/// The result of diffing two snapshots.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Per-case deltas: old-snapshot suite order, then any new cases.
    pub deltas: Vec<CaseDelta>,
    /// The threshold the verdicts were computed under.
    pub threshold: f64,
}

impl Comparison {
    /// Cases that fail the gate ([`Verdict::Regression`] or
    /// [`Verdict::MissingInNew`]).
    pub fn failures(&self) -> Vec<&CaseDelta> {
        self.deltas
            .iter()
            .filter(|d| matches!(d.verdict, Verdict::Regression | Verdict::MissingInNew))
            .collect()
    }

    /// Whether the new snapshot passes the regression gate.
    pub fn passes(&self) -> bool {
        self.failures().is_empty()
    }

    /// Render the per-case delta table plus a one-line summary.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&["Case", "Old (ns)", "New (ns)", "New/Old", "Verdict"]);
        for d in &self.deltas {
            table.row(&[
                d.name.clone(),
                d.old_median_ns.map_or("-".into(), |n| n.to_string()),
                d.new_median_ns.map_or("-".into(), |n| n.to_string()),
                d.ratio.map_or("-".into(), |r| format!("{r:.3}")),
                d.verdict.label().into(),
            ]);
        }
        let failures = self.failures();
        let summary = if failures.is_empty() {
            format!(
                "OK: {} cases within the {:.0}% regression threshold",
                self.deltas.len(),
                self.threshold * 100.0
            )
        } else {
            format!(
                "FAIL: {}/{} cases regress beyond the {:.0}% threshold: {}",
                failures.len(),
                self.deltas.len(),
                self.threshold * 100.0,
                failures
                    .iter()
                    .map(|d| d.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        format!("{}\n{summary}", table.render())
    }
}

/// Diff two snapshots under `threshold`. Returns an error when the schema
/// versions differ (load already pins each file to [`crate::snapshot::SCHEMA_VERSION`],
/// so this only trips on hand-built values).
pub fn compare(old: &Snapshot, new: &Snapshot, threshold: f64) -> Result<Comparison, String> {
    if old.schema_version != new.schema_version {
        return Err(format!(
            "schema_version mismatch: old {} vs new {}",
            old.schema_version, new.schema_version
        ));
    }
    let mut deltas = Vec::with_capacity(old.cases.len());
    for oc in &old.cases {
        match new.case(&oc.name) {
            Some(nc) => {
                let ratio = nc.median_ns as f64 / (oc.median_ns as f64).max(1.0);
                let verdict = if ratio > 1.0 + threshold {
                    Verdict::Regression
                } else if ratio < 1.0 - threshold {
                    Verdict::Improvement
                } else {
                    Verdict::Unchanged
                };
                deltas.push(CaseDelta {
                    name: oc.name.clone(),
                    old_median_ns: Some(oc.median_ns),
                    new_median_ns: Some(nc.median_ns),
                    ratio: Some(ratio),
                    verdict,
                });
            }
            None => deltas.push(CaseDelta {
                name: oc.name.clone(),
                old_median_ns: Some(oc.median_ns),
                new_median_ns: None,
                ratio: None,
                verdict: Verdict::MissingInNew,
            }),
        }
    }
    for nc in &new.cases {
        if old.case(&nc.name).is_none() {
            deltas.push(CaseDelta {
                name: nc.name.clone(),
                old_median_ns: None,
                new_median_ns: Some(nc.median_ns),
                ratio: None,
                verdict: Verdict::NewCase,
            });
        }
    }
    Ok(Comparison { deltas, threshold })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CaseResult, EnvFingerprint, Snapshot, SCHEMA_VERSION};

    fn snap(cases: &[(&str, u64)]) -> Snapshot {
        Snapshot {
            schema_version: SCHEMA_VERSION,
            created: "2026-08-08".into(),
            label: "smoke".into(),
            seed: 0,
            env: EnvFingerprint::capture(),
            cases: cases
                .iter()
                .map(|(name, median)| CaseResult {
                    name: name.to_string(),
                    iters: 1,
                    samples: 3,
                    median_ns: *median,
                    min_ns: *median,
                    mean_ns: *median,
                    clients_per_sec: None,
                    rounds_per_sec: None,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = snap(&[("gemm/nn/64/blocked", 1000), ("hgn/forward", 5000)]);
        let cmp = compare(&a, &a.clone(), DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.passes());
        assert_eq!(cmp.deltas.len(), 2);
        assert!(cmp.deltas.iter().all(|d| d.verdict == Verdict::Unchanged));
        assert!(cmp.render().contains("OK: 2 cases"));
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let old = snap(&[("a", 1000), ("b", 1000)]);
        let new = snap(&[("a", 1111), ("b", 1000)]); // a: +11.1% > 10%
        let cmp = compare(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(!cmp.passes());
        assert_eq!(cmp.failures().len(), 1);
        assert_eq!(cmp.deltas[0].verdict, Verdict::Regression);
        assert_eq!(cmp.deltas[1].verdict, Verdict::Unchanged);
        assert!(cmp.render().contains("FAIL: 1/2"));
        // A looser threshold turns the same delta into a pass.
        assert!(compare(&old, &new, 0.20).unwrap().passes());
    }

    #[test]
    fn improvement_is_reported_but_passes() {
        let old = snap(&[("a", 1000)]);
        let new = snap(&[("a", 500)]);
        let cmp = compare(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.passes());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Improvement);
        let ratio = cmp.deltas[0].ratio.unwrap();
        assert!((ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_case_fails_and_new_case_passes() {
        let old = snap(&[("a", 1000), ("dropped", 1000)]);
        let new = snap(&[("a", 1000), ("added", 1000)]);
        let cmp = compare(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(!cmp.passes());
        let by_name = |n: &str| {
            cmp.deltas
                .iter()
                .find(|d| d.name == n)
                .map(|d| d.verdict)
                .unwrap()
        };
        assert_eq!(by_name("dropped"), Verdict::MissingInNew);
        assert_eq!(by_name("added"), Verdict::NewCase);
        assert_eq!(by_name("a"), Verdict::Unchanged);
        assert!(cmp.render().contains("MISSING"));
    }

    #[test]
    fn exact_threshold_boundary_is_not_a_regression() {
        let old = snap(&[("a", 1000)]);
        let new = snap(&[("a", 1100)]); // exactly +10%
        let cmp = compare(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.passes());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Unchanged);
    }

    #[test]
    fn schema_version_mismatch_is_an_error() {
        let old = snap(&[("a", 1000)]);
        let mut new = snap(&[("a", 1000)]);
        new.schema_version += 1;
        assert!(compare(&old, &new, DEFAULT_THRESHOLD).is_err());
    }
}
