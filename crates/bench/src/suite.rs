//! The fixed, seeded perf suite behind the `perf` binary.
//!
//! Three tiers mirror the criterion benches (`benches/`) so snapshot
//! numbers track the same entry points the micro-benchmarks exercise:
//!
//! 1. **GEMM** — square matmuls over the paper-relevant shapes in all
//!    three layouts (`nn`/`tn`/`nt`), blocked dispatch vs the naive
//!    reference loops (`fedda_tensor::gemm` vs `Matrix::matmul_*_naive`);
//! 2. **HGN** — Simple-HGN forward and forward+backward at the experiment
//!    model size on a DBLP-like graph;
//! 3. **FL round** — one full federated round (local updates +
//!    aggregation + evaluation) for FedAvg and both FedDA strategies at
//!    several dataset scales.
//!
//! The `--smoke` profile shrinks shapes, scales and sample counts to a
//! CI-sized run; case names are stable within a profile so `--compare`
//! can diff any two snapshots of the same profile.

use crate::snapshot::{time_case, CaseResult};
use crate::{experiment_model, experiment_train};
use fedda::experiment::{Dataset, Experiment, ExperimentConfig, Framework};
use fedda::fl::{
    AsyncConfig, AsyncDriver, Compression, FedAvg, FedDa, FlConfig, FlSystem, RoundDriver,
    RuntimeMode,
};
use fedda_hetgraph::split::split_edges;
use fedda_hetgraph::LinkSampler;
use fedda_hgn::{GraphView, SimpleHgn};
use fedda_tensor::{gemm, Graph, Matrix, TapeBindings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

/// Suite profile and knobs.
#[derive(Clone, Copy, Debug)]
pub struct SuiteConfig {
    /// CI-sized profile: fewer shapes, smaller graphs, fewer samples.
    pub smoke: bool,
    /// Base seed for every generated input (matrices, graphs, runs).
    pub seed: u64,
    /// Override the per-case sample count (default 3 smoke / 5 full).
    pub samples: Option<u64>,
    /// Print per-case progress to stderr.
    pub progress: bool,
}

impl SuiteConfig {
    /// Profile label recorded in the snapshot.
    pub fn label(&self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }

    fn samples(&self) -> u64 {
        self.samples.unwrap_or(if self.smoke { 3 } else { 5 })
    }

    fn gemm_shapes(&self) -> &'static [usize] {
        if self.smoke {
            &[64, 256]
        } else {
            &[64, 256, 512]
        }
    }

    fn hgn_scale(&self) -> f64 {
        if self.smoke {
            0.001
        } else {
            0.002
        }
    }

    fn fl_scales(&self) -> &'static [f64] {
        if self.smoke {
            &[0.0008, 0.0015]
        } else {
            &[0.0015, 0.003, 0.006]
        }
    }

    fn throughput_clients(&self) -> &'static [usize] {
        if self.smoke {
            &[1_000]
        } else {
            &[1_000, 10_000]
        }
    }
}

fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_vec(
        r,
        c,
        (0..r * c).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
}

/// Run the whole suite and return per-case results in suite order.
pub fn run_suite(cfg: &SuiteConfig) -> Vec<CaseResult> {
    let mut out = Vec::new();
    let push = |cases: &mut Vec<CaseResult>, case: CaseResult| {
        if cfg.progress {
            eprintln!(
                "  {} median {:.3} ms ({} samples x {} iters)",
                case.name,
                case.median_ns as f64 / 1e6,
                case.samples,
                case.iters
            );
        }
        cases.push(case);
    };

    // 1. GEMM shapes, blocked vs naive, all layouts.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for &n in cfg.gemm_shapes() {
        let a = rand_matrix(&mut rng, n, n);
        let b = rand_matrix(&mut rng, n, n);
        // Larger shapes amortise a sample over fewer iterations.
        let iters = match n {
            0..=64 => 10,
            65..=256 => 2,
            _ => 1,
        };
        type Kernel = fn(&Matrix, &Matrix) -> Matrix;
        let kernels: [(&str, &str, Kernel); 6] = [
            ("nn", "blocked", gemm::gemm_nn as Kernel),
            ("nn", "naive", Matrix::matmul_naive as Kernel),
            ("tn", "blocked", gemm::gemm_tn as Kernel),
            ("tn", "naive", Matrix::matmul_tn_naive as Kernel),
            ("nt", "blocked", gemm::gemm_nt as Kernel),
            ("nt", "naive", Matrix::matmul_nt_naive as Kernel),
        ];
        for (layout, variant, kernel) in kernels {
            let case = time_case(
                &format!("gemm/{layout}/{n}/{variant}"),
                cfg.samples(),
                iters,
                || {
                    black_box(kernel(&a, &b));
                },
            );
            push(&mut out, case);
        }
    }

    // 2. Simple-HGN forward / forward+backward at the experiment model
    //    size (mirrors benches/hgn_forward_backward.rs).
    let graph = fedda::data::dblp_like(&fedda::data::PresetOptions {
        scale: cfg.hgn_scale(),
        seed: cfg.seed,
        ..Default::default()
    })
    .graph;
    let model_cfg = experiment_model(false);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (model, params) = SimpleHgn::init_params(graph.schema(), &model_cfg, &mut rng);
    let view = GraphView::new(&graph, model_cfg.add_self_loops);
    let case = time_case("hgn/forward", cfg.samples(), 2, || {
        let mut g = Graph::new();
        let mut tb = TapeBindings::new();
        black_box(model.encode::<StdRng>(&mut g, &mut tb, &params, &view, None));
    });
    push(&mut out, case);

    let sampler = LinkSampler::new(&graph);
    let mut rng2 = StdRng::seed_from_u64(cfg.seed ^ 1);
    let pos = sampler.all_positives();
    let examples = sampler.with_negatives(&pos[..256.min(pos.len())], 1, &mut rng2);
    let targets: Arc<Vec<f32>> = Arc::new(
        examples
            .iter()
            .map(|e| if e.label { 1.0 } else { 0.0 })
            .collect(),
    );
    let case = time_case("hgn/forward_backward", cfg.samples(), 2, || {
        let mut g = Graph::new();
        let mut tb = TapeBindings::new();
        let emb = model.encode::<StdRng>(&mut g, &mut tb, &params, &view, None);
        let logits = model.score_links(&mut g, &mut tb, &params, emb, &examples);
        let loss = g.bce_with_logits(logits, targets.clone());
        g.backward(loss);
    });
    push(&mut out, case);

    // 3. One full FL round per protocol at several dataset scales
    //    (mirrors benches/fl_round.rs; dataset generation and the split
    //    are setup, not timed).
    for &scale in cfg.fl_scales() {
        let exp = Experiment::new(ExperimentConfig {
            dataset: Dataset::DblpLike,
            scale,
            num_clients: 4,
            rounds: 1,
            runs: 1,
            model: experiment_model(false),
            train: experiment_train(),
            seed: cfg.seed,
            ..Default::default()
        });
        let protocols: &[(&str, Framework)] = &[
            ("fedavg", Framework::FedAvg(FedAvg::vanilla())),
            ("fedda_restart", Framework::FedDa(FedDa::restart())),
            ("fedda_explore", Framework::FedDa(FedDa::explore())),
        ];
        for (label, framework) in protocols {
            let case = time_case(
                &format!("fl_round/{label}/s{scale}"),
                cfg.samples(),
                1,
                || {
                    black_box(exp.run_framework(framework));
                },
            );
            push(&mut out, case);
        }
    }

    // 4. The same round under the buffered-async runtime (K = 2,
    //    γ = 0.9) at the smallest FL scale — pins the event-queue
    //    overhead relative to the sync facade above.
    let async_exp = Experiment::new(ExperimentConfig {
        dataset: Dataset::DblpLike,
        scale: cfg.fl_scales()[0],
        num_clients: 4,
        rounds: 1,
        runs: 1,
        model: experiment_model(false),
        train: experiment_train(),
        seed: cfg.seed,
        runtime: RuntimeMode::Async(AsyncConfig { k: 2, gamma: 0.9 }),
        ..Default::default()
    });
    let protocols: &[(&str, Framework)] = &[
        ("fedavg", Framework::FedAvg(FedAvg::vanilla())),
        ("fedda_explore", Framework::FedDa(FedDa::explore())),
    ];
    for (label, framework) in protocols {
        let case = time_case(
            &format!("fl_round_async/{label}/s{}", cfg.fl_scales()[0]),
            cfg.samples(),
            1,
            || {
                black_box(async_exp.run_framework(framework));
            },
        );
        push(&mut out, case);
    }

    // 4b. The same sync round through each uplink codec at the smallest
    //     FL scale — pins the encode/decode overhead of the Compressor
    //     stage relative to the uncompressed `fl_round/fedavg` case above
    //     (ident isolates pure framing cost, the lossy codecs add their
    //     quantization/selection arithmetic).
    for compression in [
        Compression::Identity,
        Compression::QuantI8,
        Compression::QuantF16,
        Compression::TopK { frac: 0.25 },
    ] {
        let exp = Experiment::new(ExperimentConfig {
            dataset: Dataset::DblpLike,
            scale: cfg.fl_scales()[0],
            num_clients: 4,
            rounds: 1,
            runs: 1,
            model: experiment_model(false),
            train: experiment_train(),
            seed: cfg.seed,
            compression: Some(compression),
            ..Default::default()
        });
        let label = match compression {
            Compression::Identity => "ident",
            Compression::QuantI8 => "q8",
            Compression::QuantF16 => "f16",
            Compression::TopK { .. } => "topk",
        };
        let case = time_case(
            &format!("fl_round_compressed/{label}/s{}", cfg.fl_scales()[0]),
            cfg.samples(),
            1,
            || {
                black_box(exp.run_framework(&Framework::FedAvg(FedAvg::vanilla())));
            },
        );
        push(&mut out, case);
    }

    // 5. Large-federation throughput: one round over 10³–10⁴ registered
    //    clients with paper-style fraction sampling (C chosen so ~32
    //    clients dispatch per round), in both runtimes. The federation
    //    replicates a tiny partitioned dataset — per-client work stays
    //    constant while registration count scales, so these cases measure
    //    the runtime's scheduling/selection overhead. Throughput lands in
    //    the snapshot as clients_per_sec / rounds_per_sec.
    for &m in cfg.throughput_clients() {
        for runtime in ["sync", "async"] {
            let (mut sys, dispatched) = throughput_system(m, cfg.seed);
            let mut case = time_case(
                &format!("fl_throughput/{runtime}/m{m}"),
                cfg.samples(),
                1,
                || {
                    let result = match runtime {
                        "sync" => RoundDriver::new()
                            .run(&mut FedAvg::with_fractions(32.0 / m as f64, 1.0), &mut sys),
                        _ => AsyncDriver::new(AsyncConfig { k: 8, gamma: 0.9 })
                            .run(&mut FedAvg::with_fractions(32.0 / m as f64, 1.0), &mut sys),
                    };
                    black_box(result.expect("throughput run"));
                },
            );
            let sec = (case.median_ns.max(1)) as f64 / 1e9;
            case.clients_per_sec = Some(dispatched as f64 / sec);
            case.rounds_per_sec = Some(1.0 / sec);
            push(&mut out, case);
        }
    }

    out
}

/// Build the large-federation system for the throughput cases: a tiny
/// DBLP-like graph partitioned into 4 real clients, replicated cyclically
/// to `m` registered clients (each replica gets its own derived RNG seed
/// from `FlSystem::new`). Returns the system plus the per-round dispatch
/// count under `C = 32/m`.
fn throughput_system(m: usize, seed: u64) -> (FlSystem, usize) {
    let g = fedda::data::dblp_like(&fedda::data::PresetOptions {
        scale: 0.0008,
        seed,
        ..Default::default()
    })
    .graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_edges(&g, 0.15, &mut rng);
    let pcfg = fedda::data::PartitionConfig::paper_defaults(4, g.schema().num_edge_types(), seed);
    let base = fedda::data::partition_non_iid(&split.train, &pcfg);
    let clients: Vec<fedda::data::ClientData> =
        (0..m).map(|i| base[i % base.len()].clone()).collect();
    let cfg = FlConfig {
        rounds: 1,
        model: fedda_hgn::HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 1,
            edge_emb_dim: 4,
            ..Default::default()
        },
        train: experiment_train(),
        eval_negatives: 2,
        seed,
        parallel: true,
        workers: Some(8),
        ..Default::default()
    };
    let dispatched = ((m as f64) * (32.0 / m as f64)).round().max(1.0) as usize;
    (
        FlSystem::new(&split.train, &split.test, clients, cfg),
        dispatched,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_and_are_labelled() {
        let smoke = SuiteConfig {
            smoke: true,
            seed: 0,
            samples: None,
            progress: false,
        };
        let full = SuiteConfig {
            smoke: false,
            ..smoke
        };
        assert_eq!(smoke.label(), "smoke");
        assert_eq!(full.label(), "full");
        assert!(smoke.gemm_shapes().len() < full.gemm_shapes().len());
        assert!(smoke.fl_scales().len() < full.fl_scales().len());
        assert!(smoke.samples() < full.samples());
        assert_eq!(
            SuiteConfig {
                samples: Some(1),
                ..smoke
            }
            .samples(),
            1
        );
    }
}
