//! Criterion micro-benchmarks of the tensor kernels on the hot path of
//! Simple-HGN training: dense matmul, gather/scatter message passing, and
//! the per-destination segment softmax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedda_tensor::{Graph, Matrix, Segments};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_vec(
        r,
        c,
        (0..r * c).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[64usize, 256] {
        let a = rand_matrix(&mut rng, n, n);
        let b = rand_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| a.matmul_tn(&b))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| a.matmul_nt(&b))
        });
    }
    group.finish();
}

/// Blocked+parallel dispatch vs the naive reference loops at a shape well
/// above the dispatch threshold. The acceptance target for the blocked
/// kernel is ≥2× over naive at 512³ on a ≥4-core machine.
fn bench_matmul_blocked_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_blocked_vs_naive");
    let mut rng = StdRng::seed_from_u64(3);
    for &n in &[256usize, 512] {
        let a = rand_matrix(&mut rng, n, n);
        let b = rand_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::new("blocked_nn", n), &n, |bench, _| {
            bench.iter(|| fedda_tensor::gemm::gemm_nn(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("naive_nn", n), &n, |bench, _| {
            bench.iter(|| a.matmul_naive(&b))
        });
        group.bench_with_input(BenchmarkId::new("blocked_nt", n), &n, |bench, _| {
            bench.iter(|| fedda_tensor::gemm::gemm_nt(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("naive_nt", n), &n, |bench, _| {
            bench.iter(|| a.matmul_nt_naive(&b))
        });
    }
    group.finish();
}

/// Thread scaling of the blocked kernel: 1 thread vs the full
/// `FEDDA_THREADS` budget (results are bit-identical either way; only
/// wall-clock should differ).
fn bench_matmul_thread_scaling(c: &mut Criterion) {
    use fedda_tensor::gemm;
    let mut group = c.benchmark_group("matmul_threads");
    let mut rng = StdRng::seed_from_u64(4);
    let n = 512usize;
    let a = rand_matrix(&mut rng, n, n);
    let b = rand_matrix(&mut rng, n, n);
    group.bench_with_input(BenchmarkId::new("threads", 1), &n, |bench, _| {
        bench.iter(|| gemm::with_kernel_threads(1, || gemm::gemm_nn(&a, &b)))
    });
    let full = gemm::configured_threads();
    group.bench_with_input(BenchmarkId::new("threads", full), &n, |bench, _| {
        bench.iter(|| gemm::gemm_nn(&a, &b))
    });
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_passing");
    let mut rng = StdRng::seed_from_u64(1);
    let nodes = 2_000usize;
    let dim = 32usize;
    for &edges in &[10_000usize, 50_000] {
        let h = rand_matrix(&mut rng, nodes, dim);
        let idx: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
        group.bench_with_input(BenchmarkId::new("gather_rows", edges), &edges, |b, _| {
            b.iter(|| h.gather_rows(&idx))
        });
        let msgs = rand_matrix(&mut rng, edges, dim);
        group.bench_with_input(BenchmarkId::new("scatter_add", edges), &edges, |b, _| {
            b.iter(|| msgs.scatter_add_rows(&idx, nodes))
        });
    }
    group.finish();
}

fn bench_segment_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_softmax");
    let mut rng = StdRng::seed_from_u64(2);
    let nodes = 2_000usize;
    for &edges in &[10_000usize, 50_000] {
        let seg: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
        let segs = Arc::new(Segments::new(seg, nodes));
        let scores = rand_matrix(&mut rng, edges, 1);
        group.bench_with_input(BenchmarkId::new("fwd", edges), &edges, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let x = g.input(scores.clone());
                g.segment_softmax(x, segs.clone())
            })
        });
        group.bench_with_input(BenchmarkId::new("fwd_bwd", edges), &edges, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let x = g.leaf(scores.clone());
                let sm = g.segment_softmax(x, segs.clone());
                let sq = g.mul(sm, sm);
                let loss = g.sum_all(sq);
                g.backward(loss);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_matmul_blocked_vs_naive, bench_matmul_thread_scaling,
        bench_gather_scatter, bench_segment_softmax
}
criterion_main!(benches);
