//! Criterion benchmarks of the Simple-HGN encoder: forward pass and full
//! forward+backward step on a DBLP-like graph, comparing the Simple-HGN
//! encoder against its GAT ablation (the cost of edge-type attention).

use criterion::{criterion_group, criterion_main, Criterion};
use fedda_data::{dblp_like, PresetOptions};
use fedda_hetgraph::LinkSampler;
use fedda_hgn::{GraphView, HgnConfig, SimpleHgn};
use fedda_tensor::{Graph, TapeBindings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_encoder(c: &mut Criterion) {
    let g = dblp_like(&PresetOptions {
        scale: 0.002,
        seed: 1,
        ..Default::default()
    })
    .graph;
    let mut group = c.benchmark_group("hgn_encoder");
    for (label, cfg) in [
        ("simple_hgn", HgnConfig::default()),
        ("gat", HgnConfig::default().gat()),
    ] {
        let mut rng = StdRng::seed_from_u64(0);
        let (model, params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&g, cfg.add_self_loops);
        group.bench_function(format!("{label}_forward"), |b| {
            b.iter(|| {
                let mut graph = Graph::new();
                let mut tb = TapeBindings::new();
                model.encode::<StdRng>(&mut graph, &mut tb, &params, &view, None)
            })
        });
        let sampler = LinkSampler::new(&g);
        let mut rng2 = StdRng::seed_from_u64(1);
        let pos = sampler.all_positives();
        let examples = sampler.with_negatives(&pos[..256.min(pos.len())], 1, &mut rng2);
        let targets: Arc<Vec<f32>> = Arc::new(
            examples
                .iter()
                .map(|e| if e.label { 1.0 } else { 0.0 })
                .collect(),
        );
        group.bench_function(format!("{label}_forward_backward"), |b| {
            b.iter(|| {
                let mut graph = Graph::new();
                let mut tb = TapeBindings::new();
                let emb = model.encode::<StdRng>(&mut graph, &mut tb, &params, &view, None);
                let logits = model.score_links(&mut graph, &mut tb, &params, emb, &examples);
                let loss = graph.bce_with_logits(logits, targets.clone());
                graph.backward(loss);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encoder
}
criterion_main!(benches);
