//! Criterion benchmarks of one federated round: FedAvg vs FedDA (Restart
//! and Explore), measuring the end-to-end cost of local updates +
//! aggregation + evaluation at a fixed federation size.

use criterion::{criterion_group, criterion_main, Criterion};
use fedda::experiment::{Dataset, Experiment, ExperimentConfig, Framework};
use fedda::fl::{FedAvg, FedDa};
use fedda_bench::{experiment_model, experiment_train};

fn one_round_config() -> ExperimentConfig {
    ExperimentConfig {
        dataset: Dataset::DblpLike,
        scale: 0.0015,
        num_clients: 4,
        rounds: 1,
        runs: 1,
        model: experiment_model(false),
        train: experiment_train(),
        seed: 3,
        ..Default::default()
    }
}

fn bench_round(c: &mut Criterion) {
    let exp = Experiment::new(one_round_config());
    let mut group = c.benchmark_group("fl_round");
    group.bench_function("fedavg", |b| {
        b.iter(|| exp.run_framework(&Framework::FedAvg(FedAvg::vanilla())))
    });
    group.bench_function("fedda_restart", |b| {
        b.iter(|| exp.run_framework(&Framework::FedDa(FedDa::restart())))
    });
    group.bench_function("fedda_explore", |b| {
        b.iter(|| exp.run_framework(&Framework::FedDa(FedDa::explore())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_round
}
criterion_main!(benches);
