//! Every bench binary documents a `--json <path>` flag; this contract test
//! runs each one at the smallest viable configuration and asserts that the
//! file actually appears and parses as a non-empty JSON array. Before this
//! suite existed, five of the eleven binaries silently ignored the flag.

use std::path::PathBuf;
use std::process::Command;

/// Run `bin` with `args` plus `--json <tmp>`; return the parsed dump.
fn run_with_json(bin: &str, args: &[&str]) -> serde_json::Value {
    let out_path: PathBuf = std::env::temp_dir().join(format!(
        "fedda_json_contract_{bin}_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out_path);
    let status = Command::new(bin)
        .args(args)
        .arg("--json")
        .arg(&out_path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(status.success(), "{bin} exited with {status}");
    let text = std::fs::read_to_string(&out_path)
        .unwrap_or_else(|e| panic!("{bin} did not write its --json file: {e}"));
    let _ = std::fs::remove_file(&out_path);
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{bin} wrote invalid JSON: {e}"))
}

fn assert_nonempty_array(bin: &str, v: &serde_json::Value) {
    let arr = v
        .as_array()
        .unwrap_or_else(|| panic!("{bin} --json dump is not an array"));
    assert!(!arr.is_empty(), "{bin} --json dump is empty");
}

// The tiniest configuration each experiment binary accepts; explicit flags
// must win over --quick (the regression this PR fixes), so these runs also
// exercise that path.
const TINY: &[&str] = &[
    "--scale", "0.001", "--rounds", "1", "--runs", "1", "--quick",
];

#[test]
fn table1_emits_json() {
    let v = run_with_json(env!("CARGO_BIN_EXE_table1"), &["--scale", "0.001"]);
    assert_nonempty_array("table1", &v);
    assert!(v[0]["stats"]["num_nodes"].as_u64().unwrap_or(0) > 0);
}

#[test]
fn table2_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--dataset", "dblp"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_table2"), &args);
    assert_nonempty_array("table2", &v);
    assert!(v[0]["results"].as_array().is_some_and(|r| !r.is_empty()));
    // eval_rounds ride along so curve positions map to true rounds.
    assert!(v[0]["results"][0]["eval_rounds"].as_array().is_some());
}

#[test]
fn table3_emits_json() {
    let v = run_with_json(env!("CARGO_BIN_EXE_table3"), TINY);
    assert_nonempty_array("table3", &v);
    assert!(v[0]["fedavg"].as_f64().is_some());
}

#[test]
fn fig2_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--clients", "2"]);
    // fig2 predates the array convention: it wraps its rows in a single
    // {"experiment": "fig2", "results": [...]} object.
    let v = run_with_json(env!("CARGO_BIN_EXE_fig2"), &args);
    assert_eq!(v["experiment"].as_str(), Some("fig2"));
    assert_nonempty_array("fig2", &v["results"]);
}

#[test]
fn fig5_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--clients", "2"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_fig5"), &args);
    assert_nonempty_array("fig5", &v);
}

#[test]
fn fig6_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--clients", "2"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_fig6"), &args);
    assert_nonempty_array("fig6", &v);
    assert!(v[0]["panel"].as_str().is_some());
}

#[test]
fn ablations_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--clients", "2"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_ablations"), &args);
    assert_nonempty_array("ablations", &v);
    assert!(v[0]["ablation"].as_str().is_some());
    assert!(v[0]["final_auc"].as_f64().is_some());
}

#[test]
fn efficiency_model_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--clients", "2"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_efficiency_model"), &args);
    assert_nonempty_array("efficiency_model", &v);
    assert!(v[0]["measured_uplink"].as_f64().is_some());
    assert!(v[0]["predicted_uplink"].as_f64().is_some());
}

#[test]
fn fairness_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--clients", "2"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_fairness"), &args);
    assert_nonempty_array("fairness", &v);
    assert!(v[0]["auc_by_edge_type"].as_array().is_some());
    assert!(v[0]["gap"].as_f64().is_some());
}

#[test]
fn noniid_sweep_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--clients", "2"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_noniid_sweep"), &args);
    assert_nonempty_array("noniid_sweep", &v);
    assert!(v[0]["uplink_ratio"].as_f64().is_some());
}

#[test]
fn faults_emits_json() {
    let mut args = TINY.to_vec();
    args.extend(["--rate-steps", "2"]);
    let v = run_with_json(env!("CARGO_BIN_EXE_faults"), &args);
    assert_nonempty_array("faults", &v);
    assert!(v[0]["rate"].as_f64().is_some());
}
