//! End-to-end contract for the `perf` binary: `--smoke` emits a valid
//! schema-versioned snapshot, `--compare` passes on identical snapshots and
//! exits nonzero when a case regresses beyond the threshold or disappears.

use std::path::PathBuf;
use std::process::Command;

fn perf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perf"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fedda_perf_{name}_{}.json", std::process::id()))
}

/// One real smoke run, then all the compare verdicts against doctored
/// copies of its output. A single test keeps the (expensive) suite run to
/// one execution.
#[test]
fn smoke_snapshot_and_compare_verdicts() {
    let base = tmp("base");
    let out = perf()
        .args(["--smoke", "--samples", "1", "--out"])
        .arg(&base)
        .output()
        .expect("spawn perf");
    assert!(
        out.status.success(),
        "perf --smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The emitted file is a valid, schema-versioned snapshot covering all
    // three suite families.
    let text = std::fs::read_to_string(&base).expect("snapshot written");
    let snap: serde_json::Value = serde_json::from_str(&text).expect("snapshot parses");
    assert_eq!(snap["schema_version"].as_u64(), Some(1));
    assert_eq!(snap["label"].as_str(), Some("smoke"));
    assert!(snap["env"]["cpus"].as_u64().unwrap_or(0) >= 1);
    let cases = snap["cases"].as_array().expect("cases array");
    for family in ["gemm/", "hgn/", "fl_round/"] {
        assert!(
            cases
                .iter()
                .any(|c| c["name"].as_str().unwrap_or("").starts_with(family)),
            "suite is missing the {family} family"
        );
    }

    // Identical snapshots compare clean and exit 0.
    let ok = perf()
        .arg("--compare")
        .arg(&base)
        .arg(&base)
        .output()
        .expect("spawn perf --compare");
    assert!(ok.status.success(), "self-compare must pass");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("OK"), "expected OK summary, got:\n{stdout}");

    // Doctor one case to be 2x slower in `new` -> regression, nonzero exit.
    let mut slow = snap.clone();
    let median = slow["cases"][0]["median_ns"].as_u64().unwrap().max(1);
    slow["cases"][0]["median_ns"] = serde_json::json!(median * 2);
    let slow_path = tmp("slow");
    std::fs::write(&slow_path, slow.to_string()).unwrap();
    let reg = perf()
        .arg("--compare")
        .arg(&base)
        .arg(&slow_path)
        .output()
        .expect("spawn perf --compare");
    assert!(!reg.status.success(), "2x regression must fail the gate");
    assert!(String::from_utf8_lossy(&reg.stdout).contains("REGRESSION"));

    // ...but a generous threshold lets the same pair pass.
    let loose = perf()
        .arg("--compare")
        .arg(&base)
        .arg(&slow_path)
        .args(["--threshold", "1.5"])
        .output()
        .expect("spawn perf --compare");
    assert!(
        loose.status.success(),
        "150% threshold must tolerate a 2x case: {}",
        String::from_utf8_lossy(&loose.stdout)
    );

    // Dropping a case from `new` -> coverage shrank, nonzero exit.
    let mut shrunk = snap.clone();
    shrunk["cases"].as_array_mut().unwrap().pop();
    let shrunk_path = tmp("shrunk");
    std::fs::write(&shrunk_path, shrunk.to_string()).unwrap();
    let missing = perf()
        .arg("--compare")
        .arg(&base)
        .arg(&shrunk_path)
        .output()
        .expect("spawn perf --compare");
    assert!(!missing.status.success(), "missing case must fail the gate");
    assert!(String::from_utf8_lossy(&missing.stdout).contains("MISSING"));

    for p in [&base, &slow_path, &shrunk_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn compare_rejects_unreadable_and_mismatched_inputs() {
    let out = perf()
        .args(["--compare", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("spawn perf --compare");
    assert!(!out.status.success());
}
