//@ crate: data
//@ expect:
// Clean file: nothing here may fire. Exercises the lexer's blind spots —
// rule patterns inside strings, comments and test code.
use std::collections::BTreeMap;

/// Docs may say unwrap() or HashMap freely.
pub fn lookup(m: &BTreeMap<u32, u32>, k: u32) -> Option<u32> {
    let banned = "HashMap::new() and thread_rng() and x.unwrap()";
    m.get(&k).copied().filter(|_| !banned.is_empty())
}

pub fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        return 0.0;
    }
    a as f64 / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}
