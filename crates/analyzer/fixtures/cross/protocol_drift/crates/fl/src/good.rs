//! Cross fixture: a fully-wired protocol — factory variant, parse arm,
//! README row, sync + async golden pins, chaos sweep. Produces nothing.

pub struct GoodProtocol;

impl GoodProtocol {
    pub fn new() -> Self {
        GoodProtocol
    }
}

impl FlProtocol for GoodProtocol {
    fn seed_tweak(&self) -> u64 {
        0x600D
    }
}
