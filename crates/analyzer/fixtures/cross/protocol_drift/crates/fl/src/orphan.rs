//! Cross fixture: an `FlProtocol` impl nobody wired up — not reachable
//! from the `Framework` factory, no sync pin, no async pin, never swept
//! by the chaos harness. Exactly four findings, all anchored here.

pub struct OrphanProtocol;

impl FlProtocol for OrphanProtocol {
    fn seed_tweak(&self) -> u64 {
        0x0DD1
    }
}
