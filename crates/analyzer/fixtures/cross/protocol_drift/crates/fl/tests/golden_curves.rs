//! Cross fixture: sync and async pins for `GoodProtocol` only.

#[test]
fn golden_good_sync() {
    let curve = run(GoodProtocol::new());
    assert_curve(curve);
}

#[test]
fn golden_good_async() {
    let curve = AsyncDriver::new().run(GoodProtocol::new());
    assert_curve(curve);
}
