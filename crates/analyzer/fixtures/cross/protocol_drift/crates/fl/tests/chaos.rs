//! Cross fixture: the chaos sweep only exercises `GoodProtocol`.

fn sweep() {
    run_chaos(GoodProtocol::new());
}
