//! Cross fixture: the factory only knows `GoodProtocol`.

pub enum Framework {
    Good,
}

impl Framework {
    pub fn protocol(&self) -> GoodProtocol {
        match self {
            Framework::Good => GoodProtocol::new(),
        }
    }
}
