//! Cross fixture: `parse_framework` has a `ghost` arm the README zoo
//! table never documents.

pub fn parse_framework(name: &str) -> Result<Framework, String> {
    match name {
        "good" => Ok(Framework::Good),
        "ghost" => Ok(Framework::Good),
        other => Err(format!("unknown framework {other}")),
    }
}
