//! Cross fixture: derives a stream with a literal tweak that `beta.rs`
//! also uses — the D6 registry must flag both sites.

pub fn alpha_stream(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0xBAD_CAFE)
}
