//! Cross fixture: second, supposedly independent stream reusing
//! `alpha.rs`'s tweak value — perfectly correlated with it.

pub fn beta_stream(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0xBAD_CAFE)
}
