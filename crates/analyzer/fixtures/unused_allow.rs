//@ crate: fl
//@ expect: unused-suppression
// Known-bad: a suppression on a line with no matching finding is itself a
// finding, so stale allows cannot accumulate.

pub fn fine(x: u64) -> u64 {
    // fedda-lint: allow(panic-path, reason = "nothing here can panic")
    x + 1
}
