//@ crate: data
//@ expect: hash-collection, hash-collection, hash-collection, hash-collection
// Known-bad: HashMap/HashSet in a deterministic crate (rule D1).
use std::collections::{HashMap, HashSet};

pub fn build() -> usize {
    let m: HashMap<u32, u32> = Default::default();
    m.len()
}

// A set mentioned only in a string or comment must NOT fire: "HashSet".
pub const NOTE: &str = "HashSet is banned";

pub fn build_set() -> HashSet<u32> {
    Default::default()
}
