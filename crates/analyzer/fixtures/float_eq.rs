//@ crate: tensor
//@ expect: float-eq, float-eq
// Known-bad: float == / != against a float literal (rule D4).

pub fn is_zero(x: f32) -> bool {
    x == 0.0
}

pub fn is_set(x: f64) -> bool {
    x != 1.0
}

// Integer comparisons and ordering operators must NOT fire.
pub fn ok(n: usize, x: f32) -> bool {
    n == 0 && x <= 0.5 && x >= -0.5
}
