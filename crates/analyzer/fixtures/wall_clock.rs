//@ crate: fl
//@ expect: wall-clock, wall-clock
// Known-bad: wall-clock reads in protocol code (rule D2).
use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let t = Instant::now();
    t.elapsed().as_millis()
}

pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
