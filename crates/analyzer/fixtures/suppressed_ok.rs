//@ crate: fl
//@ expect: suppressed wall-clock, suppressed panic-path
// Clean file: every violation carries a reasoned suppression, so the
// analyzer reports zero unsuppressed findings here.
use std::time::Instant;

pub fn telemetry() -> Instant {
    // fedda-lint: allow(wall-clock, reason = "timing telemetry only")
    Instant::now()
}

pub fn trailing(xs: &[f32]) -> f32 {
    *xs.first().unwrap() // fedda-lint: allow(panic-path, reason = "caller guarantees non-empty")
}
