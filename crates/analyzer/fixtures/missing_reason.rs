//@ crate: fl
//@ expect: bad-suppression, wall-clock, bad-suppression, panic-path
// Known-bad: suppressions without a reason (or for an unknown rule) are
// rejected AND the underlying finding still fires.
use std::time::Instant;

pub fn no_reason() -> Instant {
    // fedda-lint: allow(wall-clock)
    Instant::now()
}

pub fn unknown_rule(xs: &[f32]) -> f32 {
    // fedda-lint: allow(made-up-rule, reason = "not a real rule")
    *xs.first().unwrap()
}
