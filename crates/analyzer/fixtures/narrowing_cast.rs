//@ crate: fl
//@ expect: narrowing-cast
// Known-bad: potentially-truncating integer cast in ledger code (rule D5).

pub fn bytes_to_u32(total_bytes: usize) -> u32 {
    total_bytes as u32
}

// Widening casts and float casts must NOT fire.
pub fn widen(x: u32) -> (u64, f64) {
    (x as u64, x as f64)
}
