//@ crate: metrics
//@ expect: panic-path, panic-path
// Known-bad: unwrap/expect in non-test library code (rule D3). The test
// module at the bottom contains the same calls and must NOT fire.

pub fn first(xs: &[f32]) -> f32 {
    *xs.first().unwrap()
}

pub fn last(xs: &[f32]) -> f32 {
    *xs.last().expect("non-empty")
}

// unwrap_or is fine: it cannot panic.
pub fn safe(xs: &[f32]) -> f32 {
    xs.first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        panic!("even this is fine in tests");
    }
}
