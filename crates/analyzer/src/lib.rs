//! `fedda-lint` — workspace static analysis enforcing the determinism and
//! numerical-safety invariants the golden-curve / chaos-harness guarantees
//! rest on.
//!
//! Rules (see `DESIGN.md` §6 for rationale):
//!
//! | id | scope | invariant |
//! |----|-------|-----------|
//! | `hash-collection` (D1) | data, hetgraph, tensor, hgn, fl | no `HashMap`/`HashSet`: unordered iteration breaks seeded reproducibility |
//! | `wall-clock` (D2) | fl | no `thread_rng` / `SystemTime` / `Instant::now`: protocol code runs on explicit RNG streams and logical time |
//! | `panic-path` (D3) | core crates | no `.unwrap()` / `.expect()` / `panic!` / `todo!` in non-test library code |
//! | `float-eq` (D4) | core crates | no float `==` / `!=` against float literals without a stated reason |
//! | `narrowing-cast` (D5) | fl | no potentially-truncating `as u8/u16/u32/i8/i16/i32` in protocol/ledger accounting |
//! | `rng-stream` (D6) | workspace | derived RNG stream tweaks globally unique (see `rules_cross`) |
//! | `protocol-factory` (R1) | workspace | every `FlProtocol` impl reachable from the `Framework` factory |
//! | `protocol-pins` (R2) | workspace | every protocol carries sync + async golden pins |
//! | `protocol-zoo` (R3) | workspace | chaos-sweep coverage; `parse_framework` arms ↔ README zoo rows |
//!
//! D1–D5 run per file ([`rules`]); D6/R1–R3 run over the cross-file
//! [`index::WorkspaceIndex`] in workspace mode (see `DESIGN.md` §13).
//! The `--ratchet` mode ([`ratchet`]) gates per-rule finding counts
//! against a committed baseline so they can only fall.
//!
//! Exemptions are line-scoped comment directives that must carry a reason —
//! `// fedda-lint: allow(wall-clock, reason = "telemetry only")` — and are
//! counted and printed so they stay visible. Reasonless, unknown-rule and
//! unused directives are themselves findings.

pub mod index;
pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod rules_cross;

pub use rules::{scan_file, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The crates the default workspace scan covers (their `src/` trees).
/// The analyzer itself is excluded: its sources and fixtures quote the very
/// patterns it hunts for.
pub const SCANNED_CRATES: &[&str] = &["data", "hetgraph", "tensor", "hgn", "fl", "metrics"];

/// Crates whose `src/` trees join the cross-file index (and may carry
/// suppression directives) without being policed by the per-file rules:
/// the experiment facade, the bench CLI and the user CLI quote protocol
/// names and derive RNG streams, so D6/R1–R3 must see them.
pub const INDEXED_CRATES: &[&str] = &["core", "bench", "cli"];

/// Root-relative directories scanned with the full per-file rule set in
/// addition to the workspace crates (integration tests and examples; both
/// have no `crates/<name>/` prefix, so every rule scope applies).
pub const EXTRA_SCANNED_DIRS: &[&str] = &["tests", "examples"];

/// Individual test files the cross-file rules interrogate (golden pins,
/// chaos sweep coverage).
pub const INDEXED_FILES: &[&str] = &[
    "crates/fl/tests/golden_curves.rs",
    "crates/fl/tests/chaos.rs",
];

/// A full analysis result.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Count of failing findings.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of reasoned exemptions.
    pub fn suppressed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.suppressed).count()
    }

    /// Machine-readable report (stable field order, hand-rolled so the
    /// analyzer stays dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": \"{}\", ", escape_json(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"col\": {}, ", f.col));
            out.push_str(&format!("\"rule\": \"{}\", ", f.rule));
            out.push_str(&format!("\"message\": \"{}\", ", escape_json(&f.message)));
            out.push_str(&format!("\"suppressed\": {}", f.suppressed));
            if let Some(r) = &f.reason {
                out.push_str(&format!(", \"reason\": \"{}\"", escape_json(r)));
            }
            out.push('}');
        }
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"files_scanned\": {}, \"unsuppressed\": {}, \"suppressed\": {}}}\n}}\n",
            self.files_scanned,
            self.unsuppressed_count(),
            self.suppressed_count()
        ));
        out
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| !f.suppressed) {
            out.push_str(&format!(
                "{}:{}:{}: error[{}]: {}\n",
                f.file, f.line, f.col, f.rule, f.message
            ));
        }
        let suppressed: Vec<&Finding> = self.findings.iter().filter(|f| f.suppressed).collect();
        if !suppressed.is_empty() {
            out.push_str(&format!(
                "\n{} reasoned exemption(s) in force:\n",
                suppressed.len()
            ));
            for f in suppressed {
                out.push_str(&format!(
                    "  {}:{}: allow[{}]: {}\n",
                    f.file,
                    f.line,
                    f.rule,
                    f.reason.as_deref().unwrap_or("")
                ));
            }
        }
        out.push_str(&format!(
            "\nfedda-lint: {} file(s), {} finding(s), {} suppressed\n",
            self.files_scanned,
            self.unsuppressed_count(),
            self.suppressed_count()
        ));
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir` (sorted for stable output).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs") == Some(true) {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Analyze a set of files with the per-file rules only (no cross-file
/// index — that needs the whole workspace). Paths are reported relative
/// to `root` when they live under it.
pub fn analyze_files(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    for path in files {
        let source = fs::read_to_string(path)?;
        report
            .findings
            .extend(scan_file(&rel_path(root, path), &source));
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Analyze the whole workspace under `root`: per-file rules over the
/// scanned crates plus `tests/` and `examples/`, and the cross-file rule
/// families (D6, R1–R3) over an index that additionally covers the
/// experiment/bench/CLI crates, the golden-curve pins, the chaos sweep
/// and the README protocol zoo.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut scanned = Vec::new();
    for krate in SCANNED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if src.is_dir() {
            rust_files(&src, &mut scanned)?;
        }
    }
    for dir in EXTRA_SCANNED_DIRS {
        let dir = root.join(dir);
        if dir.is_dir() {
            rust_files(&dir, &mut scanned)?;
        }
    }
    let mut index_only = Vec::new();
    for krate in INDEXED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if src.is_dir() {
            rust_files(&src, &mut index_only)?;
        }
    }
    for file in INDEXED_FILES {
        let path = root.join(file);
        if path.is_file() {
            index_only.push(path);
        }
    }

    let mut sources: Vec<(String, String)> = Vec::new();
    let mut scans = Vec::new();
    for path in &scanned {
        let source = fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        scans.push(rules::scan_file_raw(&rel, &source));
        sources.push((rel, source));
    }
    for path in &index_only {
        let source = fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        scans.push(rules::directive_scan(&rel, &source));
        sources.push((rel, source));
    }

    let workspace_index = index::WorkspaceIndex::build(&sources);
    let readme_text = fs::read_to_string(root.join("README.md")).ok();
    let cross = rules_cross::cross_findings(
        &workspace_index,
        readme_text.as_deref().map(|t| ("README.md", t)),
    );

    Ok(Report {
        findings: rules::resolve(scans, cross),
        files_scanned: scanned.len() + index_only.len(),
    })
}

/// Remove the suppression directives behind every `unused-suppression`
/// finding in `report`: directive-only lines are deleted outright,
/// trailing directives are trimmed off their line. Returns the edited
/// `(file, directive line)` pairs. Paths in the report are resolved
/// relative to `root`.
pub fn fix_suppressions(root: &Path, report: &Report) -> io::Result<Vec<(String, usize)>> {
    use std::collections::BTreeMap;
    let mut by_file: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for f in &report.findings {
        if f.rule == rules::UNUSED_SUPPRESSION {
            by_file.entry(&f.file).or_default().push(f.line);
        }
    }
    let mut fixed = Vec::new();
    for (file, mut lines) in by_file {
        lines.sort_unstable();
        lines.dedup();
        let path = root.join(file);
        let source = fs::read_to_string(&path)?;
        let ends_with_newline = source.ends_with('\n');
        let mut out: Vec<String> = Vec::new();
        for (i, line) in source.lines().enumerate() {
            if !lines.contains(&(i + 1)) {
                out.push(line.to_string());
                continue;
            }
            let at = line.find("// fedda-lint:").unwrap_or(line.len());
            let prefix = &line[..at];
            if prefix.trim().is_empty() {
                // Directive-only line: drop it entirely.
            } else {
                // Trailing directive: keep the code, lose the comment.
                out.push(prefix.trim_end().to_string());
            }
            fixed.push((file.to_string(), i + 1));
        }
        let mut text = out.join("\n");
        if ends_with_newline {
            text.push('\n');
        }
        fs::write(&path, text)?;
    }
    Ok(fixed)
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let report = Report {
            findings: vec![Finding {
                file: "a\\b.rs".into(),
                line: 1,
                col: 2,
                rule: rules::FLOAT_EQ,
                message: "say \"why\"".into(),
                suppressed: false,
                reason: None,
            }],
            files_scanned: 1,
        };
        let json = report.to_json();
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("say \\\"why\\\""));
        assert!(json.contains("\"unsuppressed\": 1"));
    }
}
