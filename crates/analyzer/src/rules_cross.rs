//! Cross-file rule families (D6, R1–R3) over the [`WorkspaceIndex`].
//!
//! Per-file rules police what a line of code *is*; these rules police what
//! the workspace *forgot* — a tweak constant reused by two "independent"
//! RNG streams, a protocol implemented but never wired into the factory,
//! pinned, chaos-swept or documented. Every finding is anchored to a real
//! source position (the colliding call site, the `impl` header, the match
//! arm, the README row) so the ordinary line-scoped
//! `// fedda-lint: allow(rule, reason = "...")` directives can exempt it.
//!
//! | id | family | invariant |
//! |----|--------|-----------|
//! | `rng-stream` (D6) | RNG discipline | stream tweaks are globally unique; `seed_tweak` impls return resolvable constants |
//! | `protocol-factory` (R1) | drift | every `FlProtocol` impl reachable from the `Framework` factory; every variant parseable |
//! | `protocol-pins` (R2) | drift | every `FlProtocol` impl has sync + async golden pins |
//! | `protocol-zoo` (R3) | drift | every impl chaos-swept; `parse_framework` arms ↔ README zoo rows |

use crate::index::{ImplBlock, WorkspaceIndex};
use crate::rules::{Finding, PROTOCOL_FACTORY, PROTOCOL_PINS, PROTOCOL_ZOO, RNG_STREAM};
use std::collections::{BTreeMap, BTreeSet};

/// The trait whose implementations form the protocol surface.
const PROTOCOL_TRAIT: &str = "FlProtocol";
/// Directory holding the protocol implementations R1–R3 police.
const PROTOCOL_DIR: &str = "crates/fl/src/";

fn finding(file: &str, line: usize, col: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        col,
        rule,
        message,
        suppressed: false,
        reason: None,
    }
}

/// Run every cross-file rule. `readme` is the README's `(path, content)`
/// when present — it is markdown, so it bypasses the Rust index.
pub fn cross_findings(index: &WorkspaceIndex, readme: Option<(&str, &str)>) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(rng_streams(index));
    out.extend(protocol_surface(index, readme));
    out
}

/// The identity of one logical RNG stream for collision purposes.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum StreamKey {
    /// Tweak written as a literal — identified by file so repeated uses of
    /// one value inside one file (the same stream, re-derived per round)
    /// collapse into a single stream.
    Literal(String),
    /// Tweak referenced through a named constant: the constant *is* the
    /// registry entry, so every use is the same stream by construction.
    Const(String),
    /// A protocol's `seed_tweak` — identified by the implementing type.
    SeedTweak(String),
}

impl StreamKey {
    fn describe(&self) -> String {
        match self {
            StreamKey::Literal(file) => format!("literal tweak in {file}"),
            StreamKey::Const(name) => format!("const `{name}`"),
            StreamKey::SeedTweak(ty) => format!("`{ty}::seed_tweak`"),
        }
    }
}

/// D6: collect every stream tweak in library code and report value
/// collisions between distinct streams, plus `seed_tweak` impls whose
/// return value cannot be resolved to a constant. Streams seeded directly
/// from a caller-supplied seed (no tweak at all) are roots of the stream
/// tree and are exempt — the discipline applies to *derived* streams.
fn rng_streams(index: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    // value -> stream key -> first anchor (file path, line, col).
    let mut streams: BTreeMap<u128, BTreeMap<StreamKey, (String, usize, usize)>> = BTreeMap::new();
    let mut add = |value: u128, key: StreamKey, anchor: (String, usize, usize)| {
        streams
            .entry(value)
            .or_default()
            .entry(key)
            .or_insert(anchor);
    };

    let in_library = |path: &str| path.starts_with("crates/") && path.contains("/src/");

    for site in &index.rng_sites {
        let path = index.path(site.file);
        if site.in_test || !in_library(path) {
            continue;
        }
        let anchor = (path.to_string(), site.line, site.col);
        for &v in &site.tweaks {
            add(v, StreamKey::Literal(path.to_string()), anchor.clone());
        }
        for name in &site.const_refs {
            match index.resolve_const(name) {
                Some(c) => add(c.value, StreamKey::Const(name.clone()), anchor.clone()),
                None => out.push(finding(
                    path,
                    site.line,
                    site.col,
                    RNG_STREAM,
                    format!(
                        "RNG stream tweak `{name}` has no unique integer `const` definition \
                         in the workspace: register the tweak as a single named constant"
                    ),
                )),
            }
        }
    }

    // `seed_tweak` implementations: each must resolve to a constant value.
    for f in &index.fns {
        if f.name != "seed_tweak" || f.owner_trait.as_deref() != Some(PROTOCOL_TRAIT) {
            continue;
        }
        let Some(owner) = f.owner.clone() else {
            continue;
        };
        let path = index.path(f.file).to_string();
        if !in_library(&path) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let anchor = (path.clone(), f.line, f.col);
        let hex = index.hex_in(f.file, body);
        if !hex.is_empty() {
            for (v, _) in hex {
                add(v, StreamKey::SeedTweak(owner.clone()), anchor.clone());
            }
            continue;
        }
        let consts = index.const_refs_in(f.file, body);
        let resolved: Vec<u128> = consts
            .iter()
            .filter_map(|n| index.resolve_const(n).map(|c| c.value))
            .collect();
        if resolved.is_empty() {
            out.push(finding(
                &path,
                f.line,
                f.col,
                RNG_STREAM,
                format!(
                    "`{owner}::seed_tweak` does not return a resolvable constant tweak: \
                     return a hex literal or a workspace-unique named constant"
                ),
            ));
        } else {
            for v in resolved {
                add(v, StreamKey::SeedTweak(owner.clone()), anchor.clone());
            }
        }
    }

    for (value, keyed) in &streams {
        if keyed.len() < 2 {
            continue;
        }
        let members: Vec<String> = keyed.keys().map(|k| k.describe()).collect();
        for (key, (file, line, col)) in keyed {
            let others: Vec<&String> = members.iter().filter(|m| **m != key.describe()).collect();
            out.push(finding(
                file,
                *line,
                *col,
                RNG_STREAM,
                format!(
                    "RNG tweak {value:#x} is shared by {} independent streams \
                     (this one and {}): XOR-derived streams with equal tweaks are \
                     perfectly correlated — pick a fresh tweak or share one named constant",
                    keyed.len(),
                    others
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            ));
        }
    }
    out
}

/// Everything R1–R3 need about one protocol implementation.
struct Protocol<'a> {
    imp: &'a ImplBlock,
    /// Identifiers that count as "mentioning" this protocol: the impl type
    /// itself, provider types with `fn protocol(&self) -> T`, and free
    /// functions in the protocol directory whose body references `T`
    /// (e.g. `run_global` for `GlobalProtocol`).
    aliases: BTreeSet<String>,
}

fn protocols(index: &WorkspaceIndex) -> Vec<Protocol<'_>> {
    let mut out = Vec::new();
    for imp in &index.impls {
        if imp.trait_name.as_deref() != Some(PROTOCOL_TRAIT)
            || !index.path(imp.file).starts_with(PROTOCOL_DIR)
        {
            continue;
        }
        let mut aliases = BTreeSet::new();
        aliases.insert(imp.type_name.clone());
        for f in &index.fns {
            if !index.path(f.file).starts_with(PROTOCOL_DIR) {
                continue;
            }
            // Provider: `fn protocol(&self) -> T` on a config type.
            if f.name == "protocol" && f.ret.contains(&imp.type_name) {
                if let Some(owner) = &f.owner {
                    aliases.insert(owner.clone());
                }
            }
            // Free function whose body references the type (one hop).
            if f.owner.is_none() {
                if let Some(body) = f.body {
                    if index.range_refs(f.file, body, &imp.type_name) {
                        aliases.insert(f.name.clone());
                    }
                }
            }
        }
        out.push(Protocol { imp, aliases });
    }
    out
}

fn impl_finding(
    index: &WorkspaceIndex,
    imp: &ImplBlock,
    rule: &'static str,
    message: String,
) -> Finding {
    finding(index.path(imp.file), imp.line, imp.col, rule, message)
}

/// R1–R3 over the protocol surface.
fn protocol_surface(index: &WorkspaceIndex, readme: Option<(&str, &str)>) -> Vec<Finding> {
    let mut out = Vec::new();
    let protos = protocols(index);

    let factory = index.enums.iter().find(|e| e.name == "Framework");
    let parse_fn = index.fns.iter().find(|f| f.name == "parse_framework");
    let golden = index
        .files
        .iter()
        .position(|f| f.path.ends_with("tests/golden_curves.rs"));
    let chaos = index
        .files
        .iter()
        .position(|f| f.path.ends_with("tests/chaos.rs"));

    for p in &protos {
        let ty = &p.imp.type_name;

        // R1(a): reachable from the Framework factory.
        match factory {
            Some(e) => {
                let reachable = p
                    .aliases
                    .iter()
                    .any(|a| index.files[e.file].idents.contains(a));
                if !reachable {
                    out.push(impl_finding(
                        index,
                        p.imp,
                        PROTOCOL_FACTORY,
                        format!(
                            "`{ty}` implements `FlProtocol` but is not reachable from the \
                             `Framework` factory in {}: add a variant (or construct it from \
                             an existing one) so experiments can select it",
                            index.path(e.file)
                        ),
                    ));
                }
            }
            None => out.push(impl_finding(
                index,
                p.imp,
                PROTOCOL_FACTORY,
                format!(
                    "`{ty}` implements `FlProtocol` but the workspace has no \
                     `enum Framework` factory to expose it"
                ),
            )),
        }

        // R2: sync + async golden pins.
        let (has_sync, has_async) = match golden {
            Some(gf) => {
                let mut s = false;
                let mut a = false;
                for t in index.tests.iter().filter(|t| t.file == gf) {
                    if !p.aliases.iter().any(|al| t.refs.contains(al)) {
                        continue;
                    }
                    if t.refs.contains("AsyncDriver") {
                        a = true;
                    } else {
                        s = true;
                    }
                }
                (s, a)
            }
            None => (false, false),
        };
        if !has_sync {
            out.push(impl_finding(
                index,
                p.imp,
                PROTOCOL_PINS,
                format!(
                    "`{ty}` has no sync golden pin: add a `#[test]` in \
                     `crates/fl/tests/golden_curves.rs` that runs it through the sync \
                     driver and pins its curve"
                ),
            ));
        }
        if !has_async {
            out.push(impl_finding(
                index,
                p.imp,
                PROTOCOL_PINS,
                format!(
                    "`{ty}` has no async golden pin: add a `#[test]` in \
                     `crates/fl/tests/golden_curves.rs` that runs it under `AsyncDriver` \
                     and pins its curve"
                ),
            ));
        }

        // R3(a): chaos sweep coverage.
        let swept = chaos
            .map(|cf| {
                p.aliases
                    .iter()
                    .any(|al| index.files[cf].all_idents.contains(al))
            })
            .unwrap_or(false);
        if !swept {
            out.push(impl_finding(
                index,
                p.imp,
                PROTOCOL_ZOO,
                format!(
                    "`{ty}` is not exercised by the chaos sweep in \
                     `crates/fl/tests/chaos.rs`: fault-tolerance claims only cover \
                     protocols the sweep runs"
                ),
            ));
        }
    }

    // R1(b): every Framework variant must be constructed in the
    // parse_framework file (`Framework::V` somewhere in it).
    if let Some(e) = factory {
        match parse_fn {
            Some(pf) => {
                let qrefs = &index.files[pf.file].qualified_refs;
                for (variant, line) in &e.variants {
                    if !qrefs.contains(&("Framework".to_string(), variant.clone())) {
                        out.push(finding(
                            index.path(e.file),
                            *line,
                            1,
                            PROTOCOL_FACTORY,
                            format!(
                                "`Framework::{variant}` is never constructed in the \
                                 `parse_framework` file {}: CLI/bench runs cannot select it",
                                index.path(pf.file)
                            ),
                        ));
                    }
                }
            }
            None => {
                if !protos.is_empty() {
                    out.push(finding(
                        index.path(e.file),
                        e.line,
                        e.col,
                        PROTOCOL_FACTORY,
                        "`enum Framework` exists but no `parse_framework` function does: \
                         protocols cannot be selected by name"
                            .to_string(),
                    ));
                }
            }
        }
    }

    // R3(b)/(c): parse_framework arms ↔ README zoo table rows.
    if let Some(pf) = parse_fn {
        if let Some(body) = pf.body {
            let arms: Vec<_> = index
                .arm_strs
                .iter()
                .filter(|a| a.file == pf.file && a.start >= body.0 && a.start < body.1)
                .collect();
            let rows = readme.map(|(_, text)| zoo_rows(text)).unwrap_or_default();
            let row_names: BTreeSet<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
            let arm_names: BTreeSet<&str> = arms.iter().map(|a| a.value.as_str()).collect();
            for a in &arms {
                if !row_names.contains(a.value.as_str()) {
                    out.push(finding(
                        index.path(pf.file),
                        a.line,
                        a.col,
                        PROTOCOL_ZOO,
                        format!(
                            "`parse_framework` accepts `{}` but the README zoo table has \
                             no such row: document the protocol (knobs and defaults) in \
                             the `--framework` table",
                            a.value
                        ),
                    ));
                }
            }
            if let Some((readme_path, _)) = readme {
                for (name, line) in &rows {
                    if !arm_names.contains(name.as_str()) {
                        out.push(finding(
                            readme_path,
                            *line,
                            1,
                            PROTOCOL_ZOO,
                            format!(
                                "README zoo table documents `{name}` but `parse_framework` \
                                 has no such arm: the row is dead documentation"
                            ),
                        ));
                    }
                }
            }
        }
    }

    out
}

/// Parse the README `--framework` zoo table: returns `(name, line)` for
/// each row after the header, first cell with backticks stripped.
fn zoo_rows(readme: &str) -> Vec<(String, usize)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for (i, line) in readme.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            if in_table {
                break;
            }
            continue;
        }
        let first_cell = trimmed
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('`')
            .to_string();
        if !in_table {
            if first_cell == "--framework" {
                in_table = true;
            }
            continue;
        }
        if first_cell.chars().all(|c| c == '-' || c == ':') {
            continue; // separator row
        }
        rows.push((first_cell, line_no));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(files: &[(&str, &str)]) -> WorkspaceIndex {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        WorkspaceIndex::build(&sources)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn literal_tweak_collision_across_files_is_reported_at_both_sites() {
        let index = idx(&[
            (
                "crates/fl/src/a.rs",
                "pub fn a(seed: u64) { StdRng::seed_from_u64(seed ^ 0xC0FFEE); }\n",
            ),
            (
                "crates/fl/src/b.rs",
                "pub fn b(seed: u64) { StdRng::seed_from_u64(seed ^ 0xC0FFEE); }\n",
            ),
        ]);
        let fs = rng_streams(&index);
        assert_eq!(rules_of(&fs), vec![RNG_STREAM, RNG_STREAM]);
        assert!(fs.iter().any(|f| f.file == "crates/fl/src/a.rs"));
        assert!(fs.iter().any(|f| f.file == "crates/fl/src/b.rs"));
    }

    #[test]
    fn same_value_in_one_file_or_shared_const_is_one_stream() {
        let index = idx(&[
            (
                "crates/fl/src/a.rs",
                "pub fn a(seed: u64, r: u64) {\n\
                 StdRng::seed_from_u64(seed ^ 0xEAE5 ^ r);\n\
                 StdRng::seed_from_u64(seed ^ 0xEAE5 ^ (r + 1));\n}\n",
            ),
            (
                "crates/core/src/b.rs",
                "pub const SPLIT_TWEAK: u64 = 0x5B11;\n\
                 pub fn b(seed: u64) { StdRng::seed_from_u64(seed ^ SPLIT_TWEAK); }\n",
            ),
            (
                "crates/bench/src/c.rs",
                "pub fn c(seed: u64) { StdRng::seed_from_u64(seed ^ SPLIT_TWEAK); }\n",
            ),
        ]);
        assert!(rng_streams(&index).is_empty());
    }

    #[test]
    fn seed_tweak_impls_join_the_registry_and_must_resolve() {
        let index = idx(&[(
            "crates/fl/src/p.rs",
            "impl FlProtocol for A {\n  fn seed_tweak(&self) -> u64 { 0xAA }\n}\n\
             impl FlProtocol for B {\n  fn seed_tweak(&self) -> u64 { 0xAA }\n}\n\
             impl FlProtocol for C {\n  fn seed_tweak(&self) -> u64 { self.dynamic }\n}\n",
        )]);
        let fs = rng_streams(&index);
        // A/B collide (two findings), C is unresolvable (one finding).
        assert_eq!(fs.iter().filter(|f| f.rule == RNG_STREAM).count(), 3);
        assert!(fs
            .iter()
            .any(|f| f.message.contains("`C::seed_tweak`") || f.message.contains("C::seed_tweak")));
    }

    #[test]
    fn unresolvable_const_tweak_is_reported() {
        let index = idx(&[(
            "crates/fl/src/a.rs",
            "pub fn a(seed: u64) { StdRng::seed_from_u64(seed ^ MYSTERY_TWEAK); }\n",
        )]);
        let fs = rng_streams(&index);
        assert_eq!(rules_of(&fs), vec![RNG_STREAM]);
        assert!(fs[0].message.contains("MYSTERY_TWEAK"));
    }

    const WIRED: &[(&str, &str)] = &[
        (
            "crates/fl/src/good.rs",
            "pub struct Good;\nimpl Good {\n  pub fn new() -> Self { Good }\n}\n\
             impl FlProtocol for Good {\n  fn seed_tweak(&self) -> u64 { 0x600D }\n}\n",
        ),
        (
            "crates/core/src/experiment.rs",
            "pub enum Framework { Good }\n\
             pub fn protocol(fw: &Framework) -> Good {\n\
                 match fw { Framework::Good => Good::new() }\n}\n",
        ),
        (
            "crates/bench/src/lib.rs",
            "pub fn parse_framework(name: &str) -> Result<Framework, String> {\n\
                 match name {\n        \"good\" => Ok(Framework::Good),\n\
                 other => Err(other.to_string()),\n    }\n}\n",
        ),
        (
            "crates/fl/tests/golden_curves.rs",
            "#[test]\nfn golden_good() { Good::new().run(); }\n\
             #[test]\nfn golden_async_good() { AsyncDriver::new().run(&mut Good::new()); }\n",
        ),
        (
            "crates/fl/tests/chaos.rs",
            "fn sweep() { Good::new().run(); }\n",
        ),
    ];

    const README: &str = "| `--framework` | protocol |\n|---|---|\n| `good` | the good one |\n";

    #[test]
    fn fully_wired_protocol_is_clean() {
        let index = idx(WIRED);
        assert!(protocol_surface(&index, Some(("README.md", README))).is_empty());
    }

    #[test]
    fn orphan_protocol_gets_one_finding_per_missing_edge() {
        let mut files = WIRED.to_vec();
        files.push((
            "crates/fl/src/orphan.rs",
            "pub struct Orphan;\nimpl FlProtocol for Orphan {\n  \
             fn seed_tweak(&self) -> u64 { 0x0DD1 }\n}\n",
        ));
        let index = idx(&files);
        let fs = protocol_surface(&index, Some(("README.md", README)));
        let mut rules = rules_of(&fs);
        rules.sort();
        assert_eq!(
            rules,
            vec![PROTOCOL_FACTORY, PROTOCOL_PINS, PROTOCOL_PINS, PROTOCOL_ZOO]
        );
        assert!(fs.iter().all(|f| f.file == "crates/fl/src/orphan.rs"));
    }

    #[test]
    fn provider_and_free_fn_aliases_count_as_reachability() {
        // Factory constructs via `cfg.protocol()`, golden pin via a free
        // runner fn — both hops must resolve.
        let index = idx(&[
            (
                "crates/fl/src/p.rs",
                "pub struct Cfg;\npub struct P;\n\
                 impl Cfg {\n  pub fn protocol(&self) -> P { P }\n}\n\
                 impl FlProtocol for P {\n  fn seed_tweak(&self) -> u64 { 0x1 }\n}\n\
                 pub fn run_p(sys: &mut u8) -> u8 { let p = P; *sys }\n",
            ),
            (
                "crates/core/src/experiment.rs",
                "pub enum Framework { Cfg(Cfg) }\n\
                 pub fn protocol(fw: &Framework) -> P {\n\
                     match fw { Framework::Cfg(c) => c.protocol() }\n}\n",
            ),
            (
                "crates/bench/src/lib.rs",
                "pub fn parse_framework(name: &str) -> Framework {\n\
                     match name { \"p\" => Framework::Cfg(Cfg), _ => Framework::Cfg(Cfg) }\n}\n",
            ),
            (
                "crates/fl/tests/golden_curves.rs",
                "#[test]\nfn golden_p() { run_p(&mut 0); }\n\
                 #[test]\nfn golden_async_p() { AsyncDriver::new().run(&mut Cfg.protocol()); }\n",
            ),
            (
                "crates/fl/tests/chaos.rs",
                "fn sweep() { run_p(&mut 0); }\n",
            ),
        ]);
        let readme = "| `--framework` | p |\n|---|---|\n| `p` | provider-backed |\n";
        let fs = protocol_surface(&index, Some(("README.md", readme)));
        assert!(fs.is_empty(), "unexpected findings: {fs:?}");
    }

    #[test]
    fn zoo_table_drift_is_reported_on_both_sides() {
        let mut files = WIRED.to_vec();
        files[2] = (
            "crates/bench/src/lib.rs",
            "pub fn parse_framework(name: &str) -> Result<Framework, String> {\n\
                 match name {\n        \"good\" => Ok(Framework::Good),\n\
                 \"ghost\" => Ok(Framework::Good),\n\
                 other => Err(other.to_string()),\n    }\n}\n",
        );
        let index = idx(&files);
        let readme =
            "| `--framework` | protocol |\n|---|---|\n| `good` | ok |\n| `zombie` | gone |\n";
        let fs = protocol_surface(&index, Some(("README.md", readme)));
        assert_eq!(rules_of(&fs), vec![PROTOCOL_ZOO, PROTOCOL_ZOO]);
        assert!(fs.iter().any(|f| f.message.contains("`ghost`")));
        assert!(fs
            .iter()
            .any(|f| f.file == "README.md" && f.message.contains("`zombie`")));
    }

    #[test]
    fn missing_variant_arm_is_anchored_at_the_variant() {
        let mut files = WIRED.to_vec();
        files[1] = (
            "crates/core/src/experiment.rs",
            "pub enum Framework { Good, Hidden }\n\
             pub fn protocol(fw: &Framework) -> Good {\n\
                 match fw { _ => Good::new() }\n}\n",
        );
        let index = idx(&files);
        let fs = protocol_surface(&index, Some(("README.md", README)));
        assert_eq!(rules_of(&fs), vec![PROTOCOL_FACTORY]);
        assert!(fs[0].message.contains("Framework::Hidden"));
        assert_eq!(fs[0].file, "crates/core/src/experiment.rs");
    }

    #[test]
    fn zoo_rows_parses_only_the_framework_table() {
        let text = "| crate | what |\n|---|---|\n| `fedda-fl` | sim |\n\n\
                    | `--framework` | protocol |\n|---|---|\n| `global` | ub |\n| `fedavg` | avg |\n\nafter\n";
        let rows = zoo_rows(text);
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["global", "fedavg"]);
    }
}
