//! A small Rust lexer that separates *code* from *non-code* so rules never
//! fire inside comments, string literals, raw strings or char literals.
//!
//! The output is a "masked" copy of the source — byte-for-byte the same
//! length and line structure, with every non-code byte replaced by a space
//! (newlines are preserved so `line:col` positions survive) — plus the list
//! of comments with their original text, which is where suppression
//! directives live.

/// One comment with its position (1-based line/col of its first byte).
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: usize,
    /// 1-based column of the `//` or `/*`.
    pub col: usize,
    /// Raw comment text including delimiters.
    pub text: String,
    /// True when code precedes the comment on its starting line (a
    /// *trailing* comment); false when the comment opens the line.
    pub trailing: bool,
}

/// One string literal with its position and contents (delimiters excluded).
/// The cross-file index uses these to read registry tables — e.g. the
/// `"fedavg" => …` match arms of `parse_framework` — which the mask
/// deliberately hides from the per-line rules.
#[derive(Clone, Debug)]
pub struct StrLit {
    /// 1-based line of the opening delimiter.
    pub line: usize,
    /// 1-based column of the opening delimiter.
    pub col: usize,
    /// Byte offset in the *masked* code where the literal starts.
    pub start: usize,
    /// Byte offset in the *masked* code just past the closing delimiter.
    pub end: usize,
    /// Literal contents without delimiters (escapes kept verbatim).
    pub text: String,
}

/// Lexer output: code-only text plus the extracted comments.
#[derive(Clone, Debug)]
pub struct Masked {
    /// Source with comments, strings and char literals blanked out.
    pub code: String,
    /// Every comment in source order.
    pub comments: Vec<Comment>,
    /// Every string literal (plain and raw) in source order.
    pub strings: Vec<StrLit>,
}

/// Strip comments, strings (plain, raw, byte, raw-byte) and char literals.
pub fn mask(source: &str) -> Masked {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    // Columns are counted in characters, consistent with the rule engine.
    let mut line_has_code = false;
    let mut i = 0usize;

    // Push one source char as non-code (blank it, keep newlines).
    macro_rules! blank {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                code.push('\n');
                line += 1;
                col = 1;
                line_has_code = false;
            } else {
                code.push(' ');
                col += 1;
            }
        }};
    }
    macro_rules! keep {
        ($c:expr) => {{
            let c = $c;
            code.push(c);
            if c == '\n' {
                line += 1;
                col = 1;
                line_has_code = false;
            } else {
                if !c.is_whitespace() {
                    line_has_code = true;
                }
                col += 1;
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // Line comment (//, ///, //!).
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            let (start_line, start_col, trailing) = (line, col, line_has_code);
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                col: start_col,
                text,
                trailing,
            });
            continue;
        }
        // Block comment (nests in Rust).
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let (start_line, start_col, trailing) = (line, col, line_has_code);
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    blank!(chars[i]);
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                col: start_col,
                text,
                trailing,
            });
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if !prev_is_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if c == 'b' && j + 1 < chars.len() && chars[j + 1] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            let mut k = j + 1;
            while k < chars.len() && chars[k] == '#' {
                hashes += 1;
                k += 1;
            }
            if k < chars.len() && chars[k] == '"' && (hashes > 0 || chars[j + 1] == '"') {
                // Raw (byte) string: scan to `"` followed by `hashes` #s.
                let (lit_line, lit_col, lit_start) = (line, col, code.len());
                let mut text = String::new();
                for &pc in &chars[i..=k] {
                    blank!(pc);
                }
                i = k + 1;
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut h = 0usize;
                        while h < hashes && i + 1 + h < chars.len() && chars[i + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            for &pc in &chars[i..=i + hashes] {
                                blank!(pc);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    text.push(chars[i]);
                    blank!(chars[i]);
                    i += 1;
                }
                strings.push(StrLit {
                    line: lit_line,
                    col: lit_col,
                    start: lit_start,
                    end: code.len(),
                    text,
                });
                continue;
            }
            if c == 'b' && i + 1 < chars.len() && (chars[i + 1] == '"' || chars[i + 1] == '\'') {
                // Plain byte string / byte char: blank the `b`, then fall
                // through to the quote handling on the next iteration.
                blank!(c);
                i += 1;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let (lit_line, lit_col, lit_start) = (line, col, code.len());
            let mut text = String::new();
            blank!(c);
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    text.push(chars[i]);
                    text.push(chars[i + 1]);
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                    continue;
                }
                let done = chars[i] == '"';
                if !done {
                    text.push(chars[i]);
                }
                blank!(chars[i]);
                i += 1;
                if done {
                    break;
                }
            }
            strings.push(StrLit {
                line: lit_line,
                col: lit_col,
                start: lit_start,
                end: code.len(),
                text,
            });
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals; `'a` in
        // `<'a>` is a lifetime and stays (it contains no rule patterns).
        if c == '\'' {
            if i + 1 < chars.len() && chars[i + 1] == '\\' {
                blank!(chars[i]);
                blank!(chars[i + 1]);
                i += 2;
                while i < chars.len() {
                    let done = chars[i] == '\'';
                    blank!(chars[i]);
                    i += 1;
                    if done {
                        break;
                    }
                }
                continue;
            }
            if i + 2 < chars.len() && chars[i + 1] != '\'' && chars[i + 2] == '\'' {
                blank!(chars[i]);
                blank!(chars[i + 1]);
                blank!(chars[i + 2]);
                i += 3;
                continue;
            }
            keep!(c);
            i += 1;
            continue;
        }
        keep!(c);
        i += 1;
    }

    Masked {
        code,
        comments,
        strings,
    }
}

/// Byte spans of `#[cfg(test)]`-gated items (and `#[test]` functions) in the
/// masked code. Rules skip findings inside these spans: the determinism and
/// panic-freedom invariants are about *library* code.
pub fn test_spans(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(marker) {
            let start = from + pos;
            let mut i = start + marker.len();
            // The gated item ends at the matching `}` of its first brace
            // block, or at a `;` that appears before any `{`.
            let mut end = code.len();
            while i < bytes.len() {
                match bytes[i] {
                    b';' => {
                        end = i + 1;
                        break;
                    }
                    b'{' => {
                        let mut depth = 0usize;
                        while i < bytes.len() {
                            match bytes[i] {
                                b'{' => depth += 1,
                                b'}' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            i += 1;
                        }
                        end = (i + 1).min(code.len());
                        break;
                    }
                    _ => i += 1,
                }
            }
            spans.push((start, end));
            from = end.max(start + marker.len());
        }
    }
    spans.sort_unstable();
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = mask("let x = \"HashMap\"; // HashMap here\nlet y = HashMap::new();");
        assert!(m.code.contains("HashMap::new"));
        assert!(m.code.lines().next().unwrap().trim_end().ends_with(';'));
        assert!(!m.code.lines().next().unwrap().contains("HashMap"));
        assert_eq!(m.comments.len(), 1);
        assert!(m.comments[0].text.contains("HashMap here"));
        assert!(m.comments[0].trailing);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let m = mask("let s = r#\"unwrap()\"#; let c = '\"'; fn f<'a>(x: &'a str) {}");
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("'a>"));
        // The quote char literal must not open a string that swallows code.
        assert!(m.code.contains("fn f"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* a /* b */ c */ let x = 1;");
        assert!(m.code.contains("let x = 1;"));
        assert!(!m.code.contains('a'));
        assert_eq!(m.comments.len(), 1);
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "line1 // c\nline2 \"s\ntill here\"\nline3";
        let m = mask(src);
        assert_eq!(m.code.lines().count(), src.lines().count());
    }

    #[test]
    fn string_literals_are_captured_with_positions() {
        let m = mask("let a = \"fedavg\"; let b = r#\"raw \"bit\"\"#;");
        assert_eq!(m.strings.len(), 2);
        assert_eq!(m.strings[0].text, "fedavg");
        assert_eq!(m.strings[0].line, 1);
        assert_eq!(m.strings[0].col, 9);
        // Masked offsets bracket the blanked-out literal.
        assert_eq!(&m.code[m.strings[0].start..m.strings[0].end], "        ");
        assert_eq!(m.strings[1].text, "raw \"bit\"");
    }

    #[test]
    fn match_arm_after_string_is_visible_in_masked_code() {
        let m = mask("match x { \"fedavg\" => 1, _ => 0 }");
        let s = &m.strings[0];
        assert_eq!(
            m.code[s.end..]
                .trim_start()
                .chars()
                .take(2)
                .collect::<String>(),
            "=>"
        );
    }

    #[test]
    fn cfg_test_spans_cover_module() {
        let code =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let spans = test_spans(code);
        assert_eq!(spans.len(), 1);
        let (s, e) = spans[0];
        assert!(code[s..e].contains("unwrap"));
        assert!(!code[..s].contains("unwrap"));
        assert!(code[e..].contains("tail"));
    }
}
