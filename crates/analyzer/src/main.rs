//! `fedda-lint` CLI.
//!
//! ```text
//! fedda-lint [--json] [--root DIR] [--ratchet FILE] [--ratchet-write FILE]
//!            [--fix-suppressions] [FILES...]
//! ```
//!
//! With no `FILES`, scans the library sources (`crates/*/src`) of every
//! in-scope crate of the workspace found at `--root` (default: walk up from
//! the current directory), plus `tests/` and `examples/`, and runs the
//! cross-file rule families over the workspace index. Explicit `FILES` run
//! the per-file rules only. Exits nonzero when any unsuppressed finding
//! remains, or — under `--ratchet` — when any per-rule finding count rises
//! above the committed baseline.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut ratchet: Option<PathBuf> = None;
    let mut ratchet_write: Option<PathBuf> = None;
    let mut fix = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-suppressions" => fix = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fedda-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--ratchet" => match args.next() {
                Some(path) => ratchet = Some(PathBuf::from(path)),
                None => {
                    eprintln!("fedda-lint: --ratchet needs a baseline file");
                    return ExitCode::from(2);
                }
            },
            "--ratchet-write" => match args.next() {
                Some(path) => ratchet_write = Some(PathBuf::from(path)),
                None => {
                    eprintln!("fedda-lint: --ratchet-write needs a baseline file");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: fedda-lint [--json] [--root DIR] [--ratchet FILE] \
                     [--ratchet-write FILE] [--fix-suppressions] [FILES...]"
                );
                println!("rules: {}", fedda_analyzer::rules::RULE_IDS.join(", "));
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| fedda_analyzer::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("fedda-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let analyze = |files: &[PathBuf]| {
        if files.is_empty() {
            fedda_analyzer::analyze_workspace(&root)
        } else {
            fedda_analyzer::analyze_files(&root, files)
        }
    };
    let mut report = match analyze(&files) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedda-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if fix {
        let fixed = match fedda_analyzer::fix_suppressions(&root, &report) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fedda-lint: --fix-suppressions: {e}");
                return ExitCode::from(2);
            }
        };
        for (file, line) in &fixed {
            eprintln!("fedda-lint: removed unused suppression at {file}:{line}");
        }
        if !fixed.is_empty() {
            // Re-analyze so the report (and exit code) reflect the fixed tree.
            report = match analyze(&files) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fedda-lint: {e}");
                    return ExitCode::from(2);
                }
            };
        }
    }

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }

    if let Some(path) = ratchet_write {
        let baseline = fedda_analyzer::ratchet::Baseline::from_findings(&report.findings);
        if let Err(e) = std::fs::write(&path, baseline.to_json()) {
            eprintln!("fedda-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("fedda-lint: wrote baseline {}", path.display());
    }

    let mut failed = report.unsuppressed_count() > 0;
    if let Some(path) = ratchet {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fedda-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match fedda_analyzer::ratchet::Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("fedda-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let current = fedda_analyzer::ratchet::Baseline::from_findings(&report.findings);
        let regressions = baseline.regressions(&current);
        for r in &regressions {
            eprintln!("fedda-lint: ratchet: {r}");
        }
        failed |= !regressions.is_empty();
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
