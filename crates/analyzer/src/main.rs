//! `fedda-lint` CLI.
//!
//! ```text
//! fedda-lint [--json] [--root DIR] [FILES...]
//! ```
//!
//! With no `FILES`, scans the library sources (`crates/*/src`) of every
//! in-scope crate of the workspace found at `--root` (default: walk up from
//! the current directory). Exits nonzero when any unsuppressed finding
//! remains.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fedda-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: fedda-lint [--json] [--root DIR] [FILES...]");
                println!("rules: {}", fedda_analyzer::rules::RULE_IDS.join(", "));
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| fedda_analyzer::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("fedda-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let result = if files.is_empty() {
        fedda_analyzer::analyze_workspace(&root)
    } else {
        fedda_analyzer::analyze_files(&root, &files)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedda-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.unsuppressed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
