//! A lightweight cross-file index over the workspace, built on the lexer's
//! masked output — no parser dependency, same `file:line:col` coordinates as
//! the per-line rules.
//!
//! The index extracts exactly what the cross-file rule families need:
//!
//! * items: `impl <Trait> for <Type>` blocks, `fn` definitions (with owner
//!   and return type), `const` integer definitions, `enum` variants;
//! * RNG-stream derivations: every `seed_from_u64(…)` call site with the
//!   hex-literal tweaks and `UPPER_CASE` constant references appearing in
//!   its argument (rule D6's raw material);
//! * registry tables: `#[test]` functions with the identifiers they
//!   reference (golden-pin detection), and string literals in match-arm
//!   position (`"fedavg" => …`, the `parse_framework` zoo);
//! * per-file identifier sets, split into test and non-test code, for
//!   cheap reachability queries.
//!
//! Everything is positional: each extracted item carries the file index and
//! 1-based line/col of its defining token, so cross-file findings anchor to
//! real source locations where suppressions can reach them.

use crate::lexer::{mask, test_spans, Masked};

/// One token of masked code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer or float literal (verbatim text, suffix included).
    Num,
    /// Single punctuation character.
    Punct(char),
}

/// A token with its position in the masked code.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Verbatim text (single char for punctuation).
    pub text: String,
    /// Byte offset in the masked code.
    pub start: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (characters).
    pub col: usize,
}

/// Tokenize masked code (strings/comments are already blanked, so this is a
/// whitespace-and-punctuation split with position tracking).
pub fn tokenize(code: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let chars: Vec<(usize, char)> = code.char_indices().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let (at, c) = chars[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let (sl, sc) = (line, col);
            let mut text = String::new();
            while i < chars.len() && (chars[i].1.is_alphanumeric() || chars[i].1 == '_') {
                text.push(chars[i].1);
                col += 1;
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                start: at,
                line: sl,
                col: sc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let (sl, sc) = (line, col);
            let mut text = String::new();
            // Numeric literal: digits, hex/binary prefixes and digits,
            // underscores, type suffixes (consumed as part of the token).
            while i < chars.len()
                && (chars[i].1.is_alphanumeric() || chars[i].1 == '_' || chars[i].1 == '.')
            {
                // A second dot means a range expression (`0..n`), not a
                // float — stop before it.
                if chars[i].1 == '.'
                    && (text.contains('.') || chars.get(i + 1).map(|t| t.1) == Some('.'))
                {
                    break;
                }
                text.push(chars[i].1);
                col += 1;
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text,
                start: at,
                line: sl,
                col: sc,
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            start: at,
            line,
            col,
        });
        col += 1;
        i += 1;
    }
    toks
}

/// Parse an integer literal token (`0x…`, `0b…`, decimal, underscores and
/// type suffixes allowed). Returns `None` for floats / malformed text.
pub fn int_value(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches("u8")
        .trim_end_matches("u16")
        .trim_end_matches("u32")
        .trim_end_matches("u64")
        .trim_end_matches("u128")
        .trim_end_matches("usize")
        .trim_end_matches("i8")
        .trim_end_matches("i16")
        .trim_end_matches("i32")
        .trim_end_matches("i64")
        .trim_end_matches("i128")
        .trim_end_matches("isize");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u128::from_str_radix(hex, 16).ok();
    }
    if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        return u128::from_str_radix(bin, 2).ok();
    }
    t.parse().ok()
}

/// Does `name` look like an `UPPER_CASE` constant reference?
pub fn is_const_name(name: &str) -> bool {
    name.len() > 1
        && name.chars().any(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// A `const NAME: <int> = <literal>;` definition.
#[derive(Clone, Debug)]
pub struct ConstDef {
    /// Constant name.
    pub name: String,
    /// Parsed integer value.
    pub value: u128,
    /// Whether the literal was written in hexadecimal (tweak convention).
    pub hex: bool,
    /// File index into [`WorkspaceIndex::files`].
    pub file: usize,
    /// 1-based line of the name token.
    pub line: usize,
}

/// An `impl <Trait> for <Type>` (or inherent `impl <Type>`) block.
#[derive(Clone, Debug)]
pub struct ImplBlock {
    /// Last path segment of the implemented trait, if any.
    pub trait_name: Option<String>,
    /// Last path segment of the implementing type.
    pub type_name: String,
    /// File index.
    pub file: usize,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// 1-based column of the `impl` keyword.
    pub col: usize,
    /// Byte range of the block body in the masked code (braces included).
    pub body: (usize, usize),
}

/// A `fn` definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Implementing type of the enclosing `impl` block, if any.
    pub owner: Option<String>,
    /// Trait of the enclosing `impl` block, if any.
    pub owner_trait: Option<String>,
    /// Identifier tokens of the return type (empty when none).
    pub ret: Vec<String>,
    /// File index.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// Byte range of the body in the masked code; `None` for trait
    /// signatures without a default body.
    pub body: Option<(usize, usize)>,
}

/// One `seed_from_u64(…)` call site and the stream tweaks in its argument.
#[derive(Clone, Debug)]
pub struct RngSite {
    /// Hex-literal tweak values appearing in the argument expression.
    pub tweaks: Vec<u128>,
    /// `UPPER_CASE` constant names referenced in the argument expression.
    pub const_refs: Vec<String>,
    /// File index.
    pub file: usize,
    /// 1-based line of the call.
    pub line: usize,
    /// 1-based column of the call.
    pub col: usize,
    /// Whether the site is inside a `#[cfg(test)]` / `#[test]` span.
    pub in_test: bool,
}

/// A `#[test]` function with the identifiers its body references.
#[derive(Clone, Debug)]
pub struct TestFn {
    /// Test function name.
    pub name: String,
    /// Every identifier token in the body.
    pub refs: std::collections::BTreeSet<String>,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: usize,
}

/// A string literal in match-arm position (`"name" => …`).
#[derive(Clone, Debug)]
pub struct ArmStr {
    /// Literal contents.
    pub value: String,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Byte offset of the literal start in the masked code.
    pub start: usize,
    /// Whether the arm is inside a test span.
    pub in_test: bool,
}

/// An `enum` definition with its variants.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// `(variant, line)` pairs in declaration order.
    pub variants: Vec<(String, usize)>,
    /// File index.
    pub file: usize,
    /// 1-based line of the enum name.
    pub line: usize,
    /// 1-based column of the enum name.
    pub col: usize,
}

/// Everything indexed from one file.
#[derive(Clone, Debug, Default)]
pub struct FileIndex {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Identifiers referenced outside test spans.
    pub idents: std::collections::BTreeSet<String>,
    /// Identifiers referenced anywhere in the file (test code included).
    pub all_idents: std::collections::BTreeSet<String>,
    /// Hex integer literals with `(value, masked byte offset, line)`.
    pub hex_lits: Vec<(u128, usize, usize)>,
    /// Every identifier occurrence with its masked byte offset (test code
    /// included) — raw material for body-scoped reference queries.
    pub ident_refs: Vec<(String, usize)>,
    /// `A::B` qualified references outside test spans.
    pub qualified_refs: std::collections::BTreeSet<(String, String)>,
}

/// The workspace-level cross-file index.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceIndex {
    /// Per-file identifier summaries.
    pub files: Vec<FileIndex>,
    /// All `const` integer definitions.
    pub consts: Vec<ConstDef>,
    /// All `impl` blocks.
    pub impls: Vec<ImplBlock>,
    /// All `fn` definitions.
    pub fns: Vec<FnDef>,
    /// All `seed_from_u64` call sites.
    pub rng_sites: Vec<RngSite>,
    /// All `#[test]` functions.
    pub tests: Vec<TestFn>,
    /// All match-arm string literals.
    pub arm_strs: Vec<ArmStr>,
    /// All `enum` definitions.
    pub enums: Vec<EnumDef>,
}

impl WorkspaceIndex {
    /// Index a set of `(path, source)` files.
    pub fn build(sources: &[(String, String)]) -> Self {
        let mut idx = WorkspaceIndex::default();
        for (path, source) in sources {
            idx.add_file(path, source);
        }
        idx
    }

    /// Path of a file by index.
    pub fn path(&self, file: usize) -> &str {
        &self.files[file].path
    }

    /// Index of the first file whose non-test code references `ident` and
    /// whose path satisfies `pred`.
    pub fn file_referencing(&self, ident: &str, pred: impl Fn(&str) -> bool) -> Option<usize> {
        self.files
            .iter()
            .position(|f| pred(&f.path) && f.idents.contains(ident))
    }

    /// Does `ident` occur within byte `range` of `file`'s masked code?
    pub fn range_refs(&self, file: usize, range: (usize, usize), ident: &str) -> bool {
        self.files[file]
            .ident_refs
            .iter()
            .any(|(name, off)| *off >= range.0 && *off < range.1 && name == ident)
    }

    /// All `UPPER_CASE` constant names referenced within byte `range` of
    /// `file`'s masked code.
    pub fn const_refs_in(&self, file: usize, range: (usize, usize)) -> Vec<&str> {
        self.files[file]
            .ident_refs
            .iter()
            .filter(|(name, off)| *off >= range.0 && *off < range.1 && is_const_name(name))
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// All hex literals (with lines) within byte `range` of `file`.
    pub fn hex_in(&self, file: usize, range: (usize, usize)) -> Vec<(u128, usize)> {
        self.files[file]
            .hex_lits
            .iter()
            .filter(|(_, off, _)| *off >= range.0 && *off < range.1)
            .map(|(v, _, line)| (*v, *line))
            .collect()
    }

    /// Resolve a constant name to its integer value when exactly one
    /// definition exists workspace-wide.
    pub fn resolve_const(&self, name: &str) -> Option<&ConstDef> {
        let mut hits = self.consts.iter().filter(|c| c.name == name);
        let first = hits.next()?;
        if hits.next().is_some() {
            return None;
        }
        Some(first)
    }

    fn add_file(&mut self, path: &str, source: &str) {
        let file = self.files.len();
        let masked: Masked = mask(source);
        let spans = test_spans(&masked.code);
        let toks = tokenize(&masked.code);
        let in_test = |off: usize| spans.iter().any(|&(s, e)| off >= s && off < e);

        let mut fi = FileIndex {
            path: path.to_string(),
            ..Default::default()
        };
        for (k, t) in toks.iter().enumerate() {
            match &t.kind {
                TokKind::Ident => {
                    fi.all_idents.insert(t.text.clone());
                    if !in_test(t.start) {
                        fi.idents.insert(t.text.clone());
                    }
                    fi.ident_refs.push((t.text.clone(), t.start));
                    // `A::B` qualified reference.
                    if !in_test(t.start)
                        && toks.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                        && toks.get(k + 2).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                        && toks.get(k + 3).map(|t| &t.kind) == Some(&TokKind::Ident)
                    {
                        fi.qualified_refs
                            .insert((t.text.clone(), toks[k + 3].text.clone()));
                    }
                }
                TokKind::Num if t.text.starts_with("0x") || t.text.starts_with("0X") => {
                    if let Some(v) = int_value(&t.text) {
                        fi.hex_lits.push((v, t.start, t.line));
                    }
                }
                _ => {}
            }
        }
        self.files.push(fi);

        self.scan_items(file, &masked, &toks, &in_test);
        self.scan_rng_sites(file, &toks, &in_test);
        self.scan_tests(file, &masked, &toks);
        self.scan_arm_strings(file, &masked, &in_test);
    }

    /// Byte offset just past the brace block opening at token `open`
    /// (which must be `{`), or the end of code when unbalanced.
    fn brace_block_end(toks: &[Tok], open: usize, code_len: usize) -> usize {
        let mut depth = 0usize;
        for t in &toks[open..] {
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return t.start + 1;
                    }
                }
                _ => {}
            }
        }
        code_len
    }

    /// Skip a balanced `<…>` generics block starting at token `i` (which
    /// must be `<`), returning the index just past it.
    fn skip_generics(toks: &[Tok], mut i: usize) -> usize {
        let mut depth = 0isize;
        while i < toks.len() {
            match toks[i].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                TokKind::Punct('{') | TokKind::Punct(';') => return i, // gave up: not generics
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Parse a type/trait path (`a::b::C<T>`) starting at token `i`.
    /// Returns the last path segment and the index past the path.
    fn parse_path(toks: &[Tok], mut i: usize) -> (Option<String>, usize) {
        let mut last = None;
        loop {
            // `dyn`/`&` prefixes in trait-object positions.
            while i < toks.len()
                && matches!(&toks[i].kind, TokKind::Punct('&') | TokKind::Punct('\''))
            {
                i += 1;
            }
            if i < toks.len() && toks[i].kind == TokKind::Ident && toks[i].text == "dyn" {
                i += 1;
            }
            if i >= toks.len() || toks[i].kind != TokKind::Ident {
                return (last, i);
            }
            last = Some(toks[i].text.clone());
            i += 1;
            if i < toks.len() && toks[i].kind == TokKind::Punct('<') {
                i = Self::skip_generics(toks, i);
            }
            // `::` continues the path.
            if i + 1 < toks.len()
                && toks[i].kind == TokKind::Punct(':')
                && toks[i + 1].kind == TokKind::Punct(':')
            {
                i += 2;
                continue;
            }
            return (last, i);
        }
    }

    fn scan_items(
        &mut self,
        file: usize,
        masked: &Masked,
        toks: &[Tok],
        in_test: &dyn Fn(usize) -> bool,
    ) {
        let code_len = masked.code.len();
        // First pass: impl blocks (so fns can be attributed to owners).
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.text == "impl" && !in_test(t.start) {
                let mut j = i + 1;
                if j < toks.len() && toks[j].kind == TokKind::Punct('<') {
                    j = Self::skip_generics(toks, j);
                }
                let (first, mut j) = Self::parse_path(toks, j);
                let mut trait_name = None;
                let mut type_name = first.clone();
                if j < toks.len() && toks[j].kind == TokKind::Ident && toks[j].text == "for" {
                    let (second, j2) = Self::parse_path(toks, j + 1);
                    trait_name = first;
                    type_name = second;
                    j = j2;
                }
                // Skip any where-clause to the opening brace.
                while j < toks.len() && toks[j].kind != TokKind::Punct('{') {
                    if toks[j].kind == TokKind::Punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let (Some(type_name), true) = (
                    type_name,
                    j < toks.len() && toks[j].kind == TokKind::Punct('{'),
                ) {
                    let end = Self::brace_block_end(toks, j, code_len);
                    self.impls.push(ImplBlock {
                        trait_name,
                        type_name,
                        file,
                        line: t.line,
                        col: t.col,
                        body: (toks[j].start, end),
                    });
                }
                i = j.max(i + 1);
                continue;
            }
            i += 1;
        }
        let impl_of = |off: usize| -> Option<&ImplBlock> {
            self.impls
                .iter()
                .filter(|b| b.file == file)
                .find(|b| off >= b.body.0 && off < b.body.1)
        };

        // Second pass: fns, consts, enums.
        let mut fns = Vec::new();
        let mut consts = Vec::new();
        let mut enums = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "fn" => {
                    let Some(name_tok) = toks.get(i + 1) else {
                        break;
                    };
                    if name_tok.kind != TokKind::Ident {
                        i += 1;
                        continue;
                    }
                    // Walk the signature: past generics + args to `->`,
                    // `{`, `;` or `where`.
                    let mut j = i + 2;
                    if j < toks.len() && toks[j].kind == TokKind::Punct('<') {
                        j = Self::skip_generics(toks, j);
                    }
                    // Argument parens.
                    let mut depth = 0isize;
                    while j < toks.len() {
                        match toks[j].kind {
                            TokKind::Punct('(') => depth += 1,
                            TokKind::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    // Return type: ident tokens between `->` and the body.
                    let mut ret = Vec::new();
                    if j + 1 < toks.len()
                        && toks[j].kind == TokKind::Punct('-')
                        && toks[j + 1].kind == TokKind::Punct('>')
                    {
                        j += 2;
                        while j < toks.len() {
                            match &toks[j].kind {
                                TokKind::Punct('{') | TokKind::Punct(';') => break,
                                TokKind::Ident if toks[j].text == "where" => break,
                                TokKind::Ident => ret.push(toks[j].text.clone()),
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    while j < toks.len()
                        && toks[j].kind != TokKind::Punct('{')
                        && toks[j].kind != TokKind::Punct(';')
                    {
                        j += 1;
                    }
                    let body = if j < toks.len() && toks[j].kind == TokKind::Punct('{') {
                        Some((toks[j].start, Self::brace_block_end(toks, j, code_len)))
                    } else {
                        None
                    };
                    let owner = impl_of(t.start);
                    fns.push(FnDef {
                        name: name_tok.text.clone(),
                        owner: owner.map(|b| b.type_name.clone()),
                        owner_trait: owner.and_then(|b| b.trait_name.clone()),
                        ret,
                        file,
                        line: t.line,
                        col: t.col,
                        body,
                    });
                    i = j.max(i + 1);
                }
                "const" => {
                    // const NAME: TY = <int literal>;
                    let Some(name_tok) = toks.get(i + 1) else {
                        break;
                    };
                    if name_tok.kind != TokKind::Ident {
                        i += 1;
                        continue;
                    }
                    let mut j = i + 2;
                    while j < toks.len()
                        && toks[j].kind != TokKind::Punct('=')
                        && toks[j].kind != TokKind::Punct(';')
                    {
                        j += 1;
                    }
                    if j + 1 < toks.len() && toks[j].kind == TokKind::Punct('=') {
                        if let TokKind::Num = toks[j + 1].kind {
                            let text = &toks[j + 1].text;
                            if let Some(value) = int_value(text) {
                                consts.push(ConstDef {
                                    name: name_tok.text.clone(),
                                    value,
                                    hex: text.starts_with("0x") || text.starts_with("0X"),
                                    file,
                                    line: name_tok.line,
                                });
                            }
                        }
                    }
                    i = j.max(i + 1);
                }
                "enum" => {
                    let Some(name_tok) = toks.get(i + 1) else {
                        break;
                    };
                    if name_tok.kind != TokKind::Ident || in_test(t.start) {
                        i += 1;
                        continue;
                    }
                    let mut j = i + 2;
                    if j < toks.len() && toks[j].kind == TokKind::Punct('<') {
                        j = Self::skip_generics(toks, j);
                    }
                    if j >= toks.len() || toks[j].kind != TokKind::Punct('{') {
                        i += 1;
                        continue;
                    }
                    // Variants: idents at brace depth 1 that open a
                    // variant (start of body or right after a `,`).
                    let mut variants = Vec::new();
                    let mut depth = 0isize;
                    let mut expect_variant = false;
                    let mut k = j;
                    while k < toks.len() {
                        match &toks[k].kind {
                            TokKind::Punct('{') => {
                                depth += 1;
                                if depth == 1 {
                                    expect_variant = true;
                                }
                            }
                            TokKind::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokKind::Punct(',') if depth == 1 => expect_variant = true,
                            // Skip `#[…]` attributes.
                            TokKind::Punct('#')
                                if toks.get(k + 1).map(|t| &t.kind)
                                    == Some(&TokKind::Punct('[')) =>
                            {
                                let mut bd = 0isize;
                                k += 1;
                                while k < toks.len() {
                                    match toks[k].kind {
                                        TokKind::Punct('[') => bd += 1,
                                        TokKind::Punct(']') => {
                                            bd -= 1;
                                            if bd == 0 {
                                                break;
                                            }
                                        }
                                        _ => {}
                                    }
                                    k += 1;
                                }
                            }
                            TokKind::Ident if depth == 1 && expect_variant => {
                                variants.push((toks[k].text.clone(), toks[k].line));
                                expect_variant = false;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    enums.push(EnumDef {
                        name: name_tok.text.clone(),
                        variants,
                        file,
                        line: name_tok.line,
                        col: name_tok.col,
                    });
                    i = k.max(i + 1);
                }
                _ => i += 1,
            }
        }
        self.fns.extend(fns);
        self.consts.extend(consts);
        self.enums.extend(enums);
    }

    fn scan_rng_sites(&mut self, file: usize, toks: &[Tok], in_test: &dyn Fn(usize) -> bool) {
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "seed_from_u64"
                && toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct('('))
            {
                let mut tweaks = Vec::new();
                let mut const_refs = Vec::new();
                let mut depth = 0isize;
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('(') => depth += 1,
                        TokKind::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Num => {
                            let text = &toks[j].text;
                            if text.starts_with("0x") || text.starts_with("0X") {
                                if let Some(v) = int_value(text) {
                                    tweaks.push(v);
                                }
                            }
                        }
                        TokKind::Ident => {
                            let t = &toks[j].text;
                            if is_const_name(t) {
                                const_refs.push(t.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                self.rng_sites.push(RngSite {
                    tweaks,
                    const_refs,
                    file,
                    line: toks[i].line,
                    col: toks[i].col,
                    in_test: in_test(toks[i].start),
                });
                i = j.max(i + 1);
                continue;
            }
            i += 1;
        }
    }

    fn scan_tests(&mut self, file: usize, masked: &Masked, toks: &[Tok]) {
        // `#[test]` (optionally with more attributes between it and `fn`).
        let mut i = 0usize;
        while i + 3 < toks.len() {
            let is_test_attr = toks[i].kind == TokKind::Punct('#')
                && toks[i + 1].kind == TokKind::Punct('[')
                && toks[i + 2].kind == TokKind::Ident
                && toks[i + 2].text == "test"
                && toks[i + 3].kind == TokKind::Punct(']');
            if !is_test_attr {
                i += 1;
                continue;
            }
            // Find the `fn` and its name.
            let mut j = i + 4;
            while j < toks.len() && !(toks[j].kind == TokKind::Ident && toks[j].text == "fn") {
                j += 1;
            }
            let Some(name_tok) = toks.get(j + 1) else {
                break;
            };
            // Body: first brace block after the name.
            let mut k = j + 2;
            while k < toks.len() && toks[k].kind != TokKind::Punct('{') {
                k += 1;
            }
            if k < toks.len() {
                let end = Self::brace_block_end(toks, k, masked.code.len());
                let start = toks[k].start;
                let refs = toks
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident && t.start >= start && t.start < end)
                    .map(|t| t.text.clone())
                    .collect();
                self.tests.push(TestFn {
                    name: name_tok.text.clone(),
                    refs,
                    file,
                    line: name_tok.line,
                });
                i = k;
            }
            i += 1;
        }
    }

    fn scan_arm_strings(&mut self, file: usize, masked: &Masked, in_test: &dyn Fn(usize) -> bool) {
        for s in &masked.strings {
            let after = masked.code[s.end..].trim_start();
            if after.starts_with("=>") {
                self.arm_strs.push(ArmStr {
                    value: s.text.clone(),
                    file,
                    line: s.line,
                    col: s.col,
                    start: s.start,
                    in_test: in_test(s.start),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> WorkspaceIndex {
        WorkspaceIndex::build(&[("crates/fl/src/x.rs".into(), src.into())])
    }

    #[test]
    fn impls_and_fns_are_attributed() {
        let idx = build(
            "struct A;\nimpl Proto for A {\n  fn seed_tweak(&self) -> u64 { 0xAB }\n}\n\
             impl A {\n  fn protocol(&self) -> AProtocol { AProtocol }\n}\nfn free() {}\n",
        );
        assert_eq!(idx.impls.len(), 2);
        assert_eq!(idx.impls[0].trait_name.as_deref(), Some("Proto"));
        assert_eq!(idx.impls[0].type_name, "A");
        assert_eq!(idx.impls[1].trait_name, None);
        let tweak = idx.fns.iter().find(|f| f.name == "seed_tweak").unwrap();
        assert_eq!(tweak.owner.as_deref(), Some("A"));
        assert_eq!(tweak.owner_trait.as_deref(), Some("Proto"));
        let proto = idx.fns.iter().find(|f| f.name == "protocol").unwrap();
        assert_eq!(proto.ret, vec!["AProtocol".to_string()]);
        assert!(idx
            .fns
            .iter()
            .any(|f| f.name == "free" && f.owner.is_none()));
    }

    #[test]
    fn rng_sites_collect_hex_tweaks_and_const_refs() {
        let idx = build(
            "const FAULT_TWEAK: u64 = 0xFAB7_5EED;\n\
             fn f(seed: u64) {\n  let r = StdRng::seed_from_u64(seed ^ 0xEAE5 ^ FAULT_TWEAK);\n}\n\
             #[cfg(test)]\nmod t { fn g() { StdRng::seed_from_u64(7 ^ 0xDEAD); } }\n",
        );
        assert_eq!(idx.rng_sites.len(), 2);
        assert_eq!(idx.rng_sites[0].tweaks, vec![0xEAE5]);
        assert_eq!(idx.rng_sites[0].const_refs, vec!["FAULT_TWEAK".to_string()]);
        assert!(!idx.rng_sites[0].in_test);
        assert!(idx.rng_sites[1].in_test);
        assert_eq!(idx.resolve_const("FAULT_TWEAK").unwrap().value, 0xFAB7_5EED);
    }

    #[test]
    fn enum_variants_and_match_arms_are_indexed() {
        let idx = build(
            "pub enum Framework {\n  Global,\n  FedAvg(FedAvg),\n  #[allow(dead_code)]\n  FedDa(FedDa),\n}\n\
             fn parse(name: &str) -> u8 {\n  match name {\n    \"global\" => 0,\n    \"fedavg\" => 1,\n    _ => 9,\n  }\n}\n",
        );
        assert_eq!(idx.enums.len(), 1);
        let names: Vec<&str> = idx.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["Global", "FedAvg", "FedDa"]);
        let arms: Vec<&str> = idx.arm_strs.iter().map(|a| a.value.as_str()).collect();
        assert_eq!(arms, vec!["global", "fedavg"]);
    }

    #[test]
    fn test_fns_record_their_references() {
        let idx = build(
            "#[test]\nfn golden_async_thing() {\n  let d = AsyncDriver::new(cfg);\n  d.run(&mut Thing::new());\n}\n",
        );
        assert_eq!(idx.tests.len(), 1);
        assert!(idx.tests[0].refs.contains("AsyncDriver"));
        assert!(idx.tests[0].refs.contains("Thing"));
    }

    #[test]
    fn int_values_parse_hex_and_suffixes() {
        assert_eq!(int_value("0xFED9_0B0C"), Some(0xFED9_0B0C));
        assert_eq!(int_value("42u64"), Some(42));
        assert_eq!(int_value("0b101"), Some(5));
        assert_eq!(int_value("1.5"), None);
    }
}
