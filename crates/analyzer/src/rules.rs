//! The rule set (D1–D5) and the per-file scanner.
//!
//! Rules operate on the lexer's masked code, so they cannot fire inside
//! comments, strings or char literals. Each rule is scoped to the crates
//! where its invariant matters; findings inside `#[cfg(test)]` spans are
//! dropped (the invariants are about library code).

use crate::lexer::{mask, test_spans, Comment};

/// D1: no `HashMap`/`HashSet` in deterministic crates.
pub const HASH_COLLECTION: &str = "hash-collection";
/// D2: no ambient nondeterminism or wall-clock in protocol code.
pub const WALL_CLOCK: &str = "wall-clock";
/// D3: no `unwrap`/`expect`/`panic!`/`todo!` in library code of core crates.
pub const PANIC_PATH: &str = "panic-path";
/// D4: no float `==` / `!=` comparisons.
pub const FLOAT_EQ: &str = "float-eq";
/// D5: no potentially-truncating `as` casts in comm accounting code.
pub const NARROWING_CAST: &str = "narrowing-cast";
/// D6 (cross-file): RNG-stream discipline — tweak constants must be
/// globally unique, and every `seed_tweak` impl must return a resolvable
/// constant.
pub const RNG_STREAM: &str = "rng-stream";
/// R1 (cross-file): every `FlProtocol` impl must be reachable from the
/// `Framework` factory, and every `Framework` variant from `parse_framework`.
pub const PROTOCOL_FACTORY: &str = "protocol-factory";
/// R2 (cross-file): every `FlProtocol` impl needs sync + async golden pins
/// in `golden_curves.rs`.
pub const PROTOCOL_PINS: &str = "protocol-pins";
/// R3 (cross-file): every `FlProtocol` impl must appear in the chaos sweep,
/// and `parse_framework` arms must mirror the README zoo table.
pub const PROTOCOL_ZOO: &str = "protocol-zoo";
/// Meta-rule: a `fedda-lint: allow(...)` directive that is malformed,
/// names an unknown rule, or lacks a reason.
pub const BAD_SUPPRESSION: &str = "bad-suppression";
/// Meta-rule: a well-formed directive that suppressed nothing.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Crates whose iteration order feeds seeded reproducibility (D1).
pub const DETERMINISTIC_CRATES: &[&str] = &["data", "hetgraph", "tensor", "hgn", "fl"];
/// Crates where library panics are banned (D3) and float equality needs a
/// reason (D4).
pub const CORE_CRATES: &[&str] = &["data", "hetgraph", "tensor", "hgn", "fl", "metrics"];
/// Protocol / aggregation crates (D2, D5).
pub const PROTOCOL_CRATES: &[&str] = &["fl"];

/// All suppressible rule ids.
pub const RULE_IDS: &[&str] = &[
    HASH_COLLECTION,
    WALL_CLOCK,
    PANIC_PATH,
    FLOAT_EQ,
    NARROWING_CAST,
    RNG_STREAM,
    PROTOCOL_FACTORY,
    PROTOCOL_PINS,
    PROTOCOL_ZOO,
];

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (characters).
    pub col: usize,
    /// Rule id (one of the `RULE_IDS` or a meta-rule).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// True when an in-tree directive suppressed this finding.
    pub suppressed: bool,
    /// The directive's reason string, when suppressed.
    pub reason: Option<String>,
}

/// A parsed `// fedda-lint: allow(rule, reason = "...")` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule the directive exempts.
    pub rule: String,
    /// The stated reason.
    pub reason: String,
    /// The line the directive suppresses findings on.
    pub target_line: usize,
    /// The line the directive itself sits on.
    pub directive_line: usize,
    /// 1-based column of the directive comment.
    pub directive_col: usize,
    /// Set once the directive has matched at least one finding.
    pub used: bool,
}

/// One file's raw scan: findings with no suppression applied yet, plus the
/// directives and malformed-directive diagnostics found alongside them.
/// [`resolve`] merges cross-file findings in and applies suppressions.
#[derive(Clone, Debug, Default)]
pub struct FileScan {
    /// Workspace-relative path.
    pub path: String,
    /// Per-file rule findings, unsuppressed.
    pub findings: Vec<Finding>,
    /// Well-formed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// `bad-suppression` findings.
    pub bad: Vec<Finding>,
}

/// Which rule scopes apply to a file, derived from its path (or, for files
/// outside `crates/<name>/`, from a `//@ crate: <name>` header).
fn crate_of(path: &str, source: &str) -> Option<String> {
    for line in source.lines().take(5) {
        if let Some(rest) = line.trim().strip_prefix("//@ crate:") {
            return Some(rest.trim().to_string());
        }
    }
    let norm = path.replace('\\', "/");
    let mut parts = norm.split('/').peekable();
    while let Some(p) = parts.next() {
        if p == "crates" {
            return parts.peek().map(|s| s.to_string());
        }
    }
    None
}

fn in_scope(krate: Option<&str>, scope: &[&str]) -> bool {
    // Files with no derivable crate (ad-hoc CLI targets) get every rule.
    match krate {
        None => true,
        Some(k) => scope.contains(&k),
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Occurrences of `needle` in `hay` at identifier boundaries.
fn ident_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        let after = hay[at + needle.len()..].chars().next().unwrap_or(' ');
        // `::` after the needle is fine (`HashMap::new`), an ident char is
        // not (`unwrap_or`).
        if before_ok && !is_ident_char(after) {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Does `token` look like a float literal (`0.0`, `1.`, `.5`, `1e-6`,
/// `2.5f32`)?
fn is_float_literal(token: &str) -> bool {
    let t = token
        .trim_end_matches("f32")
        .trim_end_matches("f64")
        .trim_end_matches('_');
    if t.is_empty() {
        return false;
    }
    let has_digit = t.chars().any(|c| c.is_ascii_digit());
    if !has_digit {
        return false;
    }
    let has_dot = t.contains('.');
    let has_exp = !t.starts_with("0x")
        && !t.starts_with("0b")
        && (t.contains('e') || t.contains('E'))
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, 'e' | 'E' | '+' | '-' | '.' | '_'));
    if !(has_dot || has_exp) {
        return false;
    }
    t.chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-' | '_'))
}

/// The token (maximal run of non-space, non-comparison chars) ending at
/// `end` (exclusive).
fn token_before(line: &str, end: usize) -> &str {
    let boundary = |c: char| c.is_whitespace() || matches!(c, '(' | ',' | '=' | '!' | '<' | '>');
    let chars: Vec<(usize, char)> = line[..end].char_indices().collect();
    let mut start = 0usize;
    for &(i, c) in chars.iter().rev() {
        if boundary(c) {
            start = i + c.len_utf8();
            break;
        }
    }
    line[start..end].trim()
}

/// The token starting at `start`.
fn token_after(line: &str, start: usize) -> &str {
    let boundary =
        |c: char| c.is_whitespace() || matches!(c, ')' | ',' | ';' | '=' | '!' | '<' | '>' | '{');
    let rest = &line[start..];
    let rest = rest.trim_start();
    let end = rest.find(boundary).unwrap_or(rest.len());
    &rest[..end]
}

/// Scan one file and return its findings (suppressed ones included, with
/// their reasons attached). Single-file convenience over
/// [`scan_file_raw`] + [`resolve`].
pub fn scan_file(path: &str, source: &str) -> Vec<Finding> {
    resolve(vec![scan_file_raw(path, source)], Vec::new())
}

/// Parse only the suppression directives (and malformed-directive findings)
/// of a file, running no per-line rules. Used for index-only files — code
/// the cross-file rules read but the per-file rules don't police — so
/// cross-file findings there can still be suppressed in-tree.
pub fn directive_scan(path: &str, source: &str) -> FileScan {
    let masked = mask(source);
    let spans = test_spans(&masked.code);
    let suppressions = parse_suppressions(&masked.comments, &masked.code, &spans);
    let mut line_starts = vec![0usize];
    for (i, b) in masked.code.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    FileScan {
        path: path.to_string(),
        findings: Vec::new(),
        bad: bad_directives(path, &masked.comments, &spans, &line_starts),
        suppressions,
    }
}

/// Merge per-file scans with cross-file findings, apply suppressions, and
/// report unused directives. Cross-file findings land in the file they are
/// anchored to, so a directive on the anchor line exempts them like any
/// per-line finding; findings anchored in files with no scan (e.g.
/// `README.md`) pass through unsuppressable.
pub fn resolve(scans: Vec<FileScan>, cross: Vec<Finding>) -> Vec<Finding> {
    let mut cross_by_file: std::collections::BTreeMap<String, Vec<Finding>> =
        std::collections::BTreeMap::new();
    for f in cross {
        cross_by_file.entry(f.file.clone()).or_default().push(f);
    }
    let mut out = Vec::new();
    for scan in scans {
        let mut findings = scan.findings;
        findings.extend(cross_by_file.remove(&scan.path).unwrap_or_default());
        let mut suppressions = scan.suppressions;
        for f in &mut findings {
            if let Some(sup) = suppressions
                .iter_mut()
                .find(|s| s.rule == f.rule && s.target_line == f.line)
            {
                f.suppressed = true;
                f.reason = Some(sup.reason.clone());
                sup.used = true;
            }
        }
        for sup in &suppressions {
            if !sup.used {
                findings.push(Finding {
                    file: scan.path.clone(),
                    line: sup.directive_line,
                    col: sup.directive_col,
                    rule: UNUSED_SUPPRESSION,
                    message: format!(
                        "suppression `allow({})` matches no finding on line {}: remove it",
                        sup.rule, sup.target_line
                    ),
                    suppressed: false,
                    reason: None,
                });
            }
        }
        findings.extend(scan.bad);
        out.extend(findings);
    }
    // Findings anchored in files that were never scanned for directives.
    for (_, rest) in cross_by_file {
        out.extend(rest);
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Run every in-scope per-line rule on one file, returning the raw scan
/// with suppressions unapplied.
pub fn scan_file_raw(path: &str, source: &str) -> FileScan {
    let krate = crate_of(path, source);
    let krate = krate.as_deref();
    let masked = mask(source);
    let spans = test_spans(&masked.code);
    let suppressions = parse_suppressions(&masked.comments, &masked.code, &spans);
    let mut findings: Vec<Finding> = Vec::new();

    // Byte offset of each line start in the masked code, to map (line, col
    // in chars) findings and test spans onto each other.
    let mut line_starts = vec![0usize];
    for (i, b) in masked.code.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let in_test = |line: usize, byte_in_line: usize| -> bool {
        let off = line_starts[line - 1] + byte_in_line;
        spans.iter().any(|&(s, e)| off >= s && off < e)
    };

    let mut push =
        |line: usize, byte_col: usize, char_col: usize, rule: &'static str, message: String| {
            if in_test(line, byte_col) {
                return;
            }
            findings.push(Finding {
                file: path.to_string(),
                line,
                col: char_col,
                rule,
                message,
                suppressed: false,
                reason: None,
            });
        };

    for (lineno, line) in masked.code.lines().enumerate() {
        let lineno = lineno + 1;
        let char_col = |byte: usize| line[..byte].chars().count() + 1;

        // D1 — hash collections in deterministic crates.
        if in_scope(krate, DETERMINISTIC_CRATES) {
            for name in ["HashMap", "HashSet"] {
                for at in ident_occurrences(line, name) {
                    push(
                        lineno,
                        at,
                        char_col(at),
                        HASH_COLLECTION,
                        format!(
                            "`{name}` in a deterministic crate: unordered iteration breaks \
                             seeded reproducibility; use `BTreeMap`/`BTreeSet` or sort keys \
                             before iterating"
                        ),
                    );
                }
            }
        }

        // D2 — ambient nondeterminism / wall-clock in protocol code.
        if in_scope(krate, PROTOCOL_CRATES) {
            for pat in ["thread_rng", "SystemTime"] {
                for at in ident_occurrences(line, pat) {
                    push(
                        lineno,
                        at,
                        char_col(at),
                        WALL_CLOCK,
                        format!(
                            "ambient nondeterminism (`{pat}`) in protocol code: seeded \
                             reproducibility requires explicit RNG streams and logical time"
                        ),
                    );
                }
            }
            let mut from = 0usize;
            while let Some(pos) = line[from..].find("Instant::now") {
                let at = from + pos;
                push(
                    lineno,
                    at,
                    char_col(at),
                    WALL_CLOCK,
                    "wall-clock read (`Instant::now`) in protocol code: timing telemetry \
                     must carry an explicit suppression with a reason"
                        .to_string(),
                );
                from = at + "Instant::now".len();
            }
        }

        // D3 — panicking calls in library code of core crates.
        if in_scope(krate, CORE_CRATES) {
            for name in ["unwrap", "expect"] {
                for at in ident_occurrences(line, name) {
                    // Only method-call position: `.unwrap()` / `.expect(`.
                    let dotted = line[..at].trim_end().ends_with('.');
                    if !dotted {
                        continue;
                    }
                    push(
                        lineno,
                        at,
                        char_col(at),
                        PANIC_PATH,
                        format!(
                            "`.{name}()` in non-test library code: propagate a `Result` or \
                             add a reasoned `fedda-lint: allow({PANIC_PATH}, ...)` suppression"
                        ),
                    );
                }
            }
            for mac in ["panic!", "todo!", "unimplemented!"] {
                let bare = &mac[..mac.len() - 1];
                for at in ident_occurrences(line, bare) {
                    if line[at + bare.len()..].starts_with('!') {
                        push(
                            lineno,
                            at,
                            char_col(at),
                            PANIC_PATH,
                            format!("`{mac}` in non-test library code"),
                        );
                    }
                }
            }
        }

        // D4 — float equality.
        if in_scope(krate, CORE_CRATES) {
            let bytes = line.as_bytes();
            let mut i = 0usize;
            while i + 1 < bytes.len() {
                let two = &line[i..i + 2];
                if (two == "==" || two == "!=")
                    && (i == 0 || !matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!'))
                    && line[i + 2..].bytes().next() != Some(b'=')
                {
                    let lhs = token_before(line, i);
                    let rhs = token_after(line, i + 2);
                    if is_float_literal(lhs) || is_float_literal(rhs) {
                        push(
                            lineno,
                            i,
                            char_col(i),
                            FLOAT_EQ,
                            format!(
                                "float `{two}` comparison (`{lhs} {two} {rhs}`): compare \
                                 within an epsilon, or justify exactness with a suppression"
                            ),
                        );
                    }
                    i += 2;
                    continue;
                }
                i += 1;
            }
        }

        // D5 — narrowing integer casts in comm/protocol accounting.
        if in_scope(krate, PROTOCOL_CRATES) {
            for at in ident_occurrences(line, "as") {
                let target = token_after(line, at + 2);
                let target = target.trim_end_matches(|c: char| !c.is_alphanumeric());
                if matches!(target, "u8" | "u16" | "u32" | "i8" | "i16" | "i32") {
                    push(
                        lineno,
                        at,
                        char_col(at),
                        NARROWING_CAST,
                        format!(
                            "potentially-truncating `as {target}` cast in protocol/ledger \
                             code: use `{target}::try_from` (or widen the accumulator)"
                        ),
                    );
                }
            }
        }
    }

    FileScan {
        path: path.to_string(),
        bad: bad_directives(path, &masked.comments, &spans, &line_starts),
        findings,
        suppressions,
    }
}

/// Parse well-formed directives out of comments; malformed ones are
/// reported by [`bad_directives`]. Directives inside test spans are
/// ignored entirely.
fn parse_suppressions(
    comments: &[Comment],
    code: &str,
    spans: &[(usize, usize)],
) -> Vec<Suppression> {
    let mut line_starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    // Lines occupied by a leading (own-line) directive: a stack of
    // consecutive directive lines all targets the first code line below
    // the stack, so several rules can be exempted on one anchor line.
    let directive_lines: std::collections::BTreeSet<usize> = comments
        .iter()
        .filter(|c| !c.trailing && c.text.contains("fedda-lint:"))
        .map(|c| c.line)
        .collect();
    let mut out = Vec::new();
    for c in comments {
        let Some((rule, reason)) = parse_directive(&c.text) else {
            continue;
        };
        if !RULE_IDS.contains(&rule.as_str()) || reason.is_empty() {
            continue; // reported as bad-suppression
        }
        let off = line_starts.get(c.line - 1).copied().unwrap_or(0);
        if spans.iter().any(|&(s, e)| off >= s && off < e) {
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            let mut t = c.line + 1;
            while directive_lines.contains(&t) {
                t += 1;
            }
            t
        };
        out.push(Suppression {
            rule,
            reason,
            target_line,
            directive_line: c.line,
            directive_col: c.col,
            used: false,
        });
    }
    out
}

/// Extract `(rule, reason)` from a directive comment, or `None` when the
/// comment is not a directive at all. A directive with a missing/empty
/// reason returns `Some((rule, ""))` so it can be reported.
fn parse_directive(text: &str) -> Option<(String, String)> {
    let at = text.find("fedda-lint:")?;
    let rest = text[at + "fedda-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, tail) = match inner.find(',') {
        Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
        None => (inner.trim(), ""),
    };
    let reason = tail
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.rfind('"').map(|end| r[..end].to_string()))
        .unwrap_or_default();
    Some((rule.to_string(), reason))
}

/// Report malformed directives: unknown rule, or missing reason.
fn bad_directives(
    path: &str,
    comments: &[Comment],
    spans: &[(usize, usize)],
    line_starts: &[usize],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in comments {
        let Some((rule, reason)) = parse_directive(&c.text) else {
            if c.text.contains("fedda-lint:") {
                out.push(Finding {
                    file: path.to_string(),
                    line: c.line,
                    col: c.col,
                    rule: BAD_SUPPRESSION,
                    message: "malformed `fedda-lint:` directive: expected \
                              `fedda-lint: allow(rule, reason = \"...\")`"
                        .to_string(),
                    suppressed: false,
                    reason: None,
                });
            }
            continue;
        };
        let off = line_starts.get(c.line - 1).copied().unwrap_or(0);
        if spans.iter().any(|&(s, e)| off >= s && off < e) {
            continue;
        }
        if !RULE_IDS.contains(&rule.as_str()) {
            out.push(Finding {
                file: path.to_string(),
                line: c.line,
                col: c.col,
                rule: BAD_SUPPRESSION,
                message: format!(
                    "suppression names unknown rule `{rule}` (known: {})",
                    RULE_IDS.join(", ")
                ),
                suppressed: false,
                reason: None,
            });
        } else if reason.is_empty() {
            out.push(Finding {
                file: path.to_string(),
                line: c.line,
                col: c.col,
                rule: BAD_SUPPRESSION,
                message: format!(
                    "suppression for `{rule}` carries no reason: every exemption must \
                     say why (`reason = \"...\"`)"
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d1_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&scan_file("crates/fl/src/x.rs", src)),
            vec![HASH_COLLECTION]
        );
        assert!(rules_of(&scan_file("crates/metrics/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d3_skips_unwrap_or_and_test_mods() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
                   #[cfg(test)]\nmod tests { fn t(x: Option<u8>) { x.unwrap(); } }\n";
        assert!(rules_of(&scan_file("crates/fl/src/x.rs", src)).is_empty());
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            rules_of(&scan_file("crates/fl/src/x.rs", bad)),
            vec![PANIC_PATH]
        );
    }

    #[test]
    fn d4_needs_a_float_literal_operand() {
        let flagged = "fn f(x: f32) -> bool { x == 0.0 }\n";
        assert_eq!(
            rules_of(&scan_file("crates/tensor/src/x.rs", flagged)),
            vec![FLOAT_EQ]
        );
        let int = "fn f(x: usize) -> bool { x == 0 }\n";
        assert!(rules_of(&scan_file("crates/tensor/src/x.rs", int)).is_empty());
    }

    #[test]
    fn suppression_with_reason_downgrades_and_is_counted() {
        let src = "fn f() {\n    // fedda-lint: allow(wall-clock, reason = \"telemetry\")\n    let t = Instant::now();\n}\n";
        let fs = scan_file("crates/fl/src/x.rs", src);
        assert!(rules_of(&fs).is_empty());
        let sup: Vec<_> = fs.iter().filter(|f| f.suppressed).collect();
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].reason.as_deref(), Some("telemetry"));
    }

    #[test]
    fn trailing_suppression_applies_to_its_own_line() {
        let src =
            "fn f() { let t = Instant::now(); } // fedda-lint: allow(wall-clock, reason = \"x\")\n";
        let fs = scan_file("crates/fl/src/x.rs", src);
        assert!(rules_of(&fs).is_empty());
        assert_eq!(fs.iter().filter(|f| f.suppressed).count(), 1);
    }

    #[test]
    fn reasonless_and_unused_suppressions_are_findings() {
        let no_reason = "// fedda-lint: allow(wall-clock)\nlet t = Instant::now();\n";
        let fs = scan_file("crates/fl/src/x.rs", no_reason);
        assert!(fs.iter().any(|f| f.rule == BAD_SUPPRESSION));
        let unused = "// fedda-lint: allow(wall-clock, reason = \"no-op\")\nlet x = 1;\n";
        let fs = scan_file("crates/fl/src/x.rs", unused);
        assert!(fs.iter().any(|f| f.rule == UNUSED_SUPPRESSION));
    }

    #[test]
    fn patterns_inside_strings_and_comments_do_not_fire() {
        let src =
            "// HashMap unwrap() panic!\nfn f() -> &'static str { \"Instant::now x == 0.0\" }\n";
        assert!(rules_of(&scan_file("crates/fl/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d5_flags_narrowing_casts_only() {
        let src = "fn f(x: usize) -> u32 { x as u32 }\nfn g(x: u32) -> u64 { x as u64 }\n";
        assert_eq!(
            rules_of(&scan_file("crates/fl/src/x.rs", src)),
            vec![NARROWING_CAST]
        );
    }

    #[test]
    fn crate_header_overrides_path() {
        let src = "//@ crate: fl\nlet t = Instant::now();\n";
        assert_eq!(rules_of(&scan_file("fixtures/x.rs", src)), vec![WALL_CLOCK]);
    }
}
