//! The lint ratchet: per-rule finding counts persisted to
//! `lint-baseline.json`, with a check that fails when any count rises.
//!
//! Counts include suppressed findings — unsuppressed ones already fail the
//! build outright — so the baseline is effectively the reasoned-exemption
//! budget: a new suppression anywhere in the workspace trips the ratchet
//! until the baseline is deliberately regenerated (`--ratchet-write`) in
//! the same change, which makes the growth visible in review. Counts
//! going *down* never fail; regenerating then tightens the budget.
//!
//! The JSON is read by a tiny purpose-built parser so the analyzer keeps
//! its zero-dependency build; the format is exactly what
//! [`Baseline::to_json`] emits:
//!
//! ```json
//! {
//!   "version": 1,
//!   "counts": {
//!     "panic-path": 3,
//!     "wall-clock": 1
//!   }
//! }
//! ```

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Format version this module reads and writes.
pub const BASELINE_VERSION: u64 = 1;

/// Per-rule finding counts (suppressed + unsuppressed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// rule id -> total findings.
    pub counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Count findings per rule.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts.entry(f.rule.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Stable-order JSON serialisation.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"version\": {BASELINE_VERSION},\n  \"counts\": {{");
        for (i, (rule, n)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{rule}\": {n}"));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse a baseline file. Tolerates whitespace but nothing fancier
    /// than the format `to_json` writes.
    pub fn parse(text: &str) -> Result<Self, String> {
        let version = field_value(text, "version")
            .ok_or_else(|| "baseline: missing \"version\" field".to_string())?;
        if version != BASELINE_VERSION as usize {
            return Err(format!(
                "baseline: unsupported version {version} (expected {BASELINE_VERSION})"
            ));
        }
        let counts_at = text
            .find("\"counts\"")
            .ok_or_else(|| "baseline: missing \"counts\" object".to_string())?;
        let open = text[counts_at..]
            .find('{')
            .map(|i| counts_at + i)
            .ok_or_else(|| "baseline: \"counts\" is not an object".to_string())?;
        let close = text[open..]
            .find('}')
            .map(|i| open + i)
            .ok_or_else(|| "baseline: unterminated \"counts\" object".to_string())?;
        let body = &text[open + 1..close];
        let mut counts = BTreeMap::new();
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("baseline: malformed counts entry `{entry}`"))?;
            let key = key.trim().trim_matches('"');
            let value: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("baseline: non-integer count for `{key}`"))?;
            if key.is_empty() {
                return Err(format!("baseline: empty rule id in entry `{entry}`"));
            }
            counts.insert(key.to_string(), value);
        }
        Ok(Baseline { counts })
    }

    /// Rules whose current count exceeds the baseline (rules absent from
    /// the baseline count as 0, so brand-new findings always trip it).
    pub fn regressions(&self, current: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        for (rule, &n) in &current.counts {
            let allowed = self.counts.get(rule).copied().unwrap_or(0);
            if n > allowed {
                out.push(format!(
                    "rule `{rule}`: {n} finding(s), baseline allows {allowed} — \
                     fix the new finding(s) or regenerate the baseline with \
                     --ratchet-write and justify the growth in review"
                ));
            }
        }
        out
    }
}

/// Extract `"name": <int>` from JSON text (top-level scan, first match).
fn field_value(text: &str, name: &str) -> Option<usize> {
    let needle = format!("\"{name}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{PANIC_PATH, WALL_CLOCK};

    fn finding(rule: &'static str) -> Finding {
        Finding {
            file: "x.rs".into(),
            line: 1,
            col: 1,
            rule,
            message: String::new(),
            suppressed: true,
            reason: Some("r".into()),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let b = Baseline::from_findings(&[
            finding(PANIC_PATH),
            finding(PANIC_PATH),
            finding(WALL_CLOCK),
        ]);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.counts[PANIC_PATH], 2);
    }

    #[test]
    fn rising_count_is_a_regression_and_falling_is_not() {
        let base = Baseline::parse("{\"version\": 1, \"counts\": {\"panic-path\": 1}}").unwrap();
        let worse = Baseline::from_findings(&[finding(PANIC_PATH), finding(PANIC_PATH)]);
        assert_eq!(base.regressions(&worse).len(), 1);
        let better = Baseline::from_findings(&[]);
        assert!(base.regressions(&better).is_empty());
    }

    #[test]
    fn new_rule_with_findings_trips_an_old_baseline() {
        let base = Baseline::parse("{\"version\": 1, \"counts\": {}}").unwrap();
        let current = Baseline::from_findings(&[finding(WALL_CLOCK)]);
        let regs = base.regressions(&current);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("wall-clock"));
    }

    #[test]
    fn bad_baselines_are_rejected_with_reasons() {
        assert!(Baseline::parse("{}").unwrap_err().contains("version"));
        assert!(Baseline::parse("{\"version\": 2, \"counts\": {}}")
            .unwrap_err()
            .contains("version 2"));
        assert!(Baseline::parse("{\"version\": 1}")
            .unwrap_err()
            .contains("counts"));
        assert!(Baseline::parse("{\"version\": 1, \"counts\": {\"a\": \"x\"}}").is_err());
    }
}
