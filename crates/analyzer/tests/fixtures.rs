//! Each fixture under `fixtures/` is self-describing: its `//@ expect:`
//! header lists exactly the findings the analyzer must produce for it
//! (`rule` for an unsuppressed finding, `suppressed rule` for a reasoned
//! exemption, empty for a clean file). This pins both directions: every rule
//! fires on its known-bad snippet, and nothing fires where nothing should.

use std::path::PathBuf;
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn expected_findings(source: &str) -> Vec<String> {
    let line = source
        .lines()
        .find(|l| l.starts_with("//@ expect:"))
        .expect("fixture missing //@ expect: header");
    line["//@ expect:".len()..]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn actual_findings(path: &PathBuf) -> Vec<String> {
    let source = std::fs::read_to_string(path).unwrap();
    fedda_analyzer::scan_file(&path.to_string_lossy(), &source)
        .into_iter()
        .map(|f| {
            if f.suppressed {
                format!("suppressed {}", f.rule)
            } else {
                f.rule.to_string()
            }
        })
        .collect()
}

#[test]
fn every_fixture_triggers_exactly_its_expected_rules() {
    let mut checked = 0;
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        let mut expected = expected_findings(&source);
        let mut actual = actual_findings(&path);
        expected.sort();
        actual.sort();
        assert_eq!(
            actual,
            expected,
            "finding mismatch for fixture {}",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 9, "expected >= 9 fixtures, found {checked}");
}

#[test]
fn suppressed_findings_always_carry_their_reason() {
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        for f in fedda_analyzer::scan_file(&path.to_string_lossy(), &source) {
            if f.suppressed {
                assert!(
                    f.reason.as_deref().is_some_and(|r| !r.is_empty()),
                    "suppressed finding without a reason in {}",
                    path.display()
                );
            }
        }
    }
}

fn run_lint(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fedda-lint"))
        .args(args)
        .output()
        .expect("failed to launch fedda-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_bad_fixtures() {
    let dir = fixtures_dir();
    for bad in [
        "hash_collection.rs",
        "wall_clock.rs",
        "panic_path.rs",
        "float_eq.rs",
        "narrowing_cast.rs",
        "missing_reason.rs",
        "unused_allow.rs",
    ] {
        let path = dir.join(bad);
        let (code, _) = run_lint(&["--root", dir.to_str().unwrap(), path.to_str().unwrap()]);
        assert_eq!(code, 1, "expected exit 1 for {bad}");
    }
}

#[test]
fn binary_exits_zero_on_clean_and_suppressed_fixtures() {
    let dir = fixtures_dir();
    for good in ["clean.rs", "suppressed_ok.rs"] {
        let path = dir.join(good);
        let (code, _) = run_lint(&["--root", dir.to_str().unwrap(), path.to_str().unwrap()]);
        assert_eq!(code, 0, "expected exit 0 for {good}");
    }
}

#[test]
fn json_report_is_machine_readable() {
    let dir = fixtures_dir();
    let path = dir.join("suppressed_ok.rs");
    let (code, stdout) = run_lint(&[
        "--json",
        "--root",
        dir.to_str().unwrap(),
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"findings\""), "missing findings array");
    assert!(
        stdout.contains("\"unsuppressed\": 0"),
        "bad summary: {stdout}"
    );
    assert!(
        stdout.contains("\"suppressed\": 2"),
        "bad summary: {stdout}"
    );
    assert!(stdout.contains("\"reason\""), "reasons must be exported");
}
