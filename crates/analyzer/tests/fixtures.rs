//! Each fixture under `fixtures/` is self-describing: its `//@ expect:`
//! header lists exactly the findings the analyzer must produce for it
//! (`rule` for an unsuppressed finding, `suppressed rule` for a reasoned
//! exemption, empty for a clean file). This pins both directions: every rule
//! fires on its known-bad snippet, and nothing fires where nothing should.

use std::path::PathBuf;
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn expected_findings(source: &str) -> Vec<String> {
    let line = source
        .lines()
        .find(|l| l.starts_with("//@ expect:"))
        .expect("fixture missing //@ expect: header");
    line["//@ expect:".len()..]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn actual_findings(path: &PathBuf) -> Vec<String> {
    let source = std::fs::read_to_string(path).unwrap();
    fedda_analyzer::scan_file(&path.to_string_lossy(), &source)
        .into_iter()
        .map(|f| {
            if f.suppressed {
                format!("suppressed {}", f.rule)
            } else {
                f.rule.to_string()
            }
        })
        .collect()
}

#[test]
fn every_fixture_triggers_exactly_its_expected_rules() {
    let mut checked = 0;
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        let mut expected = expected_findings(&source);
        let mut actual = actual_findings(&path);
        expected.sort();
        actual.sort();
        assert_eq!(
            actual,
            expected,
            "finding mismatch for fixture {}",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 9, "expected >= 9 fixtures, found {checked}");
}

#[test]
fn suppressed_findings_always_carry_their_reason() {
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        for f in fedda_analyzer::scan_file(&path.to_string_lossy(), &source) {
            if f.suppressed {
                assert!(
                    f.reason.as_deref().is_some_and(|r| !r.is_empty()),
                    "suppressed finding without a reason in {}",
                    path.display()
                );
            }
        }
    }
}

fn run_lint(args: &[&str]) -> (i32, String) {
    let (code, stdout, _) = run_lint_full(args);
    (code, stdout)
}

fn run_lint_full(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fedda-lint"))
        .args(args)
        .output()
        .expect("failed to launch fedda-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_bad_fixtures() {
    let dir = fixtures_dir();
    for bad in [
        "hash_collection.rs",
        "wall_clock.rs",
        "panic_path.rs",
        "float_eq.rs",
        "narrowing_cast.rs",
        "missing_reason.rs",
        "unused_allow.rs",
    ] {
        let path = dir.join(bad);
        let (code, _) = run_lint(&["--root", dir.to_str().unwrap(), path.to_str().unwrap()]);
        assert_eq!(code, 1, "expected exit 1 for {bad}");
    }
}

#[test]
fn binary_exits_zero_on_clean_and_suppressed_fixtures() {
    let dir = fixtures_dir();
    for good in ["clean.rs", "suppressed_ok.rs"] {
        let path = dir.join(good);
        let (code, _) = run_lint(&["--root", dir.to_str().unwrap(), path.to_str().unwrap()]);
        assert_eq!(code, 0, "expected exit 0 for {good}");
    }
}

/// Count `error[rule]` lines in a human-readable report.
fn count_rule(stdout: &str, rule: &str) -> usize {
    stdout
        .lines()
        .filter(|l| l.contains(&format!("error[{rule}]")))
        .count()
}

#[test]
fn tweak_collision_fixture_pins_exactly_two_findings() {
    let root = fixtures_dir().join("cross").join("tweak_collision");
    let (code, stdout) = run_lint(&["--root", root.to_str().unwrap()]);
    assert_eq!(code, 1, "collision fixture must fail the build:\n{stdout}");
    assert_eq!(count_rule(&stdout, "rng-stream"), 2, "report:\n{stdout}");
    assert!(stdout.contains("2 finding(s), 0 suppressed"), "{stdout}");
    // Anchored at both call sites, not just one side of the collision.
    assert!(stdout.contains("crates/fl/src/alpha.rs:5"), "{stdout}");
    assert!(stdout.contains("crates/fl/src/beta.rs:5"), "{stdout}");
}

#[test]
fn protocol_drift_fixture_pins_one_finding_per_missing_edge() {
    let root = fixtures_dir().join("cross").join("protocol_drift");
    let (code, stdout) = run_lint(&["--root", root.to_str().unwrap()]);
    assert_eq!(code, 1, "drift fixture must fail the build:\n{stdout}");
    // OrphanProtocol: factory + sync pin + async pin + chaos sweep.
    assert_eq!(count_rule(&stdout, "protocol-factory"), 1, "{stdout}");
    assert_eq!(count_rule(&stdout, "protocol-pins"), 2, "{stdout}");
    // Chaos gap + ghost parse arm + zombie README row.
    assert_eq!(count_rule(&stdout, "protocol-zoo"), 3, "{stdout}");
    assert!(stdout.contains("6 finding(s), 0 suppressed"), "{stdout}");
    assert!(stdout.contains("`ghost`"), "{stdout}");
    assert!(stdout.contains("README.md:9"), "{stdout}");
}

#[test]
fn ratchet_fails_when_a_rule_count_rises_above_baseline() {
    let root = fixtures_dir().join("cross").join("tweak_collision");
    let dir = std::env::temp_dir().join(format!("fedda_lint_ratchet_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Write the true baseline: two rng-stream findings.
    let baseline = dir.join("baseline.json");
    let (_, _, stderr) = run_lint_full(&[
        "--root",
        root.to_str().unwrap(),
        "--ratchet-write",
        baseline.to_str().unwrap(),
    ]);
    assert!(stderr.contains("wrote baseline"), "{stderr}");
    let written = std::fs::read_to_string(&baseline).unwrap();
    assert!(written.contains("\"rng-stream\": 2"), "{written}");

    // Against the true baseline the ratchet stays silent.
    let (_, _, stderr) = run_lint_full(&[
        "--root",
        root.to_str().unwrap(),
        "--ratchet",
        baseline.to_str().unwrap(),
    ]);
    assert!(!stderr.contains("ratchet:"), "{stderr}");

    // Doctor the baseline below reality: the ratchet must trip.
    let doctored = dir.join("doctored.json");
    std::fs::write(
        &doctored,
        "{\n  \"version\": 1,\n  \"counts\": {\n    \"rng-stream\": 1\n  }\n}\n",
    )
    .unwrap();
    let (code, _, stderr) = run_lint_full(&[
        "--root",
        root.to_str().unwrap(),
        "--ratchet",
        doctored.to_str().unwrap(),
    ]);
    assert_eq!(code, 1);
    assert!(
        stderr.contains("ratchet:") && stderr.contains("rng-stream"),
        "{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fix_suppressions_removes_only_unused_directives() {
    // A private mini-workspace so the fix can rewrite files freely.
    let dir = std::env::temp_dir().join(format!("fedda_lint_fix_{}", std::process::id()));
    let src = dir.join("crates/fl/src");
    std::fs::create_dir_all(&src).unwrap();
    let file = src.join("lib.rs");
    std::fs::write(
        &file,
        "pub fn f(x: u64) -> u32 {\n\
         // fedda-lint: allow(narrowing-cast, reason = \"bounded by caller\")\n\
         let y = x as u32;\n\
         // fedda-lint: allow(wall-clock, reason = \"stale: nothing here ticks\")\n\
         let z = y + 1;\n\
         z // fedda-lint: allow(float-eq, reason = \"stale trailing directive\")\n\
         }\n",
    )
    .unwrap();

    let (code, _, stderr) = run_lint_full(&["--root", dir.to_str().unwrap(), "--fix-suppressions"]);
    assert!(stderr.contains("removed unused suppression"), "{stderr}");
    let fixed = std::fs::read_to_string(&file).unwrap();
    assert!(
        fixed.contains("allow(narrowing-cast"),
        "used directive must survive:\n{fixed}"
    );
    assert!(!fixed.contains("allow(wall-clock"), "{fixed}");
    assert!(!fixed.contains("allow(float-eq"), "{fixed}");
    assert!(
        fixed.contains("z\n"),
        "code before a trailing directive must survive:\n{fixed}"
    );
    // After the fix the tree is clean, so the re-analysis exits 0.
    assert_eq!(code, 0, "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_report_is_machine_readable() {
    let dir = fixtures_dir();
    let path = dir.join("suppressed_ok.rs");
    let (code, stdout) = run_lint(&[
        "--json",
        "--root",
        dir.to_str().unwrap(),
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"findings\""), "missing findings array");
    assert!(
        stdout.contains("\"unsuppressed\": 0"),
        "bad summary: {stdout}"
    );
    assert!(
        stdout.contains("\"suppressed\": 2"),
        "bad summary: {stdout}"
    );
    assert!(stdout.contains("\"reason\""), "reasons must be exported");
}
