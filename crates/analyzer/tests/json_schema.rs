//! Contract test for `fedda-lint --json`: CI uploads the report as an
//! artifact and the ratchet baseline is parsed by the lint binary itself,
//! so the shape is a public interface. The hand-rolled writer must emit
//! JSON an independent parser accepts, with the pinned field set.

use serde_json::Value;
use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn lint_json(args: &[&str]) -> Value {
    let out = Command::new(env!("CARGO_BIN_EXE_fedda-lint"))
        .args(args)
        .output()
        .expect("failed to launch fedda-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("invalid JSON ({e:?}):\n{stdout}"))
}

#[test]
fn workspace_json_report_matches_the_schema() {
    let root = workspace_root();
    let v = lint_json(&["--json", "--root", root.to_str().unwrap()]);

    let findings = v
        .get("findings")
        .and_then(|f| f.as_array())
        .expect("findings array");
    for f in findings {
        assert!(f.get("file").and_then(Value::as_str).is_some(), "{f:?}");
        assert!(f.get("line").and_then(Value::as_u64).is_some(), "{f:?}");
        assert!(f.get("col").and_then(Value::as_u64).is_some(), "{f:?}");
        let rule = f.get("rule").and_then(Value::as_str).expect("rule");
        assert!(
            fedda_analyzer::rules::RULE_IDS.contains(&rule),
            "unknown rule id {rule}"
        );
        assert!(f.get("message").and_then(Value::as_str).is_some(), "{f:?}");
        let suppressed = f
            .get("suppressed")
            .and_then(Value::as_bool)
            .expect("suppressed flag");
        // `reason` is present exactly on suppressed findings.
        assert_eq!(f.get("reason").is_some(), suppressed, "{f:?}");
    }

    let summary = v.get("summary").expect("summary object");
    let scanned = summary
        .get("files_scanned")
        .and_then(Value::as_u64)
        .expect("files_scanned");
    assert!(scanned > 30, "suspiciously few files: {scanned}");
    let unsuppressed = summary
        .get("unsuppressed")
        .and_then(Value::as_u64)
        .expect("unsuppressed");
    let suppressed = summary
        .get("suppressed")
        .and_then(Value::as_u64)
        .expect("suppressed");
    assert_eq!(unsuppressed + suppressed, findings.len() as u64);
}

#[test]
fn committed_baseline_parses_and_matches_the_live_tree() {
    // The committed ratchet baseline must stay in sync with reality:
    // a PR that suppresses a new finding without regenerating
    // `lint-baseline.json` trips the ratchet in CI, and one that fixes
    // findings should lower the baseline (the ratchet only stops rises,
    // this test stops staleness in both directions).
    let root = workspace_root();
    let text =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("lint-baseline.json");
    let v: Value = serde_json::from_str(&text).expect("baseline is valid JSON");
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));

    let report = fedda_analyzer::analyze_workspace(&root).expect("scan failed");
    let live = fedda_analyzer::ratchet::Baseline::from_findings(&report.findings);
    let committed =
        fedda_analyzer::ratchet::Baseline::parse(&text).expect("baseline parses with own parser");
    assert_eq!(
        committed.counts, live.counts,
        "lint-baseline.json is stale — regenerate with \
         `cargo lint --ratchet-write lint-baseline.json`"
    );
}
