//! Tier-1 gate: the live workspace must carry ZERO unsuppressed findings,
//! and every exemption in force must state its reason. Adding a HashMap to
//! a deterministic crate, a bare unwrap to library code, or a reasonless
//! allow-directive anywhere fails this test.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn live_workspace_has_zero_unsuppressed_findings() {
    let report = fedda_analyzer::analyze_workspace(&workspace_root()).expect("scan failed");
    assert!(
        report.files_scanned > 30,
        "suspiciously few files scanned ({}) — did the crate layout move?",
        report.files_scanned
    );
    let offenders: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}:{}:{} [{}] {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        offenders.is_empty(),
        "fedda-lint found {} unsuppressed finding(s):\n{}",
        offenders.len(),
        offenders.join("\n")
    );
}

#[test]
fn every_exemption_in_force_carries_a_reason() {
    let report = fedda_analyzer::analyze_workspace(&workspace_root()).expect("scan failed");
    let suppressed: Vec<_> = report.findings.iter().filter(|f| f.suppressed).collect();
    assert!(
        !suppressed.is_empty(),
        "expected at least one reasoned exemption (driver.rs wall-clock telemetry)"
    );
    for f in &suppressed {
        assert!(
            f.reason.as_deref().is_some_and(|r| r.len() >= 10),
            "exemption at {}:{} has no substantive reason",
            f.file,
            f.line
        );
    }
    // The one legitimate wall-clock site must be the round-timing telemetry.
    assert!(
        suppressed
            .iter()
            .any(|f| f.rule == "wall-clock" && f.file.ends_with("fl/src/driver.rs")),
        "driver.rs round-timing exemption disappeared — did the telemetry move?"
    );
}
