//! Tier-1 gate: the live workspace must carry ZERO unsuppressed findings,
//! and every exemption in force must state its reason. Adding a HashMap to
//! a deterministic crate, a bare unwrap to library code, or a reasonless
//! allow-directive anywhere fails this test.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn live_workspace_has_zero_unsuppressed_findings() {
    let report = fedda_analyzer::analyze_workspace(&workspace_root()).expect("scan failed");
    assert!(
        report.files_scanned > 30,
        "suspiciously few files scanned ({}) — did the crate layout move?",
        report.files_scanned
    );
    let offenders: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}:{}:{} [{}] {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        offenders.is_empty(),
        "fedda-lint found {} unsuppressed finding(s):\n{}",
        offenders.len(),
        offenders.join("\n")
    );
}

#[test]
fn every_exemption_in_force_carries_a_reason() {
    let report = fedda_analyzer::analyze_workspace(&workspace_root()).expect("scan failed");
    let suppressed: Vec<_> = report.findings.iter().filter(|f| f.suppressed).collect();
    assert!(
        !suppressed.is_empty(),
        "expected at least one reasoned exemption (driver.rs wall-clock telemetry)"
    );
    for f in &suppressed {
        assert!(
            f.reason.as_deref().is_some_and(|r| r.len() >= 10),
            "exemption at {}:{} has no substantive reason",
            f.file,
            f.line
        );
    }
    // The one legitimate wall-clock site must be the round-timing telemetry.
    assert!(
        suppressed
            .iter()
            .any(|f| f.rule == "wall-clock" && f.file.ends_with("fl/src/driver.rs")),
        "driver.rs round-timing exemption disappeared — did the telemetry move?"
    );
}

#[test]
fn cross_file_rules_run_on_the_live_workspace() {
    // The cross-file families must actually execute against the real tree
    // (a broken index would silently pass the zero-findings gate): the
    // Global baseline's two documented drift exemptions are the sentinel.
    let report = fedda_analyzer::analyze_workspace(&workspace_root()).expect("scan failed");
    let global_exemptions: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.suppressed && f.file.ends_with("fl/src/baselines.rs"))
        .map(|f| f.rule)
        .collect();
    assert!(
        global_exemptions.contains(&"protocol-pins") && global_exemptions.contains(&"protocol-zoo"),
        "GlobalProtocol's reasoned async-pin/chaos exemptions disappeared — \
         either the cross-file index broke or Global grew real coverage \
         (then delete this sentinel and the directives): {global_exemptions:?}"
    );
    // And no unsuppressed cross-family finding may exist (subset of the
    // zero-findings gate, but phrased per family for a sharper message).
    for rule in [
        "rng-stream",
        "protocol-factory",
        "protocol-pins",
        "protocol-zoo",
    ] {
        let hits: Vec<String> = report
            .unsuppressed()
            .filter(|f| f.rule == rule)
            .map(|f| format!("{}:{}", f.file, f.line))
            .collect();
        assert!(hits.is_empty(), "live {rule} findings: {hits:?}");
    }
}
