//! Property-based tests for metric invariants.

use fedda_metrics::{mrr, roc_auc, CurveRecorder, MeanStd, RankQuery};
use proptest::prelude::*;

proptest! {
    #[test]
    fn auc_is_in_unit_interval(
        scores in prop::collection::vec(-100.0f32..100.0, 1..64),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let labels: Vec<bool> = scores.iter().map(|_| rng.gen()).collect();
        let auc = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn auc_is_invariant_to_monotone_transform(
        scores in prop::collection::vec(-10.0f32..10.0, 2..40),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let labels: Vec<bool> = scores.iter().map(|_| rng.gen()).collect();
        let transformed: Vec<f32> = scores.iter().map(|&s| (s / 5.0).tanh() * 3.0 + 7.0).collect();
        let a = roc_auc(&scores, &labels);
        let b = roc_auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn auc_of_flipped_labels_is_complement(
        scores in prop::collection::vec(-10.0f32..10.0, 2..40),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let labels: Vec<bool> = scores.iter().map(|_| rng.gen()).collect();
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let flipped: Vec<bool> = labels.iter().map(|&l| !l).collect();
        let a = roc_auc(&scores, &labels);
        let b = roc_auc(&scores, &flipped);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reciprocal_rank_bounds(
        positive in -10.0f32..10.0,
        negatives in prop::collection::vec(-10.0f32..10.0, 0..32),
    ) {
        let k = negatives.len();
        let q = RankQuery { positive, negatives };
        let rr = q.reciprocal_rank();
        prop_assert!(rr <= 1.0 + 1e-12);
        prop_assert!(rr >= 1.0 / (1.0 + k as f64) - 1e-12);
    }

    #[test]
    fn mrr_monotone_in_positive_score(
        negatives in prop::collection::vec(-10.0f32..10.0, 1..16),
    ) {
        let weak = RankQuery { positive: -20.0, negatives: negatives.clone() };
        let strong = RankQuery { positive: 20.0, negatives };
        prop_assert!(strong.reciprocal_rank() >= weak.reciprocal_rank());
        prop_assert!((strong.reciprocal_rank() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_std_of_constant_vector_has_zero_std(x in -100.0f64..100.0, n in 1usize..20) {
        let s = MeanStd::of(&vec![x; n]);
        prop_assert!((s.mean - x).abs() < 1e-9);
        prop_assert!(s.std.abs() < 1e-9);
    }

    #[test]
    fn envelope_bounds_mean(
        curves in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 5),
            1..6,
        ),
    ) {
        let mut rec = CurveRecorder::new();
        for (run, c) in curves.iter().enumerate() {
            for (round, &v) in c.iter().enumerate() {
                rec.record(run, round, v);
            }
        }
        let mean = rec.mean_curve();
        let max = rec.max_curve();
        let min = rec.min_curve();
        for t in 0..rec.num_rounds() {
            prop_assert!(min[t] <= mean[t] + 1e-12);
            prop_assert!(mean[t] <= max[t] + 1e-12);
        }
        let _ = mrr(&[]);
    }
}
