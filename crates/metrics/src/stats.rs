//! Aggregation of repeated runs: mean ± std summaries (Table 2's format)
//! and per-round curve recording with best/worst envelopes (Figures 2 & 5).

/// Mean and sample standard deviation of a set of run results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 when fewer than two samples).
    pub std: f64,
    /// Number of samples aggregated.
    pub n: usize,
}

impl MeanStd {
    /// Aggregate a slice of values.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        Self { mean, std, n }
    }

    /// Render as the paper's `0.5480 ± 0.0081` format.
    pub fn fmt_pm(&self) -> String {
        format!("{:.4} ± {:.4}", self.mean, self.std)
    }
}

/// Per-round metric curves across repeated runs.
///
/// `record(run, round, value)` accepts rounds in order within each run;
/// the accessors produce the curves the paper plots: the per-round mean
/// (Fig. 5a/5b) and the per-round max/min envelope over runs (Fig. 2,
/// Fig. 5c/5d).
#[derive(Clone, Debug, Default)]
pub struct CurveRecorder {
    /// `runs[r][t]` = metric of run `r` at round `t`.
    runs: Vec<Vec<f64>>,
}

impl CurveRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a value for `(run, round)`. Runs and rounds must arrive in
    /// order (round `t` appended after `t-1`).
    pub fn record(&mut self, run: usize, round: usize, value: f64) {
        while self.runs.len() <= run {
            self.runs.push(Vec::new());
        }
        assert_eq!(
            self.runs[run].len(),
            round,
            "rounds must be recorded in order"
        );
        self.runs[run].push(value);
    }

    /// Number of runs recorded.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of complete rounds (minimum across runs; 0 when empty).
    pub fn num_rounds(&self) -> usize {
        self.runs.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// One run's raw curve.
    pub fn run(&self, run: usize) -> &[f64] {
        &self.runs[run]
    }

    /// Per-round mean across runs.
    pub fn mean_curve(&self) -> Vec<f64> {
        let t = self.num_rounds();
        (0..t)
            .map(|i| self.runs.iter().map(|r| r[i]).sum::<f64>() / self.runs.len() as f64)
            .collect()
    }

    /// Per-round max across runs ("best model" solid lines).
    pub fn max_curve(&self) -> Vec<f64> {
        let t = self.num_rounds();
        (0..t)
            .map(|i| {
                self.runs
                    .iter()
                    .map(|r| r[i])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Per-round min across runs ("worst model" dotted lines).
    pub fn min_curve(&self) -> Vec<f64> {
        let t = self.num_rounds();
        (0..t)
            .map(|i| self.runs.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min))
            .collect()
    }

    /// Final-round values of every run (feeds [`MeanStd::of`]).
    pub fn final_values(&self) -> Vec<f64> {
        self.runs.iter().filter_map(|r| r.last().copied()).collect()
    }

    /// Best value each run ever achieved (the paper reports models by their
    /// best test score along training).
    pub fn best_values(&self) -> Vec<f64> {
        self.runs
            .iter()
            .filter_map(|r| r.iter().copied().reduce(f64::max))
            .collect()
    }

    /// First round at which the mean curve reaches `threshold`, if any —
    /// used by the convergence analysis (RQ3: "FedDA reaches 0.537 within
    /// 20 rounds where FedAvg needs 40").
    pub fn rounds_to_reach(&self, threshold: f64) -> Option<usize> {
        self.mean_curve().iter().position(|&v| v >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let s = MeanStd::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert_eq!(s.fmt_pm(), "2.0000 ± 1.0000");
    }

    #[test]
    fn mean_std_degenerate_cases() {
        assert_eq!(MeanStd::of(&[]).n, 0);
        let one = MeanStd::of(&[5.0]);
        assert_eq!(one.std, 0.0);
        assert_eq!(one.mean, 5.0);
    }

    #[test]
    fn curves_and_envelopes() {
        let mut rec = CurveRecorder::new();
        for (run, curve) in [[0.1, 0.5, 0.7], [0.3, 0.4, 0.9]].iter().enumerate() {
            for (round, &v) in curve.iter().enumerate() {
                rec.record(run, round, v);
            }
        }
        assert_eq!(rec.num_runs(), 2);
        assert_eq!(rec.num_rounds(), 3);
        assert_eq!(rec.mean_curve(), vec![0.2, 0.45, 0.8]);
        assert_eq!(rec.max_curve(), vec![0.3, 0.5, 0.9]);
        assert_eq!(rec.min_curve(), vec![0.1, 0.4, 0.7]);
        assert_eq!(rec.final_values(), vec![0.7, 0.9]);
        assert_eq!(rec.best_values(), vec![0.7, 0.9]);
        assert_eq!(rec.rounds_to_reach(0.45), Some(1));
        assert_eq!(rec.rounds_to_reach(0.95), None);
    }

    #[test]
    #[should_panic(expected = "rounds must be recorded in order")]
    fn out_of_order_rounds_rejected() {
        let mut rec = CurveRecorder::new();
        rec.record(0, 1, 0.5);
    }
}
