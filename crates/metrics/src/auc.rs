//! ROC-AUC for binary link prediction.
//!
//! Exact computation via the rank-sum (Mann–Whitney U) formulation with
//! midrank tie handling: `AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos * n_neg)`
//! where `R_pos` is the sum of the positive examples' midranks.

/// Exact ROC-AUC of scores against boolean labels.
///
/// Returns 0.5 when either class is empty (no ranking information), which
/// keeps round-level metric curves well-defined on degenerate batches.
///
/// ```
/// use fedda_metrics::roc_auc;
/// let auc = roc_auc(&[0.1, 0.9, 0.8, 0.3], &[false, true, true, false]);
/// assert_eq!(auc, 1.0);
/// ```
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "roc_auc: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices by score ascending; assign midranks to tie groups.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // ranks are 1-based: group spans ranks i+1 ..= j+1
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let auc = (rank_sum_pos - (n_pos as f64) * (n_pos as f64 + 1.0) / 2.0)
        / ((n_pos as f64) * (n_neg as f64));
    auc.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_is_zero() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert!(roc_auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn interleaved_ranking_counts_pairs() {
        let scores = [0.1, 0.2, 0.3, 0.4];
        let labels = [true, false, true, false];
        // positive-negative pairs won: only (0.3, 0.2) of the four
        assert!((roc_auc(&scores, &labels) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_tied_scores_give_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        assert_eq!(roc_auc(&[0.3, 0.4], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.3, 0.4], &[false, false]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn matches_brute_force_pair_counting() {
        let scores = [0.3f32, 0.7, 0.5, 0.5, 0.9, 0.1, 0.6];
        let labels = [false, true, true, false, true, false, false];
        // brute force: P(score_pos > score_neg) + 0.5 P(tie)
        let mut wins = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if labels[i] && !labels[j] {
                    total += 1.0;
                    if scores[i] > scores[j] {
                        wins += 1.0;
                    } else if scores[i] == scores[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        let expected = wins / total;
        assert!((roc_auc(&scores, &labels) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        roc_auc(&[0.1], &[true, false]);
    }
}
