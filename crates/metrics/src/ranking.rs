//! Additional ranking metrics beyond the paper's ROC-AUC / MRR: Hits@K and
//! average precision, plus per-group (e.g. per-edge-type) breakdowns used
//! by the fairness analysis.

use crate::mrr::RankQuery;

/// Fraction of queries whose positive ranks within the top `k`
/// (ties counted optimistically at the midrank, consistent with
/// [`RankQuery::reciprocal_rank`]).
pub fn hits_at_k(queries: &[RankQuery], k: usize) -> f64 {
    assert!(k > 0, "hits_at_k: k must be positive");
    if queries.is_empty() {
        return 0.0;
    }
    let hits = queries
        .iter()
        .filter(|q| {
            let above = q.negatives.iter().filter(|&&n| n > q.positive).count() as f64;
            let ties = q.negatives.iter().filter(|&&n| n == q.positive).count() as f64;
            (1.0 + above + ties / 2.0) <= k as f64
        })
        .count();
    hits as f64 / queries.len() as f64
}

/// Average precision of a scored binary ranking (area under the
/// precision–recall curve by the step-wise convention).
///
/// Returns 0 when there are no positives.
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "average_precision: length mismatch"
    );
    let n_pos = labels.iter().filter(|&&l| l).count();
    if n_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // Descending by score; stable so equal scores keep input order.
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut hits = 0usize;
    let mut sum_prec = 0.0f64;
    for (rank0, &i) in order.iter().enumerate() {
        if labels[i] {
            hits += 1;
            sum_prec += hits as f64 / (rank0 + 1) as f64;
        }
    }
    sum_prec / n_pos as f64
}

/// A metric value broken down by group (e.g. edge type), with the overall
/// dispersion used as a fairness measure: a federation that only serves the
/// majority edge types has a high gap.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupedMetric {
    /// `(group label, value, support)` triples.
    pub groups: Vec<(String, f64, usize)>,
}

impl GroupedMetric {
    /// Build from labelled values.
    pub fn new(groups: Vec<(String, f64, usize)>) -> Self {
        Self { groups }
    }

    /// Support-weighted mean over groups.
    pub fn weighted_mean(&self) -> f64 {
        let total: usize = self.groups.iter().map(|(_, _, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        self.groups
            .iter()
            .map(|(_, v, n)| v * *n as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Unweighted (macro) mean over non-empty groups.
    pub fn macro_mean(&self) -> f64 {
        let non_empty: Vec<f64> = self
            .groups
            .iter()
            .filter(|(_, _, n)| *n > 0)
            .map(|(_, v, _)| *v)
            .collect();
        if non_empty.is_empty() {
            return 0.0;
        }
        non_empty.iter().sum::<f64>() / non_empty.len() as f64
    }

    /// Max − min across non-empty groups — the fairness gap.
    pub fn gap(&self) -> f64 {
        let vals: Vec<f64> = self
            .groups
            .iter()
            .filter(|(_, _, n)| *n > 0)
            .map(|(_, v, _)| *v)
            .collect();
        match (
            vals.iter().cloned().reduce(f64::max),
            vals.iter().cloned().reduce(f64::min),
        ) {
            (Some(max), Some(min)) => max - min,
            _ => 0.0,
        }
    }

    /// The worst-performing non-empty group.
    pub fn worst(&self) -> Option<&(String, f64, usize)> {
        self.groups
            .iter()
            .filter(|(_, _, n)| *n > 0)
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_at_k_counts_top_ranks() {
        let queries = vec![
            RankQuery {
                positive: 0.9,
                negatives: vec![0.1, 0.2],
            }, // rank 1
            RankQuery {
                positive: 0.15,
                negatives: vec![0.3, 0.2],
            }, // rank 3
        ];
        assert!((hits_at_k(&queries, 1) - 0.5).abs() < 1e-12);
        assert!((hits_at_k(&queries, 3) - 1.0).abs() < 1e-12);
        assert_eq!(hits_at_k(&[], 5), 0.0);
    }

    #[test]
    fn hits_at_k_midrank_ties() {
        // positive ties with both negatives: rank = 1 + 0 + 1 = 2
        let q = vec![RankQuery {
            positive: 0.5,
            negatives: vec![0.5, 0.5],
        }];
        assert_eq!(hits_at_k(&q, 1), 0.0);
        assert_eq!(hits_at_k(&q, 2), 1.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        let perfect = average_precision(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
        assert!((perfect - 1.0).abs() < 1e-12);
        let worst = average_precision(&[0.9, 0.8, 0.2, 0.1], &[false, false, true, true]);
        // positives at ranks 3 and 4: (1/3 + 2/4) / 2
        assert!((worst - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        assert_eq!(average_precision(&[0.5], &[false]), 0.0);
    }

    #[test]
    fn grouped_metric_means_and_gap() {
        let g = GroupedMetric::new(vec![
            ("co-view".into(), 0.9, 90),
            ("co-purchase".into(), 0.5, 10),
            ("empty".into(), 0.0, 0),
        ]);
        assert!((g.weighted_mean() - 0.86).abs() < 1e-12);
        assert!((g.macro_mean() - 0.7).abs() < 1e-12);
        assert!((g.gap() - 0.4).abs() < 1e-12);
        assert_eq!(g.worst().unwrap().0, "co-purchase");
    }

    #[test]
    fn grouped_metric_empty_is_zero() {
        let g = GroupedMetric::default();
        assert_eq!(g.weighted_mean(), 0.0);
        assert_eq!(g.macro_mean(), 0.0);
        assert_eq!(g.gap(), 0.0);
        assert!(g.worst().is_none());
    }
}
