//! # fedda-metrics
//!
//! Evaluation metrics for federated link prediction on heterographs:
//!
//! * [`roc_auc`] — exact, tie-aware ROC-AUC (Mann–Whitney formulation);
//! * [`mrr`] / [`RankQuery`] — Mean Reciprocal Rank against sampled
//!   negatives;
//! * [`hits_at_k`] / [`average_precision`] — additional ranking metrics;
//! * [`GroupedMetric`] — per-edge-type breakdowns with fairness gaps;
//! * [`MeanStd`] — mean ± std aggregation over repeated runs (Table 2);
//! * [`CurveRecorder`] — per-round curves with best/worst envelopes
//!   (Figures 2 and 5) and rounds-to-threshold queries (RQ3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod auc;
mod classify;
mod mrr;
mod ranking;
mod stats;

pub use auc::roc_auc;
pub use classify::{accuracy, macro_f1, majority_baseline};
pub use mrr::{mrr, RankQuery};
pub use ranking::{average_precision, hits_at_k, GroupedMetric};
pub use stats::{CurveRecorder, MeanStd};
