//! Mean Reciprocal Rank for link prediction.
//!
//! Each query consists of one positive score and a list of negative scores
//! (the corrupted candidates for the same source node and edge type). The
//! positive's rank is `1 + #negatives strictly above it + half the ties`
//! (the optimistic/pessimistic midpoint convention).

/// One ranking query: a positive example scored against its negatives.
#[derive(Clone, Debug)]
pub struct RankQuery {
    /// Score of the true edge.
    pub positive: f32,
    /// Scores of the corrupted candidates.
    pub negatives: Vec<f32>,
}

impl RankQuery {
    /// Reciprocal rank of the positive within this query.
    pub fn reciprocal_rank(&self) -> f64 {
        let above = self
            .negatives
            .iter()
            .filter(|&&n| n > self.positive)
            .count() as f64;
        let ties = self
            .negatives
            .iter()
            .filter(|&&n| n == self.positive)
            .count() as f64;
        1.0 / (1.0 + above + ties / 2.0)
    }
}

/// Mean reciprocal rank over a set of queries. Returns 0 for an empty set.
///
/// ```
/// use fedda_metrics::{mrr, RankQuery};
/// let queries = [
///     RankQuery { positive: 2.0, negatives: vec![1.0, 0.0] }, // rank 1
///     RankQuery { positive: 0.5, negatives: vec![1.0, 0.0] }, // rank 2
/// ];
/// assert!((mrr(&queries) - 0.75).abs() < 1e-12);
/// ```
pub fn mrr(queries: &[RankQuery]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries.iter().map(RankQuery::reciprocal_rank).sum::<f64>() / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_ranked_positive_scores_one() {
        let q = RankQuery {
            positive: 0.9,
            negatives: vec![0.1, 0.2, 0.3],
        };
        assert!((q.reciprocal_rank() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn positive_below_k_negatives() {
        let q = RankQuery {
            positive: 0.5,
            negatives: vec![0.9, 0.8, 0.1],
        };
        assert!((q.reciprocal_rank() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_use_midrank() {
        let q = RankQuery {
            positive: 0.5,
            negatives: vec![0.5, 0.5],
        };
        // rank = 1 + 0 + 1 = 2
        assert!((q.reciprocal_rank() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_negatives_is_rank_one() {
        let q = RankQuery {
            positive: 0.0,
            negatives: vec![],
        };
        assert!((q.reciprocal_rank() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_averages_queries() {
        let qs = vec![
            RankQuery {
                positive: 1.0,
                negatives: vec![0.0],
            }, // rr 1
            RankQuery {
                positive: 0.0,
                negatives: vec![1.0],
            }, // rr 1/2
        ];
        assert!((mrr(&qs) - 0.75).abs() < 1e-12);
        assert_eq!(mrr(&[]), 0.0);
    }
}
