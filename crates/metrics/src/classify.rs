//! Multi-class classification metrics (node-classification extension).

/// Fraction of predictions equal to the truth. Returns 0 on empty input.
pub fn accuracy(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "accuracy: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Macro-averaged F1 over `num_classes` classes. Classes absent from both
/// predictions and truth are skipped (their F1 is undefined); returns 0 if
/// every class is absent or the input is empty.
pub fn macro_f1(pred: &[u32], truth: &[u32], num_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "macro_f1: length mismatch");
    if pred.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnc = vec![0usize; num_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        let (p, t) = (p as usize, t as usize);
        assert!(
            p < num_classes && t < num_classes,
            "class index out of range"
        );
        if p == t {
            tp[p] += 1;
        } else {
            fp[p] += 1;
            fnc[t] += 1;
        }
    }
    let mut sum = 0.0;
    let mut counted = 0usize;
    for c in 0..num_classes {
        let support = tp[c] + fp[c] + fnc[c];
        if support == 0 {
            continue;
        }
        let precision = if tp[c] + fp[c] > 0 {
            tp[c] as f64 / (tp[c] + fp[c]) as f64
        } else {
            0.0
        };
        let recall = if tp[c] + fnc[c] > 0 {
            tp[c] as f64 / (tp[c] + fnc[c]) as f64
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        sum += f1;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

/// Accuracy of always predicting the most frequent class — the baseline a
/// trained classifier must beat.
pub fn majority_baseline(truth: &[u32], num_classes: usize) -> f64 {
    if truth.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut counts = vec![0usize; num_classes];
    for &t in truth {
        counts[t as usize] += 1;
    }
    counts.iter().max().copied().unwrap_or(0) as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_is_one() {
        assert!((macro_f1(&[0, 1, 2, 1], &[0, 1, 2, 1], 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_hand_computed() {
        // truth: [0,0,1,1]; pred: [0,1,1,1]
        // class 0: tp=1 fp=0 fn=1 → P=1, R=0.5, F1=2/3
        // class 1: tp=2 fp=1 fn=0 → P=2/3, R=1, F1=0.8
        let f1 = macro_f1(&[0, 1, 1, 1], &[0, 0, 1, 1], 2);
        assert!((f1 - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_skips_absent_classes() {
        // class 2 never appears; macro over classes 0 and 1 only
        let f1 = macro_f1(&[0, 1], &[0, 1], 3);
        assert!((f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn majority_baseline_counts_mode() {
        assert_eq!(majority_baseline(&[0, 0, 0, 1], 2), 0.75);
        assert_eq!(majority_baseline(&[], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "class index out of range")]
    fn macro_f1_rejects_out_of_range() {
        macro_f1(&[5], &[0], 2);
    }
}
