//! FedDyn (Acar et al., ICLR 2021): dynamic regularization for federated
//! learning.
//!
//! Each selected client `i` minimises the dynamically-regularised local
//! objective
//!
//! ```text
//! L_i(θ) − ⟨∇̂ᵢ, θ⟩ + α/2·‖θ − θ^t‖²
//! ```
//!
//! where `∇̂ᵢ` is the client's accumulated first-order state and `θ^t` is
//! the round's broadcast, so every gradient step gains
//! `−∇̂ᵢ + α·(θ − θ^t)` — delivered through the
//! [`local_regularizer`](FlProtocol::local_regularizer) hook as a
//! [`LocalPenalty`] with `prox_mu = α` and `linear = −∇̂ᵢ`. After local
//! training the client state telescopes, `∇̂ᵢ ← ∇̂ᵢ − α·(θᵢ − θ^t)`, and
//! the server maintains the correction
//!
//! ```text
//! h ← h − (α/M)·Σ_{i∈P} (θᵢ − θ^t),      θ^{t+1} = avg(θᵢ) − h/α
//! ```
//!
//! (`M` = total client count), which at the fixed point cancels the
//! client-drift bias that plain averaging leaves on non-IID data.
//!
//! State lives in [`FedDynProtocol`] (one instance per run, built by
//! [`FedDyn::protocol`]): per-client `∇̂ᵢ` (`M × |θ|` f32), the server `h`
//! (f64, in `ParamSet::flatten` order), and the broadcast stash `θ^t`
//! cloned at selection time. Under faults only *arrived, admitted fresh*
//! reports update `∇̂ᵢ` and `h` — dropped or rejected clients keep their
//! state, and stale straggler arrivals contribute to averaging but not to
//! the correction (their delta is against an older broadcast).

use crate::driver::RoundDriver;
use crate::protocol::{FlProtocol, LocalPenalty, StepOutcome};
use crate::system::{ClientReturn, FlSystem, RunResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// FedDyn hyper-parameters. Build per-run protocol state with
/// [`FedDyn::protocol`].
#[derive(Clone, Debug)]
pub struct FedDyn {
    /// Regularisation strength α (the exemplar implementation's default is
    /// `0.01`; must be strictly positive — the server correction divides
    /// by α).
    pub alpha: f64,
    /// Fraction of clients randomly activated each round.
    pub client_fraction: f64,
}

impl Default for FedDyn {
    fn default() -> Self {
        Self {
            alpha: 0.01,
            client_fraction: 1.0,
        }
    }
}

impl FedDyn {
    /// FedDyn with the given α and full participation.
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha,
            client_fraction: 1.0,
        }
    }

    /// Validate hyper-parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(format!(
                "alpha must be finite and positive, got {}",
                self.alpha
            ));
        }
        if !(self.client_fraction > 0.0 && self.client_fraction <= 1.0) {
            return Err(format!(
                "client_fraction must be in (0,1], got {}",
                self.client_fraction
            ));
        }
        Ok(())
    }

    /// A fresh per-run [`FlProtocol`] state machine for these
    /// hyper-parameters (state is sized in `begin`, so one instance serves
    /// exactly one driver run).
    pub fn protocol(&self) -> FedDynProtocol {
        FedDynProtocol {
            cfg: self.clone(),
            h: Vec::new(),
            prev_grads: Vec::new(),
            broadcast: Vec::new(),
        }
    }

    /// Run `cfg.rounds` rounds through the shared [`RoundDriver`].
    ///
    /// # Panics
    ///
    /// On an invalid configuration (see [`FedDyn::validate`]); use the
    /// driver directly to handle the error.
    pub fn run(&self, system: &mut FlSystem) -> RunResult {
        RoundDriver::new()
            .run(&mut self.protocol(), system)
            // fedda-lint: allow(panic-path, reason = "documented panic in the method contract above; fallible callers use RoundDriver directly")
            .expect("invalid FedDyn configuration")
    }
}

/// One server `h`-state update:
/// `h[k] ← h[k] − (α/m)·delta_sum[k]`, where `delta_sum` is
/// `Σ_{i∈P}(θᵢ − θ^t)` over the round's admitted participants and `m` is
/// the total client count. Pure helper shared with the property tests —
/// applied round after round, `h` telescopes to `−(α/m)·Σ` of every delta
/// ever admitted.
pub fn update_h(h: &mut [f64], delta_sum: &[f64], alpha: f64, num_clients: usize) {
    debug_assert_eq!(h.len(), delta_sum.len());
    let scale = alpha / (num_clients.max(1) as f64);
    for (hk, &d) in h.iter_mut().zip(delta_sum) {
        *hk -= scale * d;
    }
}

/// Per-run FedDyn state machine (see [`FedDyn::protocol`]).
#[derive(Clone, Debug)]
pub struct FedDynProtocol {
    cfg: FedDyn,
    /// Server correction `h`, `ParamSet::flatten` order, f64 for stable
    /// accumulation across rounds.
    h: Vec<f64>,
    /// Per-client first-order state `∇̂ᵢ` (zero-initialised, like the
    /// exemplar's `prev_grads`).
    prev_grads: Vec<Vec<f32>>,
    /// Broadcast parameters `θ^t` stashed at selection time — the anchor
    /// for this round's client deltas.
    broadcast: Vec<f32>,
}

impl FedDynProtocol {
    /// The server correction state (flatten order) — exposed for the chaos
    /// harness's finiteness checks.
    pub fn h_state(&self) -> &[f64] {
        &self.h
    }
}

impl FlProtocol for FedDynProtocol {
    fn name(&self) -> String {
        format!("FedDyn(alpha={})", self.cfg.alpha)
    }

    fn validate(&self) -> Result<(), String> {
        self.cfg.validate()
    }

    fn seed_tweak(&self) -> u64 {
        0xFEDD_1509
    }

    fn begin(&mut self, system: &FlSystem, _rng: &mut StdRng) {
        let n = system.global.num_scalars();
        self.h = vec![0.0; n];
        self.prev_grads = vec![vec![0.0; n]; system.num_clients()];
        self.broadcast = system.global.flatten();
    }

    fn select_clients(&mut self, system: &FlSystem, _round: usize, rng: &mut StdRng) -> Vec<usize> {
        // Stash the anchor before anyone trains: post_aggregate's deltas
        // and the client penalties are all against this broadcast.
        self.broadcast = system.global.flatten();
        let m = system.num_clients();
        let take = ((m as f64) * self.cfg.client_fraction).round().max(1.0) as usize;
        let mut order: Vec<usize> = (0..m).collect();
        order.shuffle(rng);
        let mut active = order[..take.min(m)].to_vec();
        active.sort_unstable();
        active
    }

    fn local_regularizer(
        &mut self,
        _system: &FlSystem,
        client: usize,
        _round: usize,
    ) -> Option<LocalPenalty> {
        // Gradient contribution −∇̂ᵢ + α(θ − θ^t).
        let linear: Vec<f32> = self.prev_grads[client].iter().map(|&g| -g).collect();
        Some(LocalPenalty {
            prox_mu: self.cfg.alpha as f32,
            linear: Some(linear),
        })
    }

    fn build_masks(
        &mut self,
        system: &FlSystem,
        active: &[usize],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<Vec<bool>> {
        system.full_masks(active.len())
    }

    fn post_aggregate(
        &mut self,
        system: &mut FlSystem,
        _active: &[usize],
        returns: &[ClientReturn],
        _round: usize,
        _rng: &mut StdRng,
    ) -> StepOutcome {
        let n = self.h.len();
        let alpha = self.cfg.alpha;
        let mut delta_sum = vec![0.0f64; n];
        for ret in returns {
            let theta = ret.params.flatten();
            debug_assert_eq!(theta.len(), n);
            let state = &mut self.prev_grads[ret.client];
            for k in 0..n {
                let d = f64::from(theta[k]) - f64::from(self.broadcast[k]);
                delta_sum[k] += d;
                // ∇̂ᵢ ← ∇̂ᵢ − α(θᵢ − θ^t): the state absorbs this round's
                // regularised drift.
                state[k] -= (alpha * d) as f32;
            }
        }
        update_h(&mut self.h, &delta_sum, alpha, system.num_clients());
        // θ^{t+1} = avg(θᵢ) − h/α; the average is already in system.global
        // (the driver aggregated before this hook).
        let mut corrected = system.global.flatten();
        for (t, &hk) in corrected.iter_mut().zip(&self.h) {
            *t = (f64::from(*t) - hk / alpha) as f32;
        }
        system.global.load_flat(&corrected);
        StepOutcome::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;

    #[test]
    fn feddyn_trains_and_stays_finite() {
        let mut sys = tiny_system(3, 31);
        let result = FedDyn::new(0.01).run(&mut sys);
        let rounds = sys.config().rounds;
        assert_eq!(result.curve.len(), rounds);
        assert_eq!(
            result.comm.total_uplink_units(),
            rounds * 3 * sys.num_units()
        );
        assert!(result.final_eval.roc_auc > 0.0);
        assert!(!sys.global.has_non_finite());
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut s1 = tiny_system(3, 32);
        let mut s2 = tiny_system(3, 32);
        let r1 = FedDyn::new(0.01).run(&mut s1);
        let r2 = FedDyn::new(0.01).run(&mut s2);
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.roc_auc.to_bits(), b.roc_auc.to_bits());
        }
        assert_eq!(s1.global.flatten(), s2.global.flatten());
    }

    #[test]
    fn h_state_moves_and_stays_finite() {
        let mut sys = tiny_system(2, 33);
        let mut proto = FedDyn::new(0.5).protocol();
        RoundDriver::new()
            .run(&mut proto, &mut sys)
            .expect("valid config");
        assert!(proto.h_state().iter().all(|h| h.is_finite()));
        assert!(
            proto.h_state().iter().any(|&h| h != 0.0),
            "h must move when clients train"
        );
    }

    #[test]
    fn validation_pins_rejection_messages() {
        assert_eq!(
            FedDyn::new(0.0).validate().unwrap_err(),
            "alpha must be finite and positive, got 0"
        );
        assert_eq!(
            FedDyn::new(-1.0).validate().unwrap_err(),
            "alpha must be finite and positive, got -1"
        );
        assert_eq!(
            FedDyn::new(f64::INFINITY).validate().unwrap_err(),
            "alpha must be finite and positive, got inf"
        );
        let bad_fraction = FedDyn {
            alpha: 0.01,
            client_fraction: 1.5,
        };
        assert_eq!(
            bad_fraction.validate().unwrap_err(),
            "client_fraction must be in (0,1], got 1.5"
        );
        assert!(FedDyn::new(0.01).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid FedDyn configuration")]
    fn zero_alpha_rejected_before_round_zero() {
        let mut sys = tiny_system(2, 34);
        let _ = FedDyn::new(0.0).run(&mut sys);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FedDyn::new(0.01).protocol().name(), "FedDyn(alpha=0.01)");
    }
}
