//! Buffered-asynchronous federated execution on the event-driven runtime.
//!
//! [`AsyncDriver`] implements FedBuff-style *buffered asynchronous FL* on
//! top of the same [`runtime`](crate::runtime) primitives the synchronous
//! [`RoundDriver`](crate::RoundDriver) facade uses. The server keeps a
//! monotonically increasing **version** (its aggregation count); every
//! version it dispatches a wave of selected clients and then services
//! report arrivals from the virtual-time event queue until `K` admissible
//! reports have buffered in the bounded [`Mailbox`] — at which point it
//! aggregates (Eq. 6 weight renormalisation over the buffer), advances the
//! version, and dispatches the next wave.
//!
//! Latency is virtual: a healthy or corrupted report arrives one tick
//! after dispatch, a straggler arrives `1 + delay` ticks after dispatch
//! (the delay comes from the fault layer's pre-sampled plan, so the same
//! `FaultConfig` drives both runtimes), and a dropout never arrives.
//! A report that arrives after later aggregations is **stale**: its
//! contribution is discounted by `γ^staleness`, where `staleness` is the
//! number of versions the server advanced since the report was computed.
//! The async runtime applies this γ rule itself — `FaultConfig::staleness`
//! (the sync driver's policy for held straggler reports) is not consulted.
//!
//! Determinism matches the sync facade's contract: selection/mask/
//! post-aggregate RNG draws happen in version order, the event queue is
//! totally ordered by `(tick, schedule sequence)`, client training is a
//! pure function of `(client seed, dispatch version, broadcast)`, and the
//! worker-pool size never changes results. Same seed → bit-identical run,
//! at any `FEDDA_THREADS` and any pool size.
//!
//! Accounting follows the arrival rule the chaos harness pins: downlink is
//! charged at dispatch (the broadcast happened), uplink is charged when a
//! report *arrives* — never for dropouts, and never for reports still in
//! flight when the run ends.

use crate::compress::{decode_arrival, Compressor, Delta, InFlight, UplinkCharge};
use crate::events::{EventSink, RoundEvent};
use crate::faults::{
    corrupt_return, detect_rejection, FaultEffect, FaultKind, FaultObserved, FaultPlan,
};
use crate::protocol::FlProtocol;
use crate::runtime::{Delivery, Mailbox, Scheduler, Tick};
use crate::system::{ActivationSnapshot, ClientReturn, FlSystem, RoundEval, RunResult};
use crate::WeightedReturn;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the buffered-asynchronous aggregation rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsyncConfig {
    /// Aggregate as soon as `K` admissible reports have buffered
    /// (FedBuff's buffer size). The buffer is also flushed — possibly
    /// short, possibly empty — when the event queue starves, so runs
    /// always terminate in exactly `FlConfig::rounds` aggregations.
    pub k: usize,
    /// Staleness discount base: a report computed `s` versions ago joins
    /// the buffer at weight `γ^s` before the Eq. 6 renormalisation.
    /// `1.0` disables discounting.
    pub gamma: f64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self { k: 2, gamma: 0.9 }
    }
}

impl AsyncConfig {
    /// Validate ranges: `k ≥ 1`, `γ ∈ (0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("async k must be at least 1".into());
        }
        if !(self.gamma > 0.0 && self.gamma <= 1.0) {
            return Err(format!("async gamma must be in (0, 1], got {}", self.gamma));
        }
        Ok(())
    }
}

/// Which driver executes a run (see `ExperimentConfig` in `fedda-core` and
/// the CLI's `--runtime` flag).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum RuntimeMode {
    /// The synchronous lockstep facade ([`RoundDriver`](crate::RoundDriver)).
    #[default]
    Sync,
    /// Buffered-asynchronous aggregation ([`AsyncDriver`]).
    Async(AsyncConfig),
}

/// Per-version accumulators, reset after every aggregation.
struct VersionState {
    /// Clients dispatched at this version (the wave).
    wave: Vec<usize>,
    /// Mean mask density of the wave.
    mask_density: f64,
    /// Structured fault/staleness records observed since the last
    /// aggregation.
    observations: Vec<FaultObserved>,
    /// Ledger charges of the reports that arrived since the last
    /// aggregation (uplink is charged at arrival, at the compressed size).
    charges: Vec<UplinkCharge>,
    /// Wall-clock start of the version (telemetry only).
    started: Instant,
}

impl VersionState {
    fn new() -> Self {
        Self {
            wave: Vec::new(),
            mask_density: 0.0,
            observations: Vec::new(),
            charges: Vec::new(),
            // fedda-lint: allow(wall-clock, reason = "version wall-time telemetry only; never feeds selection, masking, aggregation or any logged curve")
            started: Instant::now(),
        }
    }
}

/// Executes an [`FlProtocol`] under buffered-asynchronous aggregation,
/// optionally streaming one [`RoundEvent`] per server version to an
/// [`EventSink`].
///
/// `FlConfig::rounds` counts aggregations (server versions), so curves,
/// comm logs and activation traces line up one-to-one with the sync
/// driver's rounds; the evaluation cadence (`FlConfig::eval_every`)
/// applies to versions identically.
pub struct AsyncDriver<'a> {
    cfg: AsyncConfig,
    sink: Option<&'a mut dyn EventSink>,
}

impl AsyncDriver<'_> {
    /// Driver without an event sink.
    pub fn new(cfg: AsyncConfig) -> Self {
        Self { cfg, sink: None }
    }
}

impl<'a> AsyncDriver<'a> {
    /// Driver that emits one [`RoundEvent`] per aggregation to `sink`.
    pub fn with_sink(cfg: AsyncConfig, sink: &'a mut dyn EventSink) -> Self {
        Self {
            cfg,
            sink: Some(sink),
        }
    }

    /// Run `system.config().rounds` buffered-asynchronous aggregations of
    /// `protocol`.
    ///
    /// Validates the protocol, the async configuration and the fault
    /// configuration before touching the system.
    pub fn run(
        &mut self,
        protocol: &mut dyn FlProtocol,
        system: &mut FlSystem,
    ) -> Result<RunResult, String> {
        protocol
            .validate()
            .map_err(|e| format!("invalid {} configuration: {e}", protocol.name()))?;
        self.cfg
            .validate()
            .map_err(|e| format!("invalid async runtime configuration: {e}"))?;
        let fault_cfg = system.config().faults.clone();
        if let Some(fc) = &fault_cfg {
            fc.validate()
                .map_err(|e| format!("invalid fault configuration: {e}"))?;
        }
        if let Some(c) = &system.config().compression {
            c.validate()
                .map_err(|e| format!("invalid compression configuration: {e}"))?;
        }
        let compressor = system.config().compression.map(|c| c.build());
        let rounds = system.config().rounds;
        let eval_every = system.config().eval_every.max(1);
        let mut rng = StdRng::seed_from_u64(system.config().seed ^ protocol.seed_tweak());
        let plan = fault_cfg
            .as_ref()
            .map(|fc| FaultPlan::generate(fc, rounds, system.num_clients(), system.config().seed));
        protocol.begin(system, &mut rng);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.begin_run(&protocol.name(), rounds);
        }

        let mut sched: Scheduler<Delivery> = Scheduler::new();
        let mut mailbox: Mailbox<(Delivery, f64)> = Mailbox::new(self.cfg.k);
        let mut in_flight = vec![false; system.num_clients()];
        let mut version = 0usize;
        let mut dispatched = false;
        let mut state = VersionState::new();
        let mut result = RunResult::default();

        while version < rounds {
            if !dispatched {
                dispatch_wave(
                    system,
                    protocol,
                    &mut rng,
                    &plan,
                    compressor.as_deref(),
                    version,
                    &mut sched,
                    &mut in_flight,
                    &mut state,
                );
                dispatched = true;
            }
            if !mailbox.is_full() {
                if let Some((_tick, mut d)) = sched.pop() {
                    in_flight[d.client] = false;
                    // Decompress at the server arrival point — stale
                    // arrivals carried their compressed payload across
                    // versions and decode against their dispatch-time
                    // broadcast.
                    decode_arrival(&mut d);
                    // Uplink is charged at arrival — dropouts and
                    // reports the run outlives are never charged.
                    state.charges.push(d.charge);
                    if let Some(fc) = &fault_cfg {
                        if let Some(effect) = detect_rejection(&d.ret, fc) {
                            state.observations.push(FaultObserved {
                                round: version,
                                client: d.client,
                                effect,
                            });
                            continue;
                        }
                    }
                    let staleness = version - d.dispatch_round;
                    // γ^staleness by repeated product: exact integer
                    // exponent, no libm, bit-stable across platforms.
                    let mut weight = 1.0f64;
                    for _ in 0..staleness {
                        weight *= self.cfg.gamma;
                    }
                    if staleness > 0 {
                        state.observations.push(FaultObserved {
                            round: version,
                            client: d.client,
                            effect: FaultEffect::StaleApplied { staleness, weight },
                        });
                    }
                    mailbox.push((d, weight));
                    continue;
                }
                // Queue starved with fewer than K reports buffered (small
                // federation, mass dropout, or the run's tail): fall
                // through and flush the short — possibly empty — buffer so
                // the run always completes its aggregation count.
            }
            // K admissible reports buffered (or the queue starved):
            // aggregate now.
            aggregate_version(
                system,
                protocol,
                &mut rng,
                &fault_cfg,
                version,
                rounds,
                eval_every,
                &mut mailbox,
                std::mem::replace(&mut state, VersionState::new()),
                &mut result,
                self.sink.as_deref_mut(),
            );
            version += 1;
            dispatched = false;
        }
        Ok(result)
    }
}

/// Dispatch the wave of server version `version`: select clients, skip
/// those still in flight (the async concurrency rule — a client can hold
/// at most one outstanding report), train the reporting ones on the worker
/// pool against the *current* global, and schedule every report's arrival
/// at `now + 1 + straggler delay`. Dropouts are observed at dispatch and
/// never scheduled; downlink is charged for every dispatched client.
#[allow(clippy::too_many_arguments)]
fn dispatch_wave(
    system: &mut FlSystem,
    protocol: &mut dyn FlProtocol,
    rng: &mut StdRng,
    plan: &Option<FaultPlan>,
    compressor: Option<&(dyn Compressor + Send + Sync)>,
    version: usize,
    sched: &mut Scheduler<Delivery>,
    in_flight: &mut [bool],
    state: &mut VersionState,
) {
    let selected = protocol.select_clients(system, version, rng);
    let wave: Vec<usize> = selected.into_iter().filter(|&c| !in_flight[c]).collect();
    let masks = protocol.build_masks(system, &wave, version, rng);
    debug_assert_eq!(masks.len(), wave.len(), "one mask per dispatched client");
    state.mask_density = crate::driver::mean_mask_density(&masks);
    let reporting: Vec<usize> = wave
        .iter()
        .copied()
        .filter(|&c| plan.as_ref().and_then(|p| p.fault_at(version, c)) != Some(FaultKind::Dropout))
        .collect();
    let broadcast =
        (plan.is_some() || compressor.is_some()).then(|| Arc::new(system.global.clone()));
    let sizes = system.unit_sizes();
    let penalties: Vec<_> = reporting
        .iter()
        .map(|&c| protocol.local_regularizer(system, c, version))
        .collect();
    let mut returns = system
        .run_local_round_with(&reporting, version, &penalties)
        .into_iter();
    for (pos, &client) in wave.iter().enumerate() {
        let fault = plan.as_ref().and_then(|p| p.fault_at(version, client));
        if fault == Some(FaultKind::Dropout) {
            state.observations.push(FaultObserved {
                round: version,
                client,
                effect: FaultEffect::Dropout,
            });
            continue;
        }
        let mut ret = returns
            .next()
            // fedda-lint: allow(panic-path, reason = "run_local_round returns exactly one entry per non-dropout client; a shortfall is driver-internal corruption")
            .expect("one return per reporting client");
        debug_assert_eq!(ret.client, client);
        let latency: Tick = match fault {
            Some(FaultKind::Straggler { delay }) => 1 + delay as Tick,
            Some(FaultKind::Corruption(kind)) => {
                if let Some(broadcast) = &broadcast {
                    corrupt_return(&mut ret, broadcast, kind);
                }
                1
            }
            Some(FaultKind::Dropout) => unreachable!("dropouts filtered above"),
            None => 1,
        };
        // Mask-then-compress against this version's broadcast; the report
        // carries its compressed payload (and its reference) across however
        // many versions its latency spans.
        let mask = masks[pos].clone();
        let (charge, payload) = match (compressor, &broadcast) {
            (Some(comp), Some(reference)) => {
                let report = comp.compress(&Delta {
                    updated: &ret.params,
                    reference,
                    mask: &mask,
                });
                let charge = report.charge();
                (
                    charge,
                    Some(InFlight {
                        report,
                        reference: Arc::clone(reference),
                    }),
                )
            }
            _ => (UplinkCharge::from_mask(&mask, &sizes), None),
        };
        in_flight[client] = true;
        sched.schedule_after(
            latency,
            Delivery {
                client,
                dispatch_pos: pos,
                dispatch_round: version,
                ret,
                mask,
                charge,
                payload,
            },
        );
    }
    state.wave = wave;
}

/// Aggregate the buffered reports into a new server version: Eq. 6
/// renormalised weighted averaging at weights `γ^staleness`, comm entry
/// for the traffic since the last aggregation, protocol fault and
/// post-aggregate hooks, activation tracing, the evaluation cadence, and
/// the version's [`RoundEvent`].
#[allow(clippy::too_many_arguments)]
fn aggregate_version(
    system: &mut FlSystem,
    protocol: &mut dyn FlProtocol,
    rng: &mut StdRng,
    fault_cfg: &Option<crate::faults::FaultConfig>,
    version: usize,
    rounds: usize,
    eval_every: usize,
    mailbox: &mut Mailbox<(Delivery, f64)>,
    state: VersionState,
    result: &mut RunResult,
    sink: Option<&mut (dyn EventSink + '_)>,
) {
    let VersionState {
        wave,
        mask_density,
        observations,
        charges,
        started,
    } = state;
    let buffered = mailbox.drain();
    let contributions: Vec<WeightedReturn<'_>> = buffered
        .iter()
        .map(|(d, weight)| WeightedReturn {
            ret: &d.ret,
            mask: &d.mask,
            scale: *weight,
        })
        .collect();
    system.aggregate_weighted(&contributions);
    let comm = system.round_comm_charges(wave.len(), &charges);
    // Same ledger rule as the sync facade: versions that neither broadcast
    // nor received any *charged* traffic stay off the log — a stale report
    // the codec compressed away entirely moved no bytes.
    if !wave.is_empty() || comm.has_uplink() {
        result.comm.push(comm);
    }
    // The protocol's fault hook keeps its sync-driver contract: only
    // called under fault injection. Staleness records caused purely by
    // K-buffering (no faults configured) are still reported in the result.
    if fault_cfg.is_some() && !observations.is_empty() {
        protocol.on_faults(system, &observations, version);
    }
    let returns: Vec<ClientReturn> = buffered.into_iter().map(|(d, _)| d.ret).collect();
    let outcome = protocol.post_aggregate(system, &wave, &returns, version, rng);
    if protocol.traces_activation() {
        result.activation_trace.push(ActivationSnapshot {
            active_clients: wave.clone(),
            mask_density,
            deactivated: outcome.deactivated.clone(),
            reactivated: outcome.reactivated.clone(),
            restarted: outcome.restarted,
        });
    }
    let eval = if (version + 1) % eval_every == 0 || version + 1 == rounds {
        let eval = system.evaluate_global(version);
        let point = RoundEval {
            round: version,
            roc_auc: eval.roc_auc,
            mrr: eval.mrr,
        };
        result.curve.push(point);
        result.final_eval = eval;
        Some(point)
    } else {
        None
    };
    if let Some(sink) = sink {
        sink.on_round(&RoundEvent {
            round: version,
            active_clients: wave,
            mask_density,
            comm,
            deactivated: outcome.deactivated,
            reactivated: outcome.reactivated,
            restarted: outcome.restarted,
            faults: observations.clone(),
            eval,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        });
    }
    result.faults.extend(observations);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;
    use crate::{FedAvg, FedDa};

    #[test]
    fn async_config_validates_ranges() {
        assert!(AsyncConfig::default().validate().is_ok());
        assert!(AsyncConfig { k: 0, gamma: 0.9 }.validate().is_err());
        assert!(AsyncConfig { k: 2, gamma: 0.0 }.validate().is_err());
        assert!(AsyncConfig { k: 2, gamma: 1.5 }.validate().is_err());
        assert!(AsyncConfig {
            k: 2,
            gamma: f64::NAN
        }
        .validate()
        .is_err());
        assert!(AsyncConfig { k: 1, gamma: 1.0 }.validate().is_ok());
    }

    #[test]
    fn runtime_mode_defaults_to_sync() {
        assert_eq!(RuntimeMode::default(), RuntimeMode::Sync);
    }

    #[test]
    fn async_run_completes_all_versions_and_evaluates() {
        let mut sys = tiny_system(4, 21);
        let mut driver = AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.9 });
        let result = driver.run(&mut FedAvg::vanilla(), &mut sys).unwrap();
        let rounds = sys.config().rounds;
        assert_eq!(
            result.curve.len(),
            rounds,
            "eval_every=1 evaluates every version"
        );
        assert_eq!(result.comm.rounds().len(), rounds);
        assert!(result.final_eval.roc_auc.is_finite());
        // K=2 < wave size 4: the leftovers arrive stale at later versions.
        assert!(
            result
                .faults
                .iter()
                .any(|o| matches!(o.effect, FaultEffect::StaleApplied { .. })),
            "K-buffering must surface staleness records"
        );
    }

    #[test]
    fn async_with_k_at_wave_size_has_no_staleness() {
        let mut sys = tiny_system(3, 22);
        let mut driver = AsyncDriver::new(AsyncConfig { k: 3, gamma: 0.9 });
        let result = driver.run(&mut FedAvg::vanilla(), &mut sys).unwrap();
        assert!(
            result.faults.is_empty(),
            "K == wave size aggregates only fresh reports: {:?}",
            result.faults
        );
        // Every byte both ways: full fresh participation each version.
        for rc in result.comm.rounds() {
            assert_eq!(rc.active_clients, 3);
            assert_eq!(rc.uplink_units, 3 * sys.num_units());
        }
    }

    #[test]
    fn async_rejects_invalid_configs_before_touching_the_system() {
        let mut sys = tiny_system(2, 23);
        let before = sys.global.flatten();
        let err = AsyncDriver::new(AsyncConfig { k: 0, gamma: 0.9 })
            .run(&mut FedAvg::vanilla(), &mut sys)
            .unwrap_err();
        assert!(err.contains("async"), "unexpected error: {err}");
        assert_eq!(sys.global.flatten(), before, "system must be untouched");
    }

    #[test]
    fn async_fedda_traces_activation_per_version() {
        let mut sys = tiny_system(4, 24);
        let mut protocol = FedDa::explore().protocol();
        let result = AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.5 })
            .run(&mut protocol, &mut sys)
            .unwrap();
        assert_eq!(result.activation_trace.len(), sys.config().rounds);
        assert!(result.final_eval.roc_auc.is_finite());
    }

    #[test]
    fn async_same_seed_is_bit_identical() {
        let run = || {
            let mut sys = tiny_system(4, 25);
            AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.9 })
                .run(&mut FedAvg::vanilla(), &mut sys)
                .map(|r| {
                    (
                        r.curve
                            .iter()
                            .map(|e| (e.round, e.roc_auc.to_bits(), e.mrr.to_bits()))
                            .collect::<Vec<_>>(),
                        sys.global
                            .flatten()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                    )
                })
                .unwrap()
        };
        assert_eq!(run(), run());
    }
}
