//! FedProx (Li et al., MLSys 2020): FedAvg with a μ-proximal term on the
//! local objective.
//!
//! Each selected client minimises `L_i(θ) + μ/2·‖θ − θ^t‖²`, where `θ^t`
//! is the round's broadcast. The proximal term bounds local drift on
//! non-IID data — exactly the heterogeneity regime of the paper's Table 1
//! — without any server-side state. FedProx is therefore stateless
//! between rounds and the config struct implements [`FlProtocol`]
//! directly, like [`FedAvg`](crate::FedAvg): selection is a seeded
//! shuffle, masks are full, and the only addition over FedAvg is the
//! [`local_regularizer`](FlProtocol::local_regularizer) hook returning a
//! constant proximal penalty.
//!
//! `μ = 0` degenerates to FedAvg's objective (but keeps FedProx's own RNG
//! stream tweak, so curves are comparable-by-seed, not bit-identical).

use crate::driver::RoundDriver;
use crate::protocol::{FlProtocol, LocalPenalty};
use crate::system::{FlSystem, RunResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// FedProx protocol configuration (and, being stateless, the
/// [`FlProtocol`] implementation itself).
#[derive(Clone, Debug)]
pub struct FedProx {
    /// Proximal coefficient μ on `½‖θ − θ^t‖²` (paper sweeps 1e-3…1;
    /// `0` recovers the FedAvg objective).
    pub mu: f64,
    /// Fraction of clients randomly activated each round.
    pub client_fraction: f64,
}

impl Default for FedProx {
    fn default() -> Self {
        Self {
            mu: 0.01,
            client_fraction: 1.0,
        }
    }
}

impl FedProx {
    /// FedProx with the given proximal coefficient and full participation.
    pub fn new(mu: f64) -> Self {
        Self {
            mu,
            client_fraction: 1.0,
        }
    }

    /// Run `cfg.rounds` rounds through the shared [`RoundDriver`].
    ///
    /// # Panics
    ///
    /// On an invalid configuration (see [`validate`](FlProtocol::validate));
    /// use the driver directly to handle the error.
    pub fn run(&self, system: &mut FlSystem) -> RunResult {
        RoundDriver::new()
            .run(&mut self.clone(), system)
            // fedda-lint: allow(panic-path, reason = "documented panic in the method contract above; fallible callers use RoundDriver directly")
            .expect("invalid FedProx configuration")
    }
}

/// The FedProx proximal penalty value `μ/2·‖θ − θ_ref‖²` (f64
/// accumulation). Pure helper shared with the property tests: zero exactly
/// at the reference point and linear in μ.
pub fn proximal_term(theta: &[f32], reference: &[f32], mu: f64) -> f64 {
    let sq: f64 = theta
        .iter()
        .zip(reference)
        .map(|(&t, &r)| {
            let d = f64::from(t) - f64::from(r);
            d * d
        })
        .sum();
    0.5 * mu * sq
}

impl FlProtocol for FedProx {
    fn name(&self) -> String {
        format!("FedProx(mu={})", self.mu)
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.mu.is_finite() && self.mu >= 0.0) {
            return Err(format!(
                "mu must be finite and non-negative, got {}",
                self.mu
            ));
        }
        if !(self.client_fraction > 0.0 && self.client_fraction <= 1.0) {
            return Err(format!(
                "client_fraction must be in (0,1], got {}",
                self.client_fraction
            ));
        }
        Ok(())
    }

    fn seed_tweak(&self) -> u64 {
        0xFED9_0B0C
    }

    fn select_clients(&mut self, system: &FlSystem, _round: usize, rng: &mut StdRng) -> Vec<usize> {
        let m = system.num_clients();
        let take = ((m as f64) * self.client_fraction).round().max(1.0) as usize;
        let mut order: Vec<usize> = (0..m).collect();
        order.shuffle(rng);
        let mut active = order[..take.min(m)].to_vec();
        active.sort_unstable();
        active
    }

    fn local_regularizer(
        &mut self,
        _system: &FlSystem,
        _client: usize,
        _round: usize,
    ) -> Option<LocalPenalty> {
        (self.mu > 0.0).then_some(LocalPenalty {
            prox_mu: self.mu as f32,
            linear: None,
        })
    }

    fn build_masks(
        &mut self,
        system: &FlSystem,
        active: &[usize],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<Vec<bool>> {
        system.full_masks(active.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;

    #[test]
    fn fedprox_trains_and_transmits_everything() {
        let mut sys = tiny_system(3, 21);
        let result = FedProx::new(0.01).run(&mut sys);
        let rounds = sys.config().rounds;
        assert_eq!(result.curve.len(), rounds);
        assert_eq!(
            result.comm.total_uplink_units(),
            rounds * 3 * sys.num_units()
        );
        assert!(result.final_eval.roc_auc > 0.0);
        assert!(!sys.global.has_non_finite());
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut s1 = tiny_system(3, 22);
        let mut s2 = tiny_system(3, 22);
        let r1 = FedProx::new(0.05).run(&mut s1);
        let r2 = FedProx::new(0.05).run(&mut s2);
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.roc_auc.to_bits(), b.roc_auc.to_bits());
        }
        assert_eq!(s1.global.flatten(), s2.global.flatten());
    }

    #[test]
    fn mu_changes_the_trajectory() {
        // The proximal term must actually reach the local objective: a
        // large μ pins clients near the broadcast and produces different
        // parameters than μ = 0 under the same seed. The penalty gradient
        // is zero at the broadcast anchor, so this needs ≥ 2 local steps
        // per round (the first step starts exactly at the anchor).
        let two_epochs = fedda_hgn::TrainConfig {
            local_epochs: 2,
            lr: 5e-3,
            ..Default::default()
        };
        let mut free = tiny_system(3, 23);
        free.set_train(two_epochs.clone());
        let mut pinned = tiny_system(3, 23);
        pinned.set_train(two_epochs);
        let _ = FedProx::new(0.0).run(&mut free);
        let _ = FedProx::new(10.0).run(&mut pinned);
        assert_ne!(free.global.flatten(), pinned.global.flatten());
    }

    #[test]
    fn validation_pins_rejection_messages() {
        assert_eq!(
            FedProx::new(-0.1).validate().unwrap_err(),
            "mu must be finite and non-negative, got -0.1"
        );
        assert_eq!(
            FedProx::new(f64::NAN).validate().unwrap_err(),
            "mu must be finite and non-negative, got NaN"
        );
        let bad_fraction = FedProx {
            mu: 0.01,
            client_fraction: 0.0,
        };
        assert_eq!(
            bad_fraction.validate().unwrap_err(),
            "client_fraction must be in (0,1], got 0"
        );
        assert!(FedProx::new(0.0).validate().is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FedProx::new(0.01).name(), "FedProx(mu=0.01)");
    }

    #[test]
    fn proximal_term_is_zero_at_reference() {
        let theta = [0.5f32, -1.25, 3.0];
        assert_eq!(proximal_term(&theta, &theta, 0.7), 0.0);
        let reference = [0.0f32, 0.0, 0.0];
        let expected = 0.5 * 0.7 * (0.25 + 1.5625 + 9.0);
        assert!((proximal_term(&theta, &reference, 0.7) - expected).abs() < 1e-12);
    }
}
