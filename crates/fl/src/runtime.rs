//! The deterministic event-driven simulation runtime under both drivers.
//!
//! Everything here runs on *virtual time*: an integer [`Tick`] clock that
//! only advances when the [`Scheduler`] pops an event, never from a wall
//! clock (fedda-lint rule D2 keeps `Instant`/`SystemTime` out of this
//! crate's logic). Determinism falls out of two invariants:
//!
//! 1. **Total event order.** Every scheduled event gets a `(tick, seq)`
//!    key where `seq` is a monotonically increasing schedule counter, so
//!    same-tick events pop in the exact order they were scheduled — a
//!    `BTreeMap` queue, no hashing, no iteration-order surprises.
//! 2. **Pure tasks.** Client work dispatched through the [`WorkerPool`]
//!    is a pure function of its inputs (each client's training RNG is
//!    derived from `(client seed, round)`), so results are identical for
//!    any pool size and any interleaving; `run_ordered` additionally
//!    returns results in submission order.
//!
//! [`RoundDriver`](crate::RoundDriver) is a synchronous facade over this
//! runtime (round `r` occupies tick `r`); the buffered-asynchronous
//! [`AsyncDriver`](crate::AsyncDriver) lets deliveries span many ticks and
//! aggregates from a bounded [`Mailbox`].

use crate::system::ClientReturn;
use std::collections::BTreeMap;

/// Virtual time, in integer ticks. The sync facade maps round `r` to tick
/// `r`; the async driver charges one tick of latency per healthy report
/// plus the fault plan's straggler delay.
pub type Tick = u64;

/// A monotonic virtual clock. Advances only via [`VirtualClock::advance_to`]
/// — there is no wall-time source anywhere in the runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualClock {
    now: Tick,
}

impl VirtualClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tick.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advance to `tick`. Moving backwards is a causality violation and
    /// panics in debug builds; release builds clamp monotonically.
    pub fn advance_to(&mut self, tick: Tick) {
        debug_assert!(tick >= self.now, "virtual clock must be monotonic");
        self.now = self.now.max(tick);
    }
}

/// A deterministic discrete-event queue over virtual time.
///
/// Events are totally ordered by `(tick, seq)`: `seq` increments per
/// schedule call, so two events at the same tick pop in schedule order.
/// Popping an event advances the embedded [`VirtualClock`] to its tick.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: BTreeMap<(Tick, u64), E>,
    seq: u64,
    clock: VirtualClock,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty queue with the clock at tick 0.
    pub fn new() -> Self {
        Self {
            queue: BTreeMap::new(),
            seq: 0,
            clock: VirtualClock::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedule `event` at an absolute `tick`. Scheduling into the past is
    /// a causality violation (debug panic; release clamps to `now`).
    pub fn schedule_at(&mut self, tick: Tick, event: E) {
        debug_assert!(tick >= self.now(), "cannot schedule into the past");
        let key = (tick.max(self.now()), self.seq);
        self.seq += 1;
        self.queue.insert(key, event);
    }

    /// Schedule `event` `delay` ticks from now.
    pub fn schedule_after(&mut self, delay: Tick, event: E) {
        self.schedule_at(self.now().saturating_add(delay), event);
    }

    /// Pop the earliest event (ties broken by schedule order) and advance
    /// the clock to its tick.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        let ((tick, _), event) = self.queue.pop_first()?;
        self.clock.advance_to(tick);
        Some((tick, event))
    }
}

/// A client report in transit: which client sent it, from which dispatch
/// round/version, under which mask. Uplink bytes are accounted when the
/// delivery *arrives* at the server, never at dispatch — a report the run
/// outlives is never charged.
pub struct Delivery {
    /// Reporting client index.
    pub client: usize,
    /// Position of the client in its dispatch round's active set.
    pub dispatch_pos: usize,
    /// Round (sync) or server version (async) the report was computed
    /// against.
    pub dispatch_round: usize,
    /// The client's trained return. When a compressor is configured this
    /// holds the *pre-compression* values until [`decode_arrival`] swaps in
    /// the decompressed reconstruction at the server.
    ///
    /// [`decode_arrival`]: crate::compress::decode_arrival
    pub ret: ClientReturn,
    /// The unit mask the server requested from this client.
    pub mask: Vec<bool>,
    /// What this report costs the ledger, computed at dispatch (it is a
    /// pure function of the report) and charged at arrival.
    pub charge: crate::compress::UplinkCharge,
    /// The compressed report plus its dispatch-time broadcast reference;
    /// `None` when no compressor is configured.
    pub payload: Option<crate::compress::InFlight>,
}

/// A bounded buffer of deliveries the server aggregates from.
///
/// The sync facade seals it once per round; the async driver drains it as
/// soon as `K` admissible reports have buffered (or earlier, when the
/// event queue starves). Exceeding the capacity is a driver bug.
#[derive(Debug)]
pub struct Mailbox<T> {
    capacity: usize,
    items: Vec<T>,
}

impl<T> Mailbox<T> {
    /// An empty mailbox holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(1024)),
        }
    }

    /// Maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer reached capacity (the async driver's aggregation
    /// trigger).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Buffer one item. The caller must drain before exceeding capacity.
    pub fn push(&mut self, item: T) {
        assert!(
            self.items.len() < self.capacity,
            "mailbox overflow: capacity {}",
            self.capacity
        );
        self.items.push(item);
    }

    /// Take every buffered item, in arrival order.
    pub fn drain(&mut self) -> Vec<T> {
        std::mem::take(&mut self.items)
    }
}

/// A fixed-size pool executing client tasks.
///
/// With one worker, tasks run inline on the caller's thread and the matmul
/// kernels keep the full `FEDDA_THREADS` budget (the historical sequential
/// path). With more, tasks are pulled from a shared index by scoped
/// worker threads, each capped at one kernel thread via
/// [`fedda_tensor::gemm::with_kernel_threads`] so the two parallelism
/// layers never multiply — exactly the contract the per-client-thread code
/// had before this pool existed.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of `workers` threads (min 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f` over every item, returning results in item order.
    ///
    /// Tasks must be pure: results are placed by item index, so any number
    /// of workers yields the identical output vector.
    pub fn run_ordered<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let effective = self.workers.min(items.len());
        if effective <= 1 {
            return items.iter().map(f).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
        crossbeam::thread::scope(|s| {
            for _ in 0..effective {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                s.spawn(move |_| {
                    fedda_tensor::gemm::with_kernel_threads(1, || loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        if tx.send((i, f(&items[i]))).is_err() {
                            break;
                        }
                    })
                });
            }
        })
        // fedda-lint: allow(panic-path, reason = "re-raises a worker panic after the scope unwinds; there is no partial result to salvage")
        .expect("worker pool scope failed");
        drop(tx);
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(items.len(), || None);
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            // fedda-lint: allow(panic-path, reason = "every index is sent exactly once by the workers above; an empty slot is pool-internal corruption")
            .map(|o| o.expect("missing worker result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(5);
        assert_eq!(c.now(), 5);
        c.advance_to(5);
        assert_eq!(c.now(), 5);
    }

    #[test]
    fn scheduler_pops_in_tick_then_schedule_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(2, "late");
        s.schedule_at(1, "first-at-1");
        s.schedule_at(1, "second-at-1");
        s.schedule_after(0, "now");
        assert_eq!(s.len(), 4);
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(
            order,
            vec![
                (0, "now"),
                (1, "first-at-1"),
                (1, "second-at-1"),
                (2, "late")
            ]
        );
        assert!(s.is_empty());
        assert_eq!(s.now(), 2);
    }

    #[test]
    fn popping_advances_the_clock() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(7, 1);
        assert_eq!(s.now(), 0);
        s.pop();
        assert_eq!(s.now(), 7);
        // Scheduling relative to the advanced clock.
        s.schedule_after(3, 2);
        assert_eq!(s.pop(), Some((10, 2)));
    }

    #[test]
    fn mailbox_buffers_and_drains_in_order() {
        let mut m: Mailbox<u32> = Mailbox::new(3);
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 3);
        m.push(1);
        m.push(2);
        assert!(!m.is_full());
        m.push(3);
        assert!(m.is_full());
        assert_eq!(m.len(), 3);
        assert_eq!(m.drain(), vec![1, 2, 3]);
        assert!(m.is_empty());
        m.push(4);
        assert_eq!(m.drain(), vec![4]);
    }

    #[test]
    #[should_panic(expected = "mailbox overflow")]
    fn mailbox_overflow_panics() {
        let mut m: Mailbox<u32> = Mailbox::new(1);
        m.push(1);
        m.push(2);
    }

    #[test]
    fn worker_pool_preserves_item_order_for_any_size() {
        let items: Vec<u64> = (0..23).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 4, 64] {
            let got = WorkerPool::new(workers).run_ordered(&items, |&x| x * x);
            assert_eq!(got, expect, "workers={workers}");
        }
        // Degenerate shapes.
        let empty: Vec<u64> = Vec::new();
        assert!(WorkerPool::new(4).run_ordered(&empty, |&x| x).is_empty());
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }
}
