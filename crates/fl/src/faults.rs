//! Deterministic fault injection for the protocol engine.
//!
//! FedDA's premise is that client availability is *dynamic*: clients drop
//! out, straggle, or return garbage, and the activation machinery only
//! earns its keep when they actually do. This module gives the
//! [`RoundDriver`](crate::RoundDriver) first-class failure semantics:
//!
//! * a [`FaultConfig`] (plugged in via `FlConfig::faults`) describes per
//!   round × client probabilities of **dropout** (selected but never
//!   reports), **straggler delay** (the report arrives `k` rounds late and
//!   is handled per a [`StalenessPolicy`]) and **update corruption**
//!   (NaN/Inf or scaled-garbage tensors, detected by a non-finite /
//!   norm-bound check and rejected);
//! * a [`FaultPlan`] pre-samples the whole schedule from its own RNG
//!   stream (`run seed ^` [`FAULT_STREAM_TWEAK`]) so fault schedules are
//!   reproducible and **orthogonal** to model init, client sampling and
//!   every protocol's decision stream — turning faults on or off never
//!   shifts any other random draw;
//! * every fault the driver acts on is reported as a structured
//!   [`FaultObserved`] record, carried on the round's
//!   [`RoundEvent`](crate::RoundEvent) and accumulated in
//!   `RunResult::faults`, so the chaos harness (`tests/chaos.rs`) can
//!   cross-check the observed stream against the injected schedule
//!   exactly.
//!
//! The driver guarantees the failure-semantics invariants the chaos tests
//! pin: dropped clients are excluded from the masked aggregation (Eq. 6)
//! with the per-unit weights renormalised over the survivors (see
//! [`renormalize`]), stale reports are discarded or staleness-discounted,
//! rejected updates never touch the global model, and the comm log counts
//! only bytes actually transferred.

use crate::system::ClientReturn;
use fedda_tensor::ParamSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// XOR tweak applied to `FlConfig::seed` to derive the fault-schedule RNG
/// stream (see the RNG derivation rules in DESIGN.md §4c). Distinct
/// from every protocol tweak so the schedule is orthogonal to selection,
/// masking and reactivation randomness.
pub const FAULT_STREAM_TWEAK: u64 = 0xFAB7_5EED;

/// How an injected corruption mangles a client's returned update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Corruption {
    /// Poison the returned tensors with NaNs.
    NaN,
    /// Poison the returned tensors with infinities.
    Inf,
    /// Scale the whole update `θ_i - θ` by a factor — finite garbage that
    /// only a norm bound ([`FaultConfig::max_update_norm`]) can catch.
    Garbage {
        /// Multiplier applied to the update (e.g. `1e6`).
        scale: f32,
    },
}

/// What to do with a straggler's report when it finally arrives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StalenessPolicy {
    /// Receive the bytes (they count as uplink) but never aggregate them.
    Discard,
    /// Aggregate with the client's weight multiplied by `gamma^staleness`
    /// (staleness = rounds late), renormalised with the round's fresh
    /// contributions.
    Discount {
        /// Per-round decay factor in `(0, 1]`.
        gamma: f64,
    },
}

impl StalenessPolicy {
    /// Aggregation-weight multiplier for a report `staleness` rounds late,
    /// or `None` when the report must be discarded.
    pub fn weight(&self, staleness: usize) -> Option<f64> {
        match *self {
            StalenessPolicy::Discard => None,
            StalenessPolicy::Discount { gamma } => {
                // Saturating: gamma in (0,1], so an absurd staleness just
                // drives the weight to its limit (0 or 1) instead of wrapping.
                Some(gamma.powi(i32::try_from(staleness).unwrap_or(i32::MAX)))
            }
        }
    }
}

/// One injected fault: what happens to a client selected in a round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The client is selected and broadcast to but never reports.
    Dropout,
    /// The client's report arrives `delay` rounds late.
    Straggler {
        /// Rounds of delay (`>= 1`).
        delay: usize,
    },
    /// The client reports a corrupted update.
    Corruption(Corruption),
}

/// A fault pinned to an exact `(round, client)` cell, layered on top of
/// the sampled schedule — the deterministic handle tests use to corrupt
/// *one specific* update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScriptedFault {
    /// Round the fault strikes in.
    pub round: usize,
    /// Client it strikes.
    pub client: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Fault-injection configuration (`FlConfig::faults`).
///
/// Per round and per client, at most one fault fires; the three rates are
/// probabilities of disjoint outcomes and must sum to at most 1.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Per-round per-client dropout probability in `[0, 1]`.
    pub dropout: f64,
    /// Per-round per-client straggler probability in `[0, 1]`.
    pub straggler: f64,
    /// Upper bound on straggler delay: delays are drawn uniformly from
    /// `1..=max_staleness` (must be `>= 1`).
    pub max_staleness: usize,
    /// Per-round per-client corruption probability in `[0, 1]`.
    pub corruption: f64,
    /// How injected corruptions mangle the update.
    pub corruption_kind: Corruption,
    /// What the server does with stale (straggler) reports.
    pub staleness: StalenessPolicy,
    /// Optional server-side defence: reject any arriving update whose
    /// whole-update L2 norm (over `unit_delta`) exceeds this bound — the
    /// only way to catch finite [`Corruption::Garbage`].
    pub max_update_norm: Option<f32>,
    /// Faults pinned to exact `(round, client)` cells, applied after (and
    /// overriding) the sampled schedule. Entries outside the run's
    /// round/client grid are ignored.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            dropout: 0.0,
            straggler: 0.0,
            max_staleness: 1,
            corruption: 0.0,
            corruption_kind: Corruption::NaN,
            staleness: StalenessPolicy::Discard,
            max_update_norm: None,
            scripted: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// Dropout-only faults at the given rate.
    pub fn dropout_only(rate: f64) -> Self {
        Self {
            dropout: rate,
            ..Default::default()
        }
    }

    /// Validate rates, bounds and policy parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("dropout", self.dropout),
            ("straggler", self.straggler),
            ("corruption", self.corruption),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} rate must be in [0,1], got {rate}"));
            }
        }
        let total = self.dropout + self.straggler + self.corruption;
        if total > 1.0 {
            return Err(format!(
                "dropout + straggler + corruption rates must not exceed 1, got {total}"
            ));
        }
        if self.max_staleness == 0 {
            return Err("max_staleness must be >= 1 (a 0-round delay is not a straggle)".into());
        }
        if let StalenessPolicy::Discount { gamma } = self.staleness {
            if !gamma.is_finite() || gamma <= 0.0 || gamma > 1.0 {
                return Err(format!(
                    "staleness discount gamma must be in (0,1], got {gamma}"
                ));
            }
        }
        if let Corruption::Garbage { scale } = self.corruption_kind {
            // fedda-lint: allow(float-eq, reason = "config validation rejecting the exact literal 0.0, which would make Garbage a silent no-op; no computed values reach here")
            if !scale.is_finite() || scale == 0.0 {
                return Err(format!(
                    "garbage corruption scale must be finite and non-zero, got {scale}"
                ));
            }
        }
        if let Some(bound) = self.max_update_norm {
            if !bound.is_finite() || bound <= 0.0 {
                return Err(format!("max_update_norm must be positive, got {bound}"));
            }
        }
        for s in &self.scripted {
            if let FaultKind::Straggler { delay } = s.kind {
                if delay == 0 {
                    return Err(format!(
                        "scripted straggler at round {} client {} has delay 0",
                        s.round, s.client
                    ));
                }
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultConfig {
    type Err = String;

    /// Parse the CLI `--faults` spec: comma-separated `key=value` pairs.
    ///
    /// * `drop=<f64>` — dropout rate;
    /// * `straggle=<f64>` — straggler rate;
    /// * `delay=<usize>` — maximum straggler delay (default 1);
    /// * `corrupt=<f64>` — corruption rate;
    /// * `kind=nan|inf|garbage:<scale>` — corruption kind (default `nan`);
    /// * `stale=discard|discount:<gamma>` — staleness policy
    ///   (default `discard`);
    /// * `maxnorm=<f32>` — reject updates above this L2 norm.
    ///
    /// Example: `drop=0.2,straggle=0.1,delay=3,corrupt=0.05,stale=discount:0.5`.
    fn from_str(spec: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry '{part}' is not key=value"))?;
            let bad = |e: &dyn std::fmt::Debug| format!("bad value for {key}: {value} ({e:?})");
            match key {
                "drop" => cfg.dropout = value.parse().map_err(|e| bad(&e))?,
                "straggle" => cfg.straggler = value.parse().map_err(|e| bad(&e))?,
                "delay" => cfg.max_staleness = value.parse().map_err(|e| bad(&e))?,
                "corrupt" => cfg.corruption = value.parse().map_err(|e| bad(&e))?,
                "kind" => {
                    cfg.corruption_kind = match value.split_once(':') {
                        None if value == "nan" => Corruption::NaN,
                        None if value == "inf" => Corruption::Inf,
                        Some(("garbage", scale)) => Corruption::Garbage {
                            scale: scale.parse().map_err(|e| bad(&e))?,
                        },
                        _ => return Err(format!("unknown corruption kind '{value}'")),
                    }
                }
                "stale" => {
                    cfg.staleness = match value.split_once(':') {
                        None if value == "discard" => StalenessPolicy::Discard,
                        Some(("discount", gamma)) => StalenessPolicy::Discount {
                            gamma: gamma.parse().map_err(|e| bad(&e))?,
                        },
                        _ => return Err(format!("unknown staleness policy '{value}'")),
                    }
                }
                "maxnorm" => cfg.max_update_norm = Some(value.parse().map_err(|e| bad(&e))?),
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// The pre-sampled fault schedule of one run: one optional [`FaultKind`]
/// per `(round, client)` cell.
///
/// The plan is generated up front from `run_seed ^` [`FAULT_STREAM_TWEAK`]
/// in fixed round-major order, so it is identical regardless of which
/// clients any protocol actually selects — a scheduled fault simply goes
/// unobserved when its client sits the round out.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    schedule: Vec<Vec<Option<FaultKind>>>,
}

impl FaultPlan {
    /// Sample the schedule for `rounds × clients` cells, then overlay the
    /// scripted faults.
    pub fn generate(cfg: &FaultConfig, rounds: usize, clients: usize, run_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(run_seed ^ FAULT_STREAM_TWEAK);
        let mut schedule = vec![vec![None; clients]; rounds];
        for row in schedule.iter_mut() {
            for cell in row.iter_mut() {
                let u: f64 = rng.gen();
                *cell = if u < cfg.dropout {
                    Some(FaultKind::Dropout)
                } else if u < cfg.dropout + cfg.straggler {
                    let delay = rng.gen_range(1..=cfg.max_staleness);
                    Some(FaultKind::Straggler { delay })
                } else if u < cfg.dropout + cfg.straggler + cfg.corruption {
                    Some(FaultKind::Corruption(cfg.corruption_kind))
                } else {
                    None
                };
            }
        }
        for s in &cfg.scripted {
            if s.round < rounds && s.client < clients {
                schedule[s.round][s.client] = Some(s.kind);
            }
        }
        Self { schedule }
    }

    /// The fault scheduled for `(round, client)`, if any.
    pub fn fault_at(&self, round: usize, client: usize) -> Option<FaultKind> {
        self.schedule
            .get(round)
            .and_then(|row| row.get(client))
            .copied()
            .flatten()
    }

    /// Total number of scheduled fault cells (selected or not).
    pub fn num_scheduled(&self) -> usize {
        self.schedule
            .iter()
            .flat_map(|row| row.iter())
            .filter(|c| c.is_some())
            .count()
    }
}

/// What the server observed a fault *do* — the effect, not the schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEffect {
    /// A selected client never reported; its contribution was excluded and
    /// the aggregation weights renormalised over the survivors.
    Dropout,
    /// A selected client's report was held back; it arrives at `arrival`
    /// (`None` when the run ends first, in which case the bytes are never
    /// transferred).
    StragglerHeld {
        /// Round the stale report will arrive in, if any.
        arrival: Option<usize>,
    },
    /// A stale report arrived and was aggregated with its weight scaled by
    /// `weight` (the [`StalenessPolicy::Discount`] multiplier).
    StaleApplied {
        /// Rounds late.
        staleness: usize,
        /// Weight multiplier applied before renormalisation.
        weight: f64,
    },
    /// A stale report arrived (its bytes count as uplink) and was thrown
    /// away per [`StalenessPolicy::Discard`].
    StaleDiscarded {
        /// Rounds late.
        staleness: usize,
    },
    /// An arriving update was rejected by the server-side guard:
    /// `non_finite` reports whether the flattened delta failed the finite
    /// check (vs. exceeding [`FaultConfig::max_update_norm`]).
    CorruptionRejected {
        /// Whether the rejection was the non-finite check (vs. the norm
        /// bound).
        non_finite: bool,
    },
}

/// One structured fault record, as carried on
/// [`RoundEvent::faults`](crate::RoundEvent) and `RunResult::faults`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultObserved {
    /// Round the effect was observed in (for stale effects this is the
    /// arrival round, not the round the client was selected in).
    pub round: usize,
    /// The affected client.
    pub client: usize,
    /// What the server observed.
    pub effect: FaultEffect,
}

impl FaultObserved {
    /// Whether this record means the client failed to contribute a usable
    /// fresh report this round (dropout, held straggler, rejected update)
    /// — the condition under which activation-aware protocols treat the
    /// client as inactive.
    pub fn is_client_failure(&self) -> bool {
        matches!(
            self.effect,
            FaultEffect::Dropout
                | FaultEffect::StragglerHeld { .. }
                | FaultEffect::CorruptionRejected { .. }
        )
    }
}

/// The renormalised aggregation weights over a survivor subset:
/// `w_i / Σ_j w_j` (all zeros when the subset is empty or weightless).
///
/// This is the invariant the chaos harness pins: however many clients a
/// round loses, the weights of whoever remains always sum to 1.
pub fn renormalize(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return vec![0.0; weights.len()];
    }
    weights.iter().map(|w| w / total).collect()
}

/// Mangle a client's return per the corruption kind: the returned params
/// become `θ + f(θ_i - θ)` with `f` poisoning or scaling the update, and
/// `unit_delta` is recomputed so the corruption is visible to the driver's
/// detection checks exactly as it would be to a real server.
pub fn corrupt_return(ret: &mut ClientReturn, broadcast: &ParamSet, kind: Corruption) {
    let poison = match kind {
        Corruption::NaN => Some(f32::NAN),
        Corruption::Inf => Some(f32::INFINITY),
        Corruption::Garbage { .. } => None,
    };
    match poison {
        Some(v) => {
            for (_, p) in ret.params.iter_mut() {
                if let Some(first) = p.value_mut().as_mut_slice().first_mut() {
                    *first = v;
                }
            }
        }
        None => {
            let Corruption::Garbage { scale } = kind else {
                unreachable!()
            };
            for ((_, p), (_, b)) in ret.params.iter_mut().zip(broadcast.iter()) {
                for (x, &base) in p
                    .value_mut()
                    .as_mut_slice()
                    .iter_mut()
                    .zip(b.value().as_slice())
                {
                    *x = base + scale * (*x - base);
                }
            }
        }
    }
    ret.unit_delta = ret.params.unit_l2_distances(broadcast);
}

/// Server-side guard applied to every arriving report (fresh or stale):
/// reject non-finite updates (the flattened-delta check) and, when
/// [`FaultConfig::max_update_norm`] is set, finite updates whose whole
/// L2 norm exceeds the bound. Returns the rejection effect, or `None`
/// when the report is admissible.
pub fn detect_rejection(ret: &ClientReturn, cfg: &FaultConfig) -> Option<FaultEffect> {
    let non_finite = ret.unit_delta.iter().any(|d| !d.is_finite())
        || ret.params.iter().any(|(_, p)| p.value().has_non_finite());
    if non_finite {
        return Some(FaultEffect::CorruptionRejected { non_finite: true });
    }
    if let Some(bound) = cfg.max_update_norm {
        let norm = ret
            .unit_delta
            .iter()
            .map(|&d| f64::from(d) * f64::from(d))
            .sum::<f64>()
            .sqrt();
        if norm > f64::from(bound) {
            return Some(FaultEffect::CorruptionRejected { non_finite: false });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_rates() {
        assert!(FaultConfig::default().validate().is_ok());
        assert!(FaultConfig::dropout_only(1.0).validate().is_ok());
        assert!(FaultConfig::dropout_only(1.1).validate().is_err());
        assert!(FaultConfig::dropout_only(-0.1).validate().is_err());
        assert!(FaultConfig::dropout_only(f64::NAN).validate().is_err());
        let sum_over = FaultConfig {
            dropout: 0.5,
            straggler: 0.4,
            corruption: 0.2,
            ..Default::default()
        };
        assert!(sum_over.validate().is_err(), "rates summing over 1");
    }

    #[test]
    fn validate_rejects_zero_staleness_and_bad_policies() {
        let with = |f: &dyn Fn(&mut FaultConfig)| {
            let mut cfg = FaultConfig::default();
            f(&mut cfg);
            cfg.validate()
        };
        assert!(with(&|c| c.max_staleness = 0).is_err(), "staleness bound 0");
        assert!(with(&|c| c.staleness = StalenessPolicy::Discount { gamma: 0.0 }).is_err());
        assert!(with(&|c| c.staleness = StalenessPolicy::Discount { gamma: 1.5 }).is_err());
        assert!(with(&|c| c.staleness = StalenessPolicy::Discount { gamma: 1.0 }).is_ok());
        assert!(with(&|c| c.corruption_kind = Corruption::Garbage { scale: 0.0 }).is_err());
        assert!(with(&|c| c.corruption_kind = Corruption::Garbage {
            scale: f32::INFINITY,
        })
        .is_err());
        assert!(with(&|c| c.max_update_norm = Some(-1.0)).is_err());
        assert!(
            with(&|c| c.scripted.push(ScriptedFault {
                round: 0,
                client: 0,
                kind: FaultKind::Straggler { delay: 0 },
            }))
            .is_err(),
            "scripted delay 0"
        );
    }

    #[test]
    fn plan_is_deterministic_and_respects_rates() {
        let cfg = FaultConfig {
            dropout: 0.3,
            straggler: 0.2,
            max_staleness: 3,
            corruption: 0.1,
            ..Default::default()
        };
        let a = FaultPlan::generate(&cfg, 20, 8, 7);
        let b = FaultPlan::generate(&cfg, 20, 8, 7);
        for r in 0..20 {
            for c in 0..8 {
                assert_eq!(a.fault_at(r, c), b.fault_at(r, c));
            }
        }
        let other = FaultPlan::generate(&cfg, 20, 8, 8);
        let same = (0..20).all(|r| (0..8).all(|c| a.fault_at(r, c) == other.fault_at(r, c)));
        assert!(!same, "different seeds must give different schedules");
        // Roughly 60% of 160 cells carry a fault; delays stay in bounds.
        let n = a.num_scheduled();
        assert!((40..150).contains(&n), "implausible fault count {n}");
        for r in 0..20 {
            for c in 0..8 {
                if let Some(FaultKind::Straggler { delay }) = a.fault_at(r, c) {
                    assert!((1..=3).contains(&delay));
                }
            }
        }
    }

    #[test]
    fn zero_rates_schedule_nothing() {
        let plan = FaultPlan::generate(&FaultConfig::default(), 10, 5, 3);
        assert_eq!(plan.num_scheduled(), 0);
        assert_eq!(plan.fault_at(100, 100), None, "out of range is None");
    }

    #[test]
    fn scripted_faults_override_the_sampled_cell() {
        let cfg = FaultConfig {
            dropout: 1.0,
            scripted: vec![ScriptedFault {
                round: 1,
                client: 2,
                kind: FaultKind::Corruption(Corruption::NaN),
            }],
            ..Default::default()
        };
        let plan = FaultPlan::generate(&cfg, 3, 4, 0);
        assert_eq!(
            plan.fault_at(1, 2),
            Some(FaultKind::Corruption(Corruption::NaN))
        );
        assert_eq!(plan.fault_at(0, 0), Some(FaultKind::Dropout));
    }

    #[test]
    fn spec_parser_round_trips_every_knob() {
        let cfg: FaultConfig = "drop=0.2, straggle=0.1, delay=3, corrupt=0.05, \
             kind=garbage:1e6, stale=discount:0.5, maxnorm=10"
            .parse()
            .unwrap();
        assert_eq!(cfg.dropout, 0.2);
        assert_eq!(cfg.straggler, 0.1);
        assert_eq!(cfg.max_staleness, 3);
        assert_eq!(cfg.corruption, 0.05);
        assert_eq!(cfg.corruption_kind, Corruption::Garbage { scale: 1e6 });
        assert_eq!(cfg.staleness, StalenessPolicy::Discount { gamma: 0.5 });
        assert_eq!(cfg.max_update_norm, Some(10.0));
        let nan: FaultConfig = "corrupt=0.1,kind=nan,stale=discard".parse().unwrap();
        assert_eq!(nan.corruption_kind, Corruption::NaN);
        assert_eq!(nan.staleness, StalenessPolicy::Discard);
        let inf: FaultConfig = "kind=inf".parse().unwrap();
        assert_eq!(inf.corruption_kind, Corruption::Inf);
    }

    #[test]
    fn spec_parser_rejects_garbage_specs() {
        assert!("drop".parse::<FaultConfig>().is_err(), "missing value");
        assert!("drop=1.5".parse::<FaultConfig>().is_err(), "validated");
        assert!("delay=0".parse::<FaultConfig>().is_err());
        assert!("frob=1".parse::<FaultConfig>().is_err(), "unknown key");
        assert!("kind=frob".parse::<FaultConfig>().is_err());
        assert!("stale=discount".parse::<FaultConfig>().is_err());
        assert!("drop=abc".parse::<FaultConfig>().is_err());
    }

    #[test]
    fn staleness_weights_decay_per_round() {
        let p = StalenessPolicy::Discount { gamma: 0.5 };
        assert_eq!(p.weight(1), Some(0.5));
        assert_eq!(p.weight(3), Some(0.125));
        assert_eq!(StalenessPolicy::Discard.weight(1), None);
    }

    #[test]
    fn renormalize_sums_to_one_or_zero() {
        let w = renormalize(&[1.0, 3.0]);
        assert_eq!(w, vec![0.25, 0.75]);
        assert_eq!(renormalize(&[]), Vec::<f64>::new());
        assert_eq!(renormalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
