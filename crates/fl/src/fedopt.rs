//! FedOpt (Reddi et al., ICLR 2021): server-side adaptive optimisation —
//! here the FedAdam member of the family.
//!
//! Clients run plain FedAvg-style local training; the server treats the
//! aggregated model movement as a pseudo-gradient
//! `Δ^t = avg(θᵢ) − θ^t` and applies one bias-corrected Adam step to the
//! global parameters in
//! [`post_aggregate`](crate::FlProtocol::post_aggregate):
//!
//! ```text
//! m ← β₁·m + (1−β₁)·Δ       v ← β₂·v + (1−β₂)·Δ²
//! θ^{t+1} = θ^t + η_s · m̂ / (√v̂ + ε)
//! ```
//!
//! with `m̂ = m/(1−β₁^t)`, `v̂ = v/(1−β₂^t)`. The bias-correction powers
//! are maintained by repeated multiplication (like the async driver's
//! `γ^staleness`), so the update is a pure function of the round history —
//! no `powf`, bit-stable across platforms. State lives in
//! [`FedAdamProtocol`] (one instance per run): the f64 moment vectors and
//! the broadcast stash `θ^t` cloned at selection time. On empty rounds
//! (total dropout) `Δ = 0`: the moments decay and the server still steps
//! deterministically on the decayed momentum.

use crate::driver::RoundDriver;
use crate::protocol::{FlProtocol, StepOutcome};
use crate::system::{ClientReturn, FlSystem, RunResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// FedAdam hyper-parameters (the FedOpt paper's server-side Adam). Build
/// per-run protocol state with [`FedAdam::protocol`].
#[derive(Clone, Debug)]
pub struct FedAdam {
    /// Server learning rate `η_s` on the pseudo-gradient.
    pub server_lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Adaptivity floor ε (the FedOpt paper uses a much larger ε than
    /// client-side Adam — `1e-3` by default here).
    pub epsilon: f64,
    /// Fraction of clients randomly activated each round.
    pub client_fraction: f64,
}

impl Default for FedAdam {
    fn default() -> Self {
        Self {
            server_lr: 0.01,
            beta1: 0.9,
            beta2: 0.99,
            epsilon: 1e-3,
            client_fraction: 1.0,
        }
    }
}

impl FedAdam {
    /// FedAdam with the given server learning rate and the paper's default
    /// moments (β₁ = 0.9, β₂ = 0.99, ε = 1e-3), full participation.
    pub fn new(server_lr: f64) -> Self {
        Self {
            server_lr,
            ..Self::default()
        }
    }

    /// Validate hyper-parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.server_lr.is_finite() && self.server_lr > 0.0) {
            return Err(format!(
                "server_lr must be finite and positive, got {}",
                self.server_lr
            ));
        }
        if !(self.beta1 >= 0.0 && self.beta1 < 1.0) {
            return Err(format!("beta1 must be in [0,1), got {}", self.beta1));
        }
        if !(self.beta2 >= 0.0 && self.beta2 < 1.0) {
            return Err(format!("beta2 must be in [0,1), got {}", self.beta2));
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(format!(
                "epsilon must be finite and positive, got {}",
                self.epsilon
            ));
        }
        if !(self.client_fraction > 0.0 && self.client_fraction <= 1.0) {
            return Err(format!(
                "client_fraction must be in (0,1], got {}",
                self.client_fraction
            ));
        }
        Ok(())
    }

    /// A fresh per-run [`FlProtocol`] state machine for these
    /// hyper-parameters.
    pub fn protocol(&self) -> FedAdamProtocol {
        FedAdamProtocol {
            cfg: self.clone(),
            m: Vec::new(),
            v: Vec::new(),
            beta1_pow: 1.0,
            beta2_pow: 1.0,
            broadcast: Vec::new(),
        }
    }

    /// Run `cfg.rounds` rounds through the shared [`RoundDriver`].
    ///
    /// # Panics
    ///
    /// On an invalid configuration (see [`FedAdam::validate`]); use the
    /// driver directly to handle the error.
    pub fn run(&self, system: &mut FlSystem) -> RunResult {
        RoundDriver::new()
            .run(&mut self.protocol(), system)
            // fedda-lint: allow(panic-path, reason = "documented panic in the method contract above; fallible callers use RoundDriver directly")
            .expect("invalid FedAdam configuration")
    }
}

/// One bias-corrected scalar Adam update on a pseudo-gradient `delta`:
/// returns the updated `(m, v, step)` where `step` is the parameter
/// increment `lr·m̂/(√v̂ + ε)`. `bias1`/`bias2` are the correction
/// denominators `1 − β₁^t` / `1 − β₂^t` of the *current* step. Pure helper
/// — the protocol applies exactly this function per scalar, and the
/// property tests check it against an independent reference.
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    m: f64,
    v: f64,
    delta: f64,
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    bias1: f64,
    bias2: f64,
) -> (f64, f64, f64) {
    let m_next = beta1 * m + (1.0 - beta1) * delta;
    let v_next = beta2 * v + (1.0 - beta2) * delta * delta;
    let m_hat = m_next / bias1;
    let v_hat = v_next / bias2;
    (m_next, v_next, lr * m_hat / (v_hat.sqrt() + epsilon))
}

/// Per-run FedAdam state machine (see [`FedAdam::protocol`]).
#[derive(Clone, Debug)]
pub struct FedAdamProtocol {
    cfg: FedAdam,
    /// First moment, `ParamSet::flatten` order.
    m: Vec<f64>,
    /// Second moment.
    v: Vec<f64>,
    /// Running β₁^t (repeated product — no `powf`).
    beta1_pow: f64,
    /// Running β₂^t.
    beta2_pow: f64,
    /// Broadcast parameters `θ^t` stashed at selection time.
    broadcast: Vec<f32>,
}

impl FedAdamProtocol {
    /// The server moment vectors `(m, v)` — exposed for the chaos
    /// harness's finiteness checks.
    pub fn moments(&self) -> (&[f64], &[f64]) {
        (&self.m, &self.v)
    }
}

impl FlProtocol for FedAdamProtocol {
    fn name(&self) -> String {
        format!("FedAdam(lr={})", self.cfg.server_lr)
    }

    fn validate(&self) -> Result<(), String> {
        self.cfg.validate()
    }

    fn seed_tweak(&self) -> u64 {
        0xFED0_ADA3
    }

    fn begin(&mut self, system: &FlSystem, _rng: &mut StdRng) {
        let n = system.global.num_scalars();
        self.m = vec![0.0; n];
        self.v = vec![0.0; n];
        self.beta1_pow = 1.0;
        self.beta2_pow = 1.0;
        self.broadcast = system.global.flatten();
    }

    fn select_clients(&mut self, system: &FlSystem, _round: usize, rng: &mut StdRng) -> Vec<usize> {
        self.broadcast = system.global.flatten();
        let m = system.num_clients();
        let take = ((m as f64) * self.cfg.client_fraction).round().max(1.0) as usize;
        let mut order: Vec<usize> = (0..m).collect();
        order.shuffle(rng);
        let mut active = order[..take.min(m)].to_vec();
        active.sort_unstable();
        active
    }

    fn build_masks(
        &mut self,
        system: &FlSystem,
        active: &[usize],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<Vec<bool>> {
        system.full_masks(active.len())
    }

    fn post_aggregate(
        &mut self,
        system: &mut FlSystem,
        _active: &[usize],
        _returns: &[ClientReturn],
        _round: usize,
        _rng: &mut StdRng,
    ) -> StepOutcome {
        let cfg = &self.cfg;
        self.beta1_pow *= cfg.beta1;
        self.beta2_pow *= cfg.beta2;
        let (bias1, bias2) = (1.0 - self.beta1_pow, 1.0 - self.beta2_pow);
        let aggregated = system.global.flatten();
        let mut next = vec![0.0f32; aggregated.len()];
        for k in 0..aggregated.len() {
            // Pseudo-gradient: the aggregated model movement this round.
            let delta = f64::from(aggregated[k]) - f64::from(self.broadcast[k]);
            let (m, v, step) = adam_update(
                self.m[k],
                self.v[k],
                delta,
                cfg.server_lr,
                cfg.beta1,
                cfg.beta2,
                cfg.epsilon,
                bias1,
                bias2,
            );
            self.m[k] = m;
            self.v[k] = v;
            next[k] = (f64::from(self.broadcast[k]) + step) as f32;
        }
        system.global.load_flat(&next);
        StepOutcome::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;

    #[test]
    fn fedadam_trains_and_stays_finite() {
        let mut sys = tiny_system(3, 41);
        let result = FedAdam::default().run(&mut sys);
        let rounds = sys.config().rounds;
        assert_eq!(result.curve.len(), rounds);
        assert_eq!(
            result.comm.total_uplink_units(),
            rounds * 3 * sys.num_units()
        );
        assert!(result.final_eval.roc_auc > 0.0);
        assert!(!sys.global.has_non_finite());
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut s1 = tiny_system(3, 42);
        let mut s2 = tiny_system(3, 42);
        let r1 = FedAdam::default().run(&mut s1);
        let r2 = FedAdam::default().run(&mut s2);
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.roc_auc.to_bits(), b.roc_auc.to_bits());
        }
        assert_eq!(s1.global.flatten(), s2.global.flatten());
    }

    #[test]
    fn moments_track_the_pseudo_gradient() {
        let mut sys = tiny_system(2, 43);
        let mut proto = FedAdam::default().protocol();
        RoundDriver::new()
            .run(&mut proto, &mut sys)
            .expect("valid config");
        let (m, v) = proto.moments();
        assert!(m.iter().all(|x| x.is_finite()));
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
        assert!(
            m.iter().any(|&x| x != 0.0),
            "first moment must move when clients train"
        );
    }

    #[test]
    fn validation_pins_rejection_messages() {
        assert_eq!(
            FedAdam::new(0.0).validate().unwrap_err(),
            "server_lr must be finite and positive, got 0"
        );
        let bad = FedAdam {
            beta1: 1.0,
            ..FedAdam::default()
        };
        assert_eq!(bad.validate().unwrap_err(), "beta1 must be in [0,1), got 1");
        let bad = FedAdam {
            beta2: f64::NAN,
            ..FedAdam::default()
        };
        assert_eq!(
            bad.validate().unwrap_err(),
            "beta2 must be in [0,1), got NaN"
        );
        let bad = FedAdam {
            epsilon: 0.0,
            ..FedAdam::default()
        };
        assert_eq!(
            bad.validate().unwrap_err(),
            "epsilon must be finite and positive, got 0"
        );
        let bad = FedAdam {
            epsilon: f64::INFINITY,
            ..FedAdam::default()
        };
        assert_eq!(
            bad.validate().unwrap_err(),
            "epsilon must be finite and positive, got inf"
        );
        assert!(FedAdam::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid FedAdam configuration")]
    fn zero_server_lr_rejected_before_round_zero() {
        let mut sys = tiny_system(2, 44);
        let _ = FedAdam::new(0.0).run(&mut sys);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FedAdam::new(0.01).protocol().name(), "FedAdam(lr=0.01)");
    }
}
