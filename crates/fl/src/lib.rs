//! # fedda-fl
//!
//! The federated-learning layer of the FedDA reproduction: an in-process
//! simulated federation of heterograph clients plus the training protocols
//! the paper compares.
//!
//! * [`FlSystem`] — server + clients, parallel local updates (crossbeam),
//!   masked aggregation (Eq. 6), deterministic per-round evaluation and
//!   communication accounting (units *and* scalars, uplink and downlink);
//! * [`FedAvg`] — the baseline protocol, with the random client-fraction
//!   `C` and parameter-fraction `D` knobs of the motivating study (Fig. 2);
//! * [`FedDa`] — dynamic activation of clients and parameters
//!   (Algorithm 1), with the `Restart` (Alg. 2) and `Explore` (Alg. 3)
//!   reactivation strategies, the occupancy threshold `α`, and both mask
//!   update rules (§5.3 prose vs. literal Eq. 7);
//! * the protocol zoo — [`FedProx`] (μ-proximal local objective),
//!   [`FedDyn`] (dynamic regularization with the server `h` correction)
//!   and [`FedAdam`] (FedOpt's server-side adaptive optimiser), ported
//!   onto the same engine through the
//!   [`local_regularizer`](FlProtocol::local_regularizer) client-objective
//!   hook;
//! * [`baselines`] — centralised `Global` and isolated `Local` training;
//! * [`analysis`] — the closed-form efficiency model of §5.4.3
//!   (Eqs. 8–11);
//! * [`faults`] — deterministic fault injection (client dropout, straggler
//!   delay, update corruption) with its own RNG stream, structured
//!   [`FaultObserved`] records and graceful degradation guarantees
//!   (exercised by the `chaos` test harness);
//! * [`compress`] — the uplink [`Compressor`] stage (lossless `Identity`,
//!   `i8`/`f16` scalar quantization, magnitude top-k sparsification):
//!   mask-then-compress at dispatch, decompress at server arrival, with
//!   the comm ledger charging compressed bytes.
//!
//! Every round protocol implements [`FlProtocol`] and executes on the
//! event-driven simulation [`runtime`] (deterministic virtual clock,
//! ordered event queue, worker pool, bounded mailbox) through one of two
//! drivers: the synchronous [`RoundDriver`] facade — the canonical
//! lockstep round loop (broadcast, parallel local round, masked
//! aggregation, comm accounting, evaluation cadence), bit-identical to
//! its pre-runtime form — or the buffered-asynchronous [`AsyncDriver`]
//! (aggregate-on-K-arrivals with `γ^staleness` discounting). Both stream
//! structured per-round [`RoundEvent`]s to a pluggable [`EventSink`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
mod async_driver;
pub mod baselines;
mod comm;
pub mod compress;
mod driver;
mod events;
pub mod faults;
mod fedavg;
mod fedda;
pub mod feddyn;
pub mod fedopt;
pub mod fedprox;
mod protocol;
pub mod runtime;
mod system;

pub use async_driver::{AsyncConfig, AsyncDriver, RuntimeMode};
pub use baselines::GlobalProtocol;
pub use comm::{CommLog, RoundComm};
pub use compress::{Compressed, Compression, Compressor, Delta, InFlight, UplinkCharge};
pub use driver::RoundDriver;
pub use events::{EventSink, MemorySink, RoundEvent, StderrSink};
pub use faults::{
    renormalize, Corruption, FaultConfig, FaultEffect, FaultKind, FaultObserved, FaultPlan,
    ScriptedFault, StalenessPolicy,
};
pub use fedavg::FedAvg;
pub use fedda::{FedDa, FedDaProtocol, MaskRule, Reactivation};
pub use feddyn::{FedDyn, FedDynProtocol};
pub use fedopt::{FedAdam, FedAdamProtocol};
pub use fedprox::FedProx;
pub use protocol::{FlProtocol, LocalPenalty, StepOutcome};
pub use system::{
    ActivationSnapshot, AggWeighting, Client, ClientReturn, FlConfig, FlSystem, PrivacyConfig,
    RoundEval, RunResult, WeightedReturn,
};
