//! Uplink gradient compression — the `Compressor` stage of the drivers.
//!
//! FedDA's parameter masks already sparsify the uplink at *unit*
//! granularity; this module adds the classic scalar-granularity levers on
//! top: lossless identity framing, scalar quantization (`i8` / `f16` with
//! a per-unit scale) and magnitude top-k sparsification. The order is
//! **mask-then-compress**: the protocol's unit mask decides *which* units a
//! client reports, the compressor then decides *how many bytes* each
//! reported unit costs. The comm ledger charges the compressed byte count
//! when the report **arrives** at the server (never at dispatch), so the
//! paper's efficiency accounting (Eqs. 8–11) extends to compression
//! ratios: `uplink_bytes` on [`RoundComm`](crate::RoundComm) is the wire
//! cost after both masking and compression.
//!
//! Every codec is deterministic and RNG-free: compressing the same update
//! twice yields byte-identical payloads, so seeded runs stay bit-exact.
//! [`Identity`] is exactly lossless — it stores the raw `f32` bit patterns
//! of the masked units' updated values — which is what lets the golden
//! tests pin that an `Identity`-compressed run is bit-for-bit the
//! no-compressor run.
//!
//! Corruption semantics: compression must not *launder* a corrupted
//! update into an innocuous one. Non-finite deltas survive every codec —
//! `Identity` and `QuantF16` preserve non-finite values structurally,
//! `QuantI8` poisons its per-unit scale to NaN when any masked delta is
//! non-finite, and `TopK`'s total order ranks NaN above every finite
//! magnitude — so the server-side rejection guard still fires on the
//! *decompressed* report.

use crate::runtime::Delivery;
use crate::system::ClientReturn;
use fedda_tensor::ParamSet;
use std::sync::Arc;

/// A client update awaiting compression: the locally-updated parameters,
/// the broadcast reference they were trained from, and the unit mask the
/// server requested (mask-then-compress: only masked units are encoded).
pub struct Delta<'a> {
    /// Locally-updated parameters (the client's report).
    pub updated: &'a ParamSet,
    /// The broadcast parameters the update was computed against.
    pub reference: &'a ParamSet,
    /// One bool per unit: which units the server requested.
    pub mask: &'a [bool],
}

/// Wire payload of one compressed unit.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Raw `f32` bit patterns of the updated values (lossless; 4 bytes per
    /// scalar).
    Raw(Vec<u32>),
    /// IEEE 754 binary16 bits of the per-scalar delta `updated − reference`
    /// (2 bytes per scalar).
    F16(Vec<u16>),
    /// Per-unit linearly-quantized deltas: `delta ≈ code · scale` with
    /// `scale = max|delta| / 127` (1 byte per scalar; the scale rides as
    /// metadata and is excluded from the byte charge, see
    /// [`Payload::wire_bytes`]).
    I8 {
        /// Per-unit dequantization step; NaN when the unit carried any
        /// non-finite delta (the corruption-survival poison).
        scale: f32,
        /// Quantized deltas in `[-127, 127]`.
        codes: Vec<i8>,
    },
    /// Sparse `(position, f32 delta bits)` pairs of the k
    /// largest-magnitude deltas (8 bytes per kept scalar).
    TopK(Vec<(u32, u32)>),
}

impl Payload {
    /// Encoded entries — what `uplink_scalars` counts for this unit.
    pub fn num_entries(&self) -> usize {
        match self {
            Payload::Raw(v) => v.len(),
            Payload::F16(v) => v.len(),
            Payload::I8 { codes, .. } => codes.len(),
            Payload::TopK(v) => v.len(),
        }
    }

    /// Wire bytes of the payload proper. Framing (unit index, lengths) and
    /// the `I8` scale are metadata, excluded by convention — the same
    /// convention under which the uncompressed path charges `4 ×
    /// uplink_scalars` and nothing for the mask itself.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::Raw(v) => 4 * v.len(),
            Payload::F16(v) => 2 * v.len(),
            Payload::I8 { codes, .. } => codes.len(),
            Payload::TopK(v) => 8 * v.len(),
        }
    }

    /// Decode in place: `out` must be pre-filled with the unit's reference
    /// values (dense codecs add their delta; `Raw` overwrites).
    pub fn decode_into(&self, out: &mut [f32]) {
        match self {
            Payload::Raw(bits) => {
                for (o, &b) in out.iter_mut().zip(bits) {
                    *o = f32::from_bits(b);
                }
            }
            Payload::F16(halves) => {
                for (o, &h) in out.iter_mut().zip(halves) {
                    *o += f16_bits_to_f32(h);
                }
            }
            Payload::I8 { scale, codes } => {
                for (o, &c) in out.iter_mut().zip(codes) {
                    // A NaN-poisoned scale turns every scalar NaN here
                    // (0 · NaN = NaN), so the rejection guard still fires.
                    *o += f32::from(c) * *scale;
                }
            }
            Payload::TopK(pairs) => {
                for &(pos, bits) in pairs {
                    if let Some(o) = out.get_mut(pos as usize) {
                        *o += f32::from_bits(bits);
                    }
                }
            }
        }
    }
}

/// One masked unit's compressed report.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedUnit {
    /// Unit index (position in the [`ParamSet`] iteration order).
    pub unit: usize,
    /// Scalars in the uncompressed unit.
    pub len: usize,
    /// The encoded payload.
    pub payload: Payload,
}

/// A whole compressed client report: one entry per masked unit that
/// encoded to a non-empty payload, in ascending unit order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Compressed {
    /// Per-unit payloads, ascending by `unit`.
    pub units: Vec<CompressedUnit>,
}

impl Compressed {
    /// The ledger charge of this report: units / scalars / bytes actually
    /// on the wire.
    pub fn charge(&self) -> UplinkCharge {
        let mut charge = UplinkCharge::default();
        for cu in &self.units {
            charge.units += 1;
            charge.scalars += cu.payload.num_entries();
            charge.bytes += cu.payload.wire_bytes();
        }
        charge
    }

    /// Rebuild a full [`ParamSet`] from the compressed report: a clone of
    /// `reference` with every encoded unit decoded over it. Units the mask
    /// excluded (or the codec dropped entirely) keep the reference values —
    /// they were never transmitted.
    pub fn reconstruct(&self, reference: &ParamSet) -> ParamSet {
        let mut out = reference.clone();
        let mut cursor = 0usize;
        for (k, (_, p)) in out.iter_mut().enumerate() {
            if cursor < self.units.len() && self.units[cursor].unit == k {
                self.units[cursor]
                    .payload
                    .decode_into(p.value_mut().as_mut_slice());
                cursor += 1;
            }
        }
        out
    }
}

/// What one arrived report costs on the comm ledger. Computed at dispatch
/// (it is a pure function of the report), charged at arrival — a report
/// the run outlives is never charged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UplinkCharge {
    /// Units with any payload on the wire.
    pub units: usize,
    /// Encoded entries (the paper's scalar measure, post-compression).
    pub scalars: usize,
    /// Payload bytes on the wire.
    pub bytes: usize,
}

impl UplinkCharge {
    /// The uncompressed charge of a masked report: every masked unit at
    /// full size, 4 bytes per `f32` scalar. This is the accounting the
    /// ledger used before compression existed, bit-for-bit.
    pub fn from_mask(mask: &[bool], unit_sizes: &[usize]) -> Self {
        let mut units = 0usize;
        let mut scalars = 0usize;
        for (k, &m) in mask.iter().enumerate() {
            if m {
                units += 1;
                scalars += unit_sizes.get(k).copied().unwrap_or(0);
            }
        }
        Self {
            units,
            scalars,
            bytes: 4 * scalars,
        }
    }
}

/// A compressed report in transit with the dispatch-time broadcast it was
/// encoded against, so the server can decode a stale arrival against the
/// *right* reference even after the global model has moved on.
pub struct InFlight {
    /// The encoded report.
    pub report: Compressed,
    /// The broadcast parameters of the dispatch round/version.
    pub reference: Arc<ParamSet>,
}

/// Decode a delivery's compressed payload (if any) into its
/// [`ClientReturn`], exactly once, at the server arrival point. The
/// decompressed parameters replace the in-transit ones and the unit deltas
/// are recomputed against the dispatch-time reference, so downstream
/// consumers — the rejection guard, Eq. 6 aggregation, FedDA's mask
/// scoring — all see the post-decompression numbers.
pub fn decode_arrival(d: &mut Delivery) {
    if let Some(inflight) = d.payload.take() {
        let params = inflight.report.reconstruct(&inflight.reference);
        let unit_delta = params.unit_l2_distances(&inflight.reference);
        d.ret = ClientReturn {
            client: d.client,
            params,
            unit_delta,
        };
    }
}

/// A deterministic, RNG-free uplink codec. Implementations provide the
/// per-unit encoding; `compress`/`decompress` handle masking, framing and
/// reconstruction uniformly.
pub trait Compressor {
    /// Encode one masked unit given its updated and reference values.
    /// Returning an empty payload drops the unit from the wire entirely
    /// (top-k with `k = 0`): it is neither transmitted nor charged.
    fn encode_unit(&self, updated: &[f32], reference: &[f32]) -> Payload;

    /// Compress a masked client update: encode every masked unit, skip
    /// units whose payload came back empty.
    fn compress(&self, delta: &Delta<'_>) -> Compressed {
        let mut units = Vec::new();
        for (k, ((_, up), (_, rf))) in delta.updated.iter().zip(delta.reference.iter()).enumerate()
        {
            if !delta.mask.get(k).copied().unwrap_or(false) {
                continue;
            }
            let payload = self.encode_unit(up.value().as_slice(), rf.value().as_slice());
            if payload.num_entries() == 0 && !up.is_empty() {
                continue;
            }
            units.push(CompressedUnit {
                unit: k,
                len: up.len(),
                payload,
            });
        }
        Compressed { units }
    }

    /// Decode a compressed report against the broadcast it was encoded
    /// from. Untransmitted units keep the reference values.
    fn decompress(&self, compressed: &Compressed, reference: &ParamSet) -> ParamSet {
        compressed.reconstruct(reference)
    }
}

/// Lossless framing: raw `f32` bits of every masked scalar. Same bytes as
/// the uncompressed path; pins the compression plumbing as bit-exact.
pub struct Identity;

impl Compressor for Identity {
    fn encode_unit(&self, updated: &[f32], _reference: &[f32]) -> Payload {
        Payload::Raw(updated.iter().map(|v| v.to_bits()).collect())
    }
}

/// Per-unit linear `i8` quantization of the delta: `scale = max|delta| /
/// 127`, codes rounded to nearest. 1 byte per scalar (4× smaller than
/// raw). Any non-finite delta poisons the unit's scale to NaN so
/// corruption survives the codec.
pub struct QuantI8;

impl Compressor for QuantI8 {
    fn encode_unit(&self, updated: &[f32], reference: &[f32]) -> Payload {
        let mut max_abs = 0.0f32;
        let mut finite = true;
        for (&u, &r) in updated.iter().zip(reference) {
            let d = u - r;
            if !d.is_finite() {
                finite = false;
            }
            max_abs = max_abs.max(d.abs());
        }
        let scale = if finite { max_abs / 127.0 } else { f32::NAN };
        let codes = updated
            .iter()
            .zip(reference)
            .map(|(&u, &r)| {
                // A zero or NaN scale encodes everything as 0; decode then
                // reproduces the reference exactly (zero scale) or NaN
                // (poisoned scale).
                if scale > 0.0 {
                    let q = (f64::from(u - r) / f64::from(scale))
                        .round()
                        .clamp(-127.0, 127.0);
                    i8::try_from(q as i64).unwrap_or(0)
                } else {
                    0
                }
            })
            .collect();
        Payload::I8 { scale, codes }
    }
}

/// IEEE 754 binary16 quantization of the delta (round-to-nearest-even).
/// 2 bytes per scalar; non-finite deltas map to non-finite halves.
pub struct QuantF16;

impl Compressor for QuantF16 {
    fn encode_unit(&self, updated: &[f32], reference: &[f32]) -> Payload {
        Payload::F16(
            updated
                .iter()
                .zip(reference)
                .map(|(&u, &r)| f32_to_f16_bits(u - r))
                .collect(),
        )
    }
}

/// Magnitude top-k sparsification: per unit, keep the `floor(frac · len)`
/// largest-|delta| scalars as `(position, f32 bits)` pairs. Ties break by
/// ascending index (a total order — fedda-lint D4 clean) and NaN ranks
/// above every finite magnitude, so corruption is always among the kept
/// entries.
pub struct TopK {
    /// Fraction of each unit's scalars to keep, in `(0, 0.5]` (above 0.5
    /// the 8-byte pairs would exceed the 4-byte-per-scalar raw encoding).
    pub frac: f64,
}

impl Compressor for TopK {
    fn encode_unit(&self, updated: &[f32], reference: &[f32]) -> Payload {
        let deltas: Vec<f32> = updated
            .iter()
            .zip(reference)
            .map(|(&u, &r)| u - r)
            .collect();
        let keep = top_k_positions(&deltas, k_of(self.frac, deltas.len()));
        Payload::TopK(
            keep.into_iter()
                .map(|i| (u32::try_from(i).unwrap_or(u32::MAX), deltas[i].to_bits()))
                .collect(),
        )
    }
}

/// Scalars kept per unit of `len` scalars at fraction `frac`.
pub fn k_of(frac: f64, len: usize) -> usize {
    (frac * len as f64).floor() as usize
}

/// Indices of the `k` largest-magnitude entries of `deltas`, returned in
/// ascending index order (the canonical wire order). Selection ranks by
/// `|delta|` descending under `total_cmp` — NaN above every finite value —
/// with ties broken by ascending index.
pub fn top_k_positions(deltas: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..deltas.len()).collect();
    idx.sort_by(|&a, &b| deltas[b].abs().total_cmp(&deltas[a].abs()).then(a.cmp(&b)));
    idx.truncate(k.min(deltas.len()));
    idx.sort_unstable();
    idx
}

/// Convert an `f32` to IEEE 754 binary16 bits, round-to-nearest-even.
/// Handles subnormals, signed zero, overflow to ±inf, and NaN (a payload
/// bit is kept so NaN stays NaN).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = (bits >> 16) & 0x8000;
    let exp = (bits >> 23) & 0xFF;
    let man = bits & 0x007F_FFFF;
    let h: u32 = if exp == 0xFF {
        // Inf / NaN; set a mantissa bit for NaN so it survives.
        sign | 0x7C00 | if man != 0 { 0x0200 } else { 0 }
    } else {
        let unbiased = i64::from(exp) - 127;
        if unbiased >= 16 {
            // Overflows binary16's range: ±inf.
            sign | 0x7C00
        } else if unbiased >= -14 {
            // Normal half.
            let mant = man >> 13;
            let rest = man & 0x1FFF;
            let mut h = sign | (u32::try_from(unbiased + 15).unwrap_or(0) << 10) | mant;
            if rest > 0x1000 || (rest == 0x1000 && (mant & 1) == 1) {
                // Round up; a mantissa carry rolls into the exponent (and
                // into ±inf at the top), which is exactly right.
                h += 1;
            }
            h
        } else if unbiased >= -25 {
            // Subnormal half: value = mant · 2^-24 after shifting.
            let full = man | 0x0080_0000;
            let shift = u32::try_from(-unbiased - 1).unwrap_or(24); // 14..=24
            let mant = full >> shift;
            let rem = full & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut h = sign | mant;
            if rem > half || (rem == half && (mant & 1) == 1) {
                h += 1;
            }
            h
        } else {
            // Too small for even a subnormal: signed zero.
            sign
        }
    };
    u16::try_from(h & 0xFFFF).unwrap_or(0)
}

/// Convert IEEE 754 binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let h = u32::from(h);
    let sign = (h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let man = h & 0x03FF;
    if exp == 0x1F {
        f32::from_bits(sign | 0x7F80_0000 | (man << 13))
    } else if exp == 0 {
        if man == 0 {
            f32::from_bits(sign)
        } else {
            // Subnormal half: exact as man · 2^-24.
            let mag = (man as f32) * f32::from_bits(0x3380_0000);
            if sign != 0 {
                -mag
            } else {
                mag
            }
        }
    } else {
        f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
    }
}

/// Which uplink codec a run uses (`FlConfig::compression`; `--compress` on
/// the CLI and bench binaries). `None` at the config level keeps the
/// pre-compression code path, bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Compression {
    /// Lossless raw-bits framing ([`Identity`]): same bytes as no
    /// compression, pins the plumbing as bit-exact.
    Identity,
    /// Per-unit linear `i8` quantization ([`QuantI8`]): 1 byte per scalar.
    QuantI8,
    /// binary16 quantization ([`QuantF16`]): 2 bytes per scalar.
    QuantF16,
    /// Magnitude top-k sparsification ([`TopK`]): 8 bytes per kept scalar.
    TopK {
        /// Fraction of each unit's scalars to keep, in `(0, 0.5]`.
        frac: f64,
    },
}

impl Compression {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let Compression::TopK { frac } = self {
            if !(frac.is_finite() && *frac > 0.0 && *frac <= 0.5) {
                return Err(format!("top-k fraction must be in (0, 0.5], got {frac}"));
            }
        }
        Ok(())
    }

    /// Instantiate the codec.
    pub fn build(&self) -> Box<dyn Compressor + Send + Sync> {
        match *self {
            Compression::Identity => Box::new(Identity),
            Compression::QuantI8 => Box::new(QuantI8),
            Compression::QuantF16 => Box::new(QuantF16),
            Compression::TopK { frac } => Box::new(TopK { frac }),
        }
    }

    /// The CLI spelling of this codec (`--compress <label>` round-trips).
    pub fn label(&self) -> String {
        match self {
            Compression::Identity => "ident".into(),
            Compression::QuantI8 => "q8".into(),
            Compression::QuantF16 => "f16".into(),
            Compression::TopK { frac } => format!("topk:{frac}"),
        }
    }
}

impl std::str::FromStr for Compression {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ident" => Ok(Compression::Identity),
            "q8" => Ok(Compression::QuantI8),
            "f16" => Ok(Compression::QuantF16),
            other => {
                if let Some(frac) = other.strip_prefix("topk:") {
                    let frac: f64 = frac
                        .parse()
                        .map_err(|e| format!("invalid top-k fraction {frac:?}: {e}"))?;
                    let c = Compression::TopK { frac };
                    c.validate()?;
                    Ok(c)
                } else {
                    Err(format!(
                        "unknown compressor {other:?} (expected ident|q8|f16|topk:<frac>)"
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_specials() {
        for x in [0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY, 1.0, -2.5] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {back}");
        }
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Overflow saturates to ±inf.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e30)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e30)), f32::NEG_INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(65504.0)), 65504.0);
        // Underflow to signed zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-30)).to_bits(), 0);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(-1e-30)).to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half up
        // (1 + 2^-10); the even mantissa (1.0) wins.
        let halfway = 1.0 + f32::from_bits(0x3A00_0000); // 2^-11
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway)), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + f32::from_bits(0x3A00_0001) * 1.001;
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(above)),
            1.0 + f32::from_bits(0x3A80_0000) // 1 + 2^-10
        );
    }

    #[test]
    fn f16_subnormals_are_exact_multiples_of_2_pow_minus_24() {
        let step = f32::from_bits(0x3380_0000); // 2^-24
        for m in [1u32, 2, 3, 511, 1023] {
            let x = (m as f32) * step;
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back, x, "subnormal {m} · 2^-24");
        }
    }

    #[test]
    fn i8_codec_is_exact_at_the_extremes_and_at_zero() {
        let reference = vec![0.0f32; 4];
        let updated = vec![1.27, -1.27, 0.0, 0.635];
        let p = QuantI8.encode_unit(&updated, &reference);
        match &p {
            Payload::I8 { scale, codes } => {
                assert!((scale - 0.01).abs() < 1e-9);
                assert_eq!(codes, &[127, -127, 0, 64]);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        let mut out = reference.clone();
        p.decode_into(&mut out);
        assert!((out[0] - 1.27).abs() < 1e-6);
        assert!((out[1] + 1.27).abs() < 1e-6);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn i8_zero_delta_unit_decodes_to_the_reference_exactly() {
        let reference = vec![3.5f32, -2.25, 0.125];
        let p = QuantI8.encode_unit(&reference, &reference);
        let mut out = reference.clone();
        p.decode_into(&mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn i8_poisons_the_scale_on_non_finite_deltas() {
        let reference = vec![0.0f32; 3];
        let updated = vec![1.0, f32::NAN, 2.0];
        let p = QuantI8.encode_unit(&updated, &reference);
        let mut out = reference.clone();
        p.decode_into(&mut out);
        assert!(
            out.iter().all(|v| v.is_nan()),
            "poisoned scale must corrupt every decoded scalar: {out:?}"
        );
    }

    #[test]
    fn topk_keeps_largest_magnitudes_with_index_tiebreak() {
        let deltas = [1.0f32, -3.0, 2.0, -2.0, 0.5];
        assert_eq!(top_k_positions(&deltas, 2), vec![1, 2]);
        // |2.0| ties |-2.0|: the lower index (2) wins.
        assert_eq!(top_k_positions(&deltas, 3), vec![1, 2, 3]);
        assert_eq!(top_k_positions(&deltas, 0), Vec::<usize>::new());
        assert_eq!(top_k_positions(&deltas, 99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn topk_ranks_nan_above_every_finite_magnitude() {
        let deltas = [1.0f32, f32::NAN, 1e30];
        assert_eq!(top_k_positions(&deltas, 1), vec![1]);
    }

    #[test]
    fn charge_formulas_are_exact_per_codec() {
        let raw = Compressed {
            units: vec![CompressedUnit {
                unit: 0,
                len: 6,
                payload: Payload::Raw(vec![0; 6]),
            }],
        };
        assert_eq!(
            raw.charge(),
            UplinkCharge {
                units: 1,
                scalars: 6,
                bytes: 24
            }
        );
        let mixed = Compressed {
            units: vec![
                CompressedUnit {
                    unit: 0,
                    len: 6,
                    payload: Payload::F16(vec![0; 6]),
                },
                CompressedUnit {
                    unit: 2,
                    len: 4,
                    payload: Payload::I8 {
                        scale: 0.0,
                        codes: vec![0; 4],
                    },
                },
                CompressedUnit {
                    unit: 3,
                    len: 10,
                    payload: Payload::TopK(vec![(0, 0), (7, 0)]),
                },
            ],
        };
        assert_eq!(
            mixed.charge(),
            UplinkCharge {
                units: 3,
                scalars: 6 + 4 + 2,
                bytes: 12 + 4 + 16
            }
        );
    }

    #[test]
    fn from_mask_matches_the_uncompressed_accounting() {
        let sizes = [3usize, 5, 7];
        let charge = UplinkCharge::from_mask(&[true, false, true], &sizes);
        assert_eq!(
            charge,
            UplinkCharge {
                units: 2,
                scalars: 10,
                bytes: 40
            }
        );
        assert_eq!(
            UplinkCharge::from_mask(&[], &sizes),
            UplinkCharge::default()
        );
    }

    #[test]
    fn compression_parses_and_round_trips_labels() {
        for s in ["ident", "q8", "f16", "topk:0.25"] {
            let c: Compression = s.parse().unwrap();
            assert_eq!(c.label(), s);
            assert!(c.validate().is_ok());
        }
        assert!("gzip".parse::<Compression>().is_err());
        assert!("topk:0".parse::<Compression>().is_err());
        assert!("topk:0.6".parse::<Compression>().is_err());
        assert!("topk:abc".parse::<Compression>().is_err());
        assert!(Compression::TopK { frac: f64::NAN }.validate().is_err());
    }

    #[test]
    fn k_of_floors() {
        assert_eq!(k_of(0.5, 5), 2);
        assert_eq!(k_of(0.25, 4), 1);
        assert_eq!(k_of(1e-6, 1000), 0);
    }
}
