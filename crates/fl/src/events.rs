//! Structured round events.
//!
//! The [`RoundDriver`](crate::RoundDriver) emits one [`RoundEvent`] per
//! communication round to a pluggable [`EventSink`], so a run's behaviour
//! (active set, mask density, comm volume, evaluation, wall-time) is
//! observable without scraping stdout. Sinks are deliberately dumb: the
//! driver owns the loop, a sink only records or renders.

use crate::comm::RoundComm;
use crate::faults::FaultObserved;
use crate::system::RoundEval;

/// Everything the driver knows about one finished round.
#[derive(Clone, Debug)]
pub struct RoundEvent {
    /// Round index (0-based).
    pub round: usize,
    /// Clients activated this round (sorted ascending for every built-in
    /// protocol).
    pub active_clients: Vec<usize>,
    /// Mean fraction of parameter units requested per active client
    /// (`0.0` when no client was active, e.g. the Global baseline).
    pub mask_density: f64,
    /// Uplink/downlink counters of the round.
    pub comm: RoundComm,
    /// Clients deactivated during the round (dynamic-activation protocols).
    pub deactivated: Vec<usize>,
    /// Clients reactivated during the round.
    pub reactivated: Vec<usize>,
    /// Whether a full activation reset fired this round.
    pub restarted: bool,
    /// Faults the driver observed this round (dropouts, held/arrived
    /// stragglers, rejected corruptions); empty when fault injection is
    /// off.
    pub faults: Vec<FaultObserved>,
    /// Global evaluation, when the round fell on the evaluation cadence
    /// (`FlConfig::eval_every`; the final round always evaluates).
    pub eval: Option<RoundEval>,
    /// Wall-clock time of the round in milliseconds (local updates,
    /// aggregation, protocol bookkeeping and evaluation).
    pub wall_ms: f64,
}

/// Receiver of per-round driver events.
///
/// Implementations must not assume evaluation data is present every round —
/// `eval` is `None` off the evaluation cadence.
pub trait EventSink {
    /// Called once before round 0 of a run.
    fn begin_run(&mut self, protocol: &str, rounds: usize) {
        let _ = (protocol, rounds);
    }

    /// Called after every round.
    fn on_round(&mut self, event: &RoundEvent);
}

/// Collects every event in memory — the test/analysis sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// `(protocol name, configured rounds)` per observed run, in order.
    pub runs: Vec<(String, usize)>,
    /// Every event, across runs, in emission order.
    pub events: Vec<RoundEvent>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for MemorySink {
    fn begin_run(&mut self, protocol: &str, rounds: usize) {
        self.runs.push((protocol.to_string(), rounds));
    }

    fn on_round(&mut self, event: &RoundEvent) {
        self.events.push(event.clone());
    }
}

/// Streams one compact line per round to stderr (keeps stdout clean for
/// tables and JSON reports).
#[derive(Debug, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn begin_run(&mut self, protocol: &str, rounds: usize) {
        eprintln!("[{protocol}] {rounds} rounds");
    }

    fn on_round(&mut self, event: &RoundEvent) {
        let eval = match &event.eval {
            Some(e) => format!("auc {:.4} mrr {:.4}", e.roc_auc, e.mrr),
            None => "-".into(),
        };
        let mut flags = match (event.restarted, event.deactivated.len()) {
            (true, _) => " restart".to_string(),
            (false, 0) => String::new(),
            (false, d) => format!(" -{d} client(s)"),
        };
        if !event.faults.is_empty() {
            flags.push_str(&format!(" !{} fault(s)", event.faults.len()));
        }
        eprintln!(
            "  r{:03} | active {:2} | density {:.2} | up {:6}u {:8}B / down {:6}u | {} | {:.1}ms{}",
            event.round,
            event.active_clients.len(),
            event.mask_density,
            event.comm.uplink_units,
            event.comm.uplink_bytes,
            event.comm.downlink_units,
            eval,
            event.wall_ms,
            flags,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: usize) -> RoundEvent {
        RoundEvent {
            round,
            active_clients: vec![0, 2],
            mask_density: 0.75,
            comm: RoundComm {
                active_clients: 2,
                uplink_units: 10,
                uplink_scalars: 100,
                uplink_bytes: 400,
                downlink_units: 20,
                downlink_scalars: 200,
            },
            deactivated: vec![],
            reactivated: vec![],
            restarted: false,
            faults: vec![],
            eval: None,
            wall_ms: 1.5,
        }
    }

    #[test]
    fn memory_sink_records_runs_and_events() {
        let mut sink = MemorySink::new();
        sink.begin_run("FedAvg", 3);
        sink.on_round(&event(0));
        sink.on_round(&event(1));
        sink.begin_run("FedDA 2 (Explore)", 2);
        sink.on_round(&event(0));
        assert_eq!(sink.runs.len(), 2);
        assert_eq!(sink.runs[0], ("FedAvg".to_string(), 3));
        assert_eq!(sink.events.len(), 3);
        assert_eq!(sink.events[1].round, 1);
    }

    #[test]
    fn stderr_sink_is_callable() {
        let mut sink = StderrSink;
        sink.begin_run("FedAvg", 1);
        sink.on_round(&event(0));
    }
}
