//! FedDA — dynamic activation of clients and parameters (Algorithm 1).
//!
//! Per round `t`:
//!
//! 1. the server broadcasts the global model to the activated clients
//!    `D_A^(t)` together with their request masks `I^(t)`;
//! 2. activated clients run `E` local epochs and return the requested
//!    parameter units;
//! 3. the server averages each unit over the clients that returned it
//!    (Eq. 6), keeping the previous value for unrequested units;
//! 4. for every *disentangled* unit `k ∈ [N_d]`, clients whose returned
//!    gradient was below the per-unit mean are not asked for `k` next round
//!    (§5.3, Eq. 7);
//! 5. clients whose remaining active units fall below `α · N_d` are
//!    deactivated (§5.3);
//! 6. a reactivation strategy restores exploration: `Restart` (Alg. 2)
//!    resets everything when fewer than `β_r · M` clients remain, `Explore`
//!    (Alg. 3) tops the active set back up to `β_e · M` with randomly
//!    chosen deactivated clients, skipping those deactivated this round.
//!
//! Steps 1–3 are the shared round loop owned by
//! [`RoundDriver`](crate::RoundDriver); steps 4–6 are FedDA's
//! [`FlProtocol`] hooks, implemented on [`FedDaProtocol`] (the per-run
//! state machine [`FedDa::protocol`] creates).

use crate::driver::RoundDriver;
use crate::faults::FaultObserved;
use crate::protocol::{FlProtocol, StepOutcome};
use crate::system::{ClientReturn, FlSystem, RunResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Client reactivation strategy (§5.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reactivation {
    /// Reset to all clients / all parameters when fewer than `beta_r * M`
    /// clients would be active next round.
    Restart {
        /// The `β_r` threshold in `(0, 1)`.
        beta_r: f64,
    },
    /// Keep at least `beta_e * M` clients active by randomly re-admitting
    /// deactivated clients (with a one-round cool-down for clients
    /// deactivated this round).
    Explore {
        /// The `β_e` threshold in `(0, 1)`.
        beta_e: f64,
    },
}

/// How the server decides a client's contribution to a unit was "trivial"
/// (step 4 above).
///
/// The paper fixes the threshold at the mean and explicitly leaves "other
/// settings to future work" (§5.3, footnote 2); the quantile and median
/// variants implement that future work and are compared in the `ablations`
/// bench.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum MaskRule {
    /// §5.3's prose rule (our default): deactivate unit `k` for client `i`
    /// when the L2 magnitude of its returned update for `k` is below the
    /// mean magnitude over the clients that returned `k` this round.
    #[default]
    GradientMean,
    /// Deactivate contributors below the median returned-gradient magnitude
    /// (exactly half the contributors survive each round).
    GradientMedian,
    /// Deactivate contributors below the `q`-quantile of returned-gradient
    /// magnitudes (`q = 0` disables masking, `q → 1` keeps only the single
    /// strongest contributor).
    GradientQuantile(
        /// The quantile in `[0, 1)`.
        f64,
    ),
    /// Eq. 7 as literally printed: deactivate when the aggregated value
    /// exceeds the client's returned value (compared via unit means, since
    /// our units are tensors).
    LiteralEq7,
}

impl MaskRule {
    /// The deactivation threshold over a set of contribution magnitudes,
    /// or `None` when the rule is not threshold-based.
    fn threshold(&self, magnitudes: &[f32]) -> Option<f32> {
        match *self {
            MaskRule::GradientMean => {
                Some(magnitudes.iter().sum::<f32>() / magnitudes.len() as f32)
            }
            MaskRule::GradientMedian => Some(quantile(magnitudes, 0.5)),
            MaskRule::GradientQuantile(q) => {
                // Range is enforced by `FedDa::validate()` before a run
                // starts; this is only a tripwire for callers that skip it.
                debug_assert!((0.0..1.0).contains(&q), "quantile must be in [0,1)");
                Some(quantile(magnitudes, q))
            }
            MaskRule::LiteralEq7 => None,
        }
    }
}

/// The `q`-quantile of a non-empty slice (linear interpolation between
/// order statistics).
fn quantile(values: &[f32], q: f64) -> f32 {
    debug_assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = (pos - lo as f64) as f32;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// FedDA hyper-parameters.
///
/// ```no_run
/// use fedda_fl::{FedDa, MaskRule, Reactivation};
/// // The paper's FedDA 2 with a custom exploration floor and the
/// // footnote-2 quantile threshold:
/// let fedda = FedDa {
///     strategy: Reactivation::Explore { beta_e: 0.5 },
///     alpha: 0.5,
///     mask_rule: MaskRule::GradientQuantile(0.4),
///     explore_cooldown: true,
/// };
/// assert!(fedda.validate().is_ok());
/// // fedda.run(&mut system) drives the federation.
/// ```
#[derive(Clone, Debug)]
pub struct FedDa {
    /// Reactivation strategy (the paper's FedDA 1 = `Restart`, FedDA 2 =
    /// `Explore`).
    pub strategy: Reactivation,
    /// Occupancy threshold `α`: a client keeping fewer than `α · N_d`
    /// active disentangled units is deactivated.
    pub alpha: f64,
    /// Mask-update rule.
    pub mask_rule: MaskRule,
    /// One-round cool-down before a just-deactivated client may be
    /// re-explored (§5.2; the ablation turns this off).
    pub explore_cooldown: bool,
}

impl FedDa {
    /// FedDA 1: `Restart` with the paper's best hyper-parameters
    /// (`β_r = 0.4`, `α = 0.5`).
    pub fn restart() -> Self {
        Self {
            strategy: Reactivation::Restart { beta_r: 0.4 },
            alpha: 0.5,
            mask_rule: MaskRule::default(),
            explore_cooldown: true,
        }
    }

    /// FedDA 2: `Explore` with the paper's best hyper-parameters
    /// (`β_e = 0.667`, `α = 0.5`).
    pub fn explore() -> Self {
        Self {
            strategy: Reactivation::Explore { beta_e: 0.667 },
            alpha: 0.5,
            mask_rule: MaskRule::default(),
            explore_cooldown: true,
        }
    }

    /// Validate hyper-parameters.
    pub fn validate(&self) -> Result<(), String> {
        let beta = match self.strategy {
            Reactivation::Restart { beta_r } => beta_r,
            Reactivation::Explore { beta_e } => beta_e,
        };
        // β ∈ (0,1), exclusive on both ends: β = 0 would disable
        // reactivation entirely, which the docs rule out.
        if beta <= 0.0 || beta >= 1.0 || beta.is_nan() {
            return Err(format!("beta must be in (0,1), got {beta}"));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("alpha must be in [0,1], got {}", self.alpha));
        }
        if let MaskRule::GradientQuantile(q) = self.mask_rule {
            if !(0.0..1.0).contains(&q) {
                return Err(format!("mask quantile must be in [0,1), got {q}"));
            }
        }
        Ok(())
    }

    /// A fresh per-run [`FlProtocol`] state machine for these
    /// hyper-parameters (state is sized in `begin`, so one instance serves
    /// exactly one [`RoundDriver::run`]).
    pub fn protocol(&self) -> FedDaProtocol {
        FedDaProtocol {
            cfg: self.clone(),
            active: Vec::new(),
            masks: Vec::new(),
            disentangled: Vec::new(),
            n_d: 0,
            faulted: Vec::new(),
        }
    }

    /// Run `cfg.rounds` rounds of FedDA through the shared
    /// [`RoundDriver`].
    ///
    /// # Panics
    ///
    /// On an invalid configuration (see [`FedDa::validate`]); use the
    /// driver directly to handle the error.
    pub fn run(&self, system: &mut FlSystem) -> RunResult {
        RoundDriver::new()
            .run(&mut self.protocol(), system)
            // fedda-lint: allow(panic-path, reason = "documented panic in the method contract above; fallible callers use RoundDriver directly")
            .expect("invalid FedDA configuration")
    }

    /// Step 4 of the round: update request masks from the returned
    /// gradients. Only units a client actually returned this round
    /// (`mask[i][k]` was set) are re-scored; deactivated units stay off
    /// until a reactivation resets them (Eq. 7's "otherwise keep" branch).
    fn update_masks(
        &self,
        system: &FlSystem,
        returns: &[ClientReturn],
        masks: &mut [Vec<bool>],
        disentangled: &[bool],
    ) {
        let n = disentangled.len();
        for (k, &is_d) in disentangled.iter().enumerate().take(n) {
            if !is_d {
                continue;
            }
            match self.mask_rule {
                MaskRule::LiteralEq7 => {
                    let agg_mean = system.global.get(fedda_tensor::ParamId::from_index(k));
                    let agg_mean = agg_mean.value().mean();
                    for r in returns {
                        if masks[r.client][k] {
                            let client_mean = r
                                .params
                                .get(fedda_tensor::ParamId::from_index(k))
                                .value()
                                .mean();
                            if agg_mean > client_mean {
                                masks[r.client][k] = false;
                            }
                        }
                    }
                }
                rule => {
                    // Threshold over returned-gradient magnitudes of this
                    // round's contributors.
                    let contributions: Vec<(usize, f32)> = returns
                        .iter()
                        .filter(|r| masks[r.client][k])
                        .map(|r| (r.client, r.unit_delta[k]))
                        .collect();
                    if contributions.len() < 2 {
                        continue; // a single contributor is never below threshold
                    }
                    let magnitudes: Vec<f32> = contributions.iter().map(|&(_, d)| d).collect();
                    let Some(threshold) = rule.threshold(&magnitudes) else {
                        continue; // LiteralEq7 is handled by the arm above
                    };
                    for &(client, delta) in &contributions {
                        if delta < threshold {
                            masks[client][k] = false;
                        }
                    }
                }
            }
        }
    }
}

/// FedDA's per-run [`FlProtocol`] state machine: the activation flags and
/// request masks `D_A^(t)` / `I^(t)` of Algorithm 1, evolved by the
/// post-aggregation hook. Created by [`FedDa::protocol`].
pub struct FedDaProtocol {
    cfg: FedDa,
    /// `D_A^(t)`: which clients are activated for the next round.
    active: Vec<bool>,
    /// `I^(t)`: per-client request masks for the next round.
    masks: Vec<Vec<bool>>,
    /// Per-unit flag: is the unit disentangled (`k ∈ [N_d]`)?
    disentangled: Vec<bool>,
    /// `N_d`.
    n_d: usize,
    /// Clients deactivated this round by observed faults (dropouts, held
    /// stragglers, rejected corruptions) via `on_faults`; merged into the
    /// round's deactivation outcome and the explore cool-down, then
    /// cleared.
    faulted: Vec<usize>,
}

impl FlProtocol for FedDaProtocol {
    fn name(&self) -> String {
        match self.cfg.strategy {
            Reactivation::Restart { .. } => "FedDA 1 (Restart)".into(),
            Reactivation::Explore { .. } => "FedDA 2 (Explore)".into(),
        }
    }

    fn validate(&self) -> Result<(), String> {
        self.cfg.validate()
    }

    fn seed_tweak(&self) -> u64 {
        0xDA_DA_DA
    }

    fn traces_activation(&self) -> bool {
        true
    }

    fn begin(&mut self, system: &FlSystem, _rng: &mut StdRng) {
        let m = system.num_clients();
        let n = system.num_units();
        self.disentangled = {
            let ids = system.disentangled_ids();
            let mut v = vec![false; n];
            for id in ids {
                v[id.index()] = true;
            }
            v
        };
        self.n_d = self.disentangled.iter().filter(|&&d| d).count();
        // D_A^(0) = D, I^(0) = 1 (Algorithm 1 initialisation).
        self.active = vec![true; m];
        self.masks = vec![vec![true; n]; m];
        self.faulted = Vec::new();
    }

    fn on_faults(&mut self, _system: &FlSystem, faults: &[FaultObserved], _round: usize) {
        // A client that failed to contribute a usable fresh report is
        // inactive as far as the activation machinery is concerned — it
        // must re-enter through Restart/Explore like any deactivated
        // client, so real dropouts exercise the reactivation paths.
        for f in faults {
            if f.is_client_failure() && self.active[f.client] {
                self.active[f.client] = false;
                self.faulted.push(f.client);
            }
        }
    }

    fn select_clients(
        &mut self,
        system: &FlSystem,
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<usize> {
        let active: Vec<usize> = (0..system.num_clients())
            .filter(|&i| self.active[i])
            .collect();
        debug_assert!(!active.is_empty(), "active set must never be empty");
        active
    }

    fn build_masks(
        &mut self,
        _system: &FlSystem,
        active: &[usize],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<Vec<bool>> {
        active.iter().map(|&i| self.masks[i].clone()).collect()
    }

    fn post_aggregate(
        &mut self,
        system: &mut FlSystem,
        active: &[usize],
        returns: &[ClientReturn],
        _round: usize,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let m = system.num_clients();
        let mut outcome = StepOutcome::default();

        // Step 4: per-unit mask update for disentangled units.
        self.cfg
            .update_masks(system, returns, &mut self.masks, &self.disentangled);

        // Step 5: deactivate under-occupied clients. Clients already
        // deactivated by this round's faults (`on_faults`) are skipped —
        // they are out regardless of occupancy.
        let mut just_deactivated = self.faulted.clone();
        if self.n_d > 0 {
            for &i in active {
                if !self.active[i] {
                    continue;
                }
                let kept = self.masks[i]
                    .iter()
                    .zip(&self.disentangled)
                    .filter(|&(&mk, &d)| d && mk)
                    .count();
                if (kept as f64) < self.cfg.alpha * self.n_d as f64 {
                    self.active[i] = false;
                    just_deactivated.push(i);
                }
            }
        }
        just_deactivated.sort_unstable();
        just_deactivated.dedup();
        self.faulted.clear();
        outcome.deactivated = just_deactivated.clone();

        // Step 6: reactivation.
        match self.cfg.strategy {
            Reactivation::Restart { beta_r } => {
                let n_active = self.active.iter().filter(|&&a| a).count();
                if (n_active as f64) < beta_r * m as f64 {
                    outcome.restarted = true;
                    outcome.reactivated = (0..m).filter(|&i| !self.active[i]).collect();
                    self.active.iter_mut().for_each(|a| *a = true);
                    for mask in &mut self.masks {
                        mask.iter_mut().for_each(|b| *b = true);
                    }
                }
            }
            Reactivation::Explore { beta_e } => {
                let target = ((beta_e * m as f64).round() as usize).clamp(1, m);
                let n_active = self.active.iter().filter(|&&a| a).count();
                if n_active < target {
                    let mut pool: Vec<usize> = (0..m)
                        .filter(|&i| {
                            let cooling =
                                self.cfg.explore_cooldown && just_deactivated.contains(&i);
                            !self.active[i] && !cooling
                        })
                        .collect();
                    pool.shuffle(rng);
                    for &i in pool.iter().take(target - n_active) {
                        self.active[i] = true;
                        self.masks[i].iter_mut().for_each(|b| *b = true);
                        outcome.reactivated.push(i);
                    }
                }
            }
        }
        // Safety net: never enter a round with an empty active set
        // (possible when alpha is aggressive and beta small — e.g.
        // Explore with cool-down, where every candidate in the pool was
        // deactivated this very round). The full reset is a restart, and
        // the trace must say so: without recording it, the next round's
        // snapshot would show clients active that were never listed as
        // reactivated.
        if self.active.iter().all(|&a| !a) {
            outcome.restarted = true;
            for i in 0..m {
                if !outcome.reactivated.contains(&i) {
                    outcome.reactivated.push(i);
                }
            }
            self.active.iter_mut().for_each(|a| *a = true);
            for mask in &mut self.masks {
                mask.iter_mut().for_each(|b| *b = true);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedavg::FedAvg;
    use crate::system::tests::tiny_system;

    #[test]
    fn fedda_restart_runs_and_saves_uplink() {
        let mut sys = tiny_system(4, 21);
        let fedavg_total = {
            let mut s2 = tiny_system(4, 21);
            FedAvg::vanilla().run(&mut s2).comm.total_uplink_units()
        };
        let result = FedDa::restart().run(&mut sys);
        assert_eq!(result.curve.len(), sys.config().rounds);
        assert!(
            result.comm.total_uplink_units() <= fedavg_total,
            "FedDA must not transmit more than FedAvg ({} vs {fedavg_total})",
            result.comm.total_uplink_units()
        );
    }

    #[test]
    fn fedda_explore_keeps_minimum_active_set() {
        let mut sys = tiny_system(6, 22);
        let fedda = FedDa::explore();
        let result = fedda.run(&mut sys);
        // β_e = 0.667 of 6 = 4: every round after masks shrink must still
        // activate ≥ 4 clients... except round 0 which activates all 6.
        for rc in result.comm.rounds() {
            assert!(
                rc.active_clients >= 4,
                "explore floor violated: {}",
                rc.active_clients
            );
        }
    }

    #[test]
    fn masks_shrink_after_first_round() {
        let mut sys = tiny_system(4, 23);
        let fedda = FedDa::explore();
        let result = fedda.run(&mut sys);
        let rounds = result.comm.rounds();
        // Round 0 transmits everything; later rounds transmit less (per
        // active client) because disentangled units get masked.
        let per_client_0 = rounds[0].uplink_units as f64 / rounds[0].active_clients as f64;
        let per_client_1 = rounds[1].uplink_units as f64 / rounds[1].active_clients as f64;
        assert!(
            per_client_1 < per_client_0,
            "{per_client_1} !< {per_client_0}"
        );
    }

    #[test]
    fn literal_eq7_rule_also_runs() {
        let mut sys = tiny_system(3, 24);
        let mut fedda = FedDa::restart();
        fedda.mask_rule = MaskRule::LiteralEq7;
        let result = fedda.run(&mut sys);
        assert_eq!(result.curve.len(), sys.config().rounds);
    }

    #[test]
    fn single_client_fedda_degenerates_to_fedavg() {
        // With M = 1 every unit has a single contributor, so the
        // gradient-mean rule never masks anything and the federation is
        // exactly FedAvg with one client.
        let mut sys_da = tiny_system(1, 29);
        let fedda = FedDa::explore().run(&mut sys_da);
        let mut sys_avg = tiny_system(1, 29);
        let fedavg = crate::FedAvg::vanilla().run(&mut sys_avg);
        assert_eq!(
            fedda.comm.total_uplink_units(),
            fedavg.comm.total_uplink_units()
        );
        for (a, b) in fedda.curve.iter().zip(&fedavg.curve) {
            assert_eq!(a.roc_auc, b.roc_auc, "round {}", a.round);
        }
        assert_eq!(sys_da.global.flatten(), sys_avg.global.flatten());
    }

    /// Invariants every FedDA activation trace must satisfy.
    fn check_trace(result: &crate::system::RunResult, rounds: usize) {
        assert_eq!(result.activation_trace.len(), rounds);
        for snap in &result.activation_trace {
            assert!(!snap.active_clients.is_empty());
            assert!((0.0..=1.0).contains(&snap.mask_density));
            // deactivated clients were active this round
            for d in &snap.deactivated {
                assert!(snap.active_clients.contains(d));
            }
            // reactivated clients were inactive at reactivation time
            for r in &snap.reactivated {
                assert!(!snap.active_clients.contains(r) || snap.restarted);
            }
        }
    }

    #[test]
    fn activation_trace_is_consistent() {
        let mut sys = tiny_system(5, 28);
        let result = FedDa::explore().run(&mut sys);
        let first = &result.activation_trace[0];
        assert_eq!(first.active_clients.len(), 5, "round 0 activates everyone");
        assert!(
            (first.mask_density - 1.0).abs() < 1e-12,
            "round 0 masks are full"
        );
        check_trace(&result, sys.config().rounds);
        // FedAvg leaves the trace empty.
        let fedavg = crate::FedAvg::vanilla().run(&mut tiny_system(3, 28));
        assert!(fedavg.activation_trace.is_empty());
    }

    #[test]
    fn safety_net_restore_is_recorded_in_trace() {
        // α = 1 deactivates any client that loses a single disentangled
        // unit, and the 0.9-quantile rule masks every non-top contributor,
        // so whole-cohort deactivation happens quickly. With the explore
        // cool-down excluding just-deactivated clients, the reactivation
        // pool is then empty and the empty-active-set safety net must fire
        // — and must show up in the trace as a restart that reactivates
        // everyone, or the trace would claim clients active that were never
        // listed as reactivated.
        let aggressive = FedDa {
            strategy: Reactivation::Explore { beta_e: 0.2 },
            alpha: 1.0,
            mask_rule: MaskRule::GradientQuantile(0.9),
            explore_cooldown: true,
        };
        let m = 4;
        let mut sys = tiny_system(m, 31);
        let result = aggressive.run(&mut sys);
        check_trace(&result, sys.config().rounds);
        let fired: Vec<_> = result
            .activation_trace
            .iter()
            .filter(|s| s.restarted)
            .collect();
        assert!(
            !fired.is_empty(),
            "expected the safety net to fire under this config"
        );
        for snap in &fired {
            assert_eq!(
                snap.reactivated.len(),
                m,
                "the restore brings everyone back"
            );
        }
    }

    #[test]
    fn quantile_helper_interpolates() {
        assert_eq!(super::quantile(&[1.0, 3.0], 0.5), 2.0);
        assert_eq!(super::quantile(&[5.0], 0.0), 5.0);
        assert_eq!(super::quantile(&[1.0, 2.0, 3.0, 4.0], 0.0), 1.0);
        assert!((super::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn quantile_rules_mask_more_aggressively_with_higher_q() {
        let mut low = FedDa::explore();
        low.mask_rule = MaskRule::GradientQuantile(0.25);
        let mut high = FedDa::explore();
        high.mask_rule = MaskRule::GradientQuantile(0.9);
        let r_low = low.run(&mut tiny_system(6, 26));
        let r_high = high.run(&mut tiny_system(6, 26));
        assert!(
            r_high.comm.total_uplink_units() <= r_low.comm.total_uplink_units(),
            "q=0.9 should mask at least as much as q=0.25: {} vs {}",
            r_high.comm.total_uplink_units(),
            r_low.comm.total_uplink_units()
        );
    }

    #[test]
    fn median_rule_runs() {
        let mut fedda = FedDa::restart();
        fedda.mask_rule = MaskRule::GradientMedian;
        let result = fedda.run(&mut tiny_system(4, 27));
        assert!(result.final_eval.roc_auc.is_finite());
    }

    #[test]
    fn validate_rejects_bad_betas() {
        let mut f = FedDa::restart();
        f.strategy = Reactivation::Restart { beta_r: 1.5 };
        assert!(f.validate().is_err());
        let mut f = FedDa::explore();
        f.alpha = -0.1;
        assert!(f.validate().is_err());
        // β ∈ (0,1) is exclusive: β = 0 would never reactivate anyone.
        let mut f = FedDa::restart();
        f.strategy = Reactivation::Restart { beta_r: 0.0 };
        assert!(f.validate().is_err(), "beta_r = 0 must be rejected");
        let mut f = FedDa::explore();
        f.strategy = Reactivation::Explore { beta_e: 0.0 };
        assert!(f.validate().is_err(), "beta_e = 0 must be rejected");
        let mut f = FedDa::explore();
        f.strategy = Reactivation::Explore { beta_e: 1.0 };
        assert!(f.validate().is_err(), "beta_e = 1 must be rejected");
    }

    #[test]
    fn validate_rejects_bad_quantiles() {
        // Previously an out-of-range quantile panicked via an assert deep
        // inside the round loop; validate() must catch it up front.
        let mut f = FedDa::explore();
        f.mask_rule = MaskRule::GradientQuantile(1.5);
        assert!(f.validate().is_err(), "q = 1.5 must be rejected");
        f.mask_rule = MaskRule::GradientQuantile(-0.1);
        assert!(f.validate().is_err(), "q = -0.1 must be rejected");
        f.mask_rule = MaskRule::GradientQuantile(f64::NAN);
        assert!(f.validate().is_err(), "q = NaN must be rejected");
        f.mask_rule = MaskRule::GradientQuantile(0.0);
        assert!(f.validate().is_ok(), "q = 0 (masking disabled) is legal");
    }

    #[test]
    fn seeded_fedda_reproduces() {
        let r1 = FedDa::explore().run(&mut tiny_system(4, 25));
        let r2 = FedDa::explore().run(&mut tiny_system(4, 25));
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.roc_auc, b.roc_auc);
        }
        assert_eq!(r1.comm.total_uplink_units(), r2.comm.total_uplink_units());
    }

    #[test]
    fn protocol_names_match_the_paper() {
        use crate::protocol::FlProtocol;
        assert_eq!(FedDa::restart().protocol().name(), "FedDA 1 (Restart)");
        assert_eq!(FedDa::explore().protocol().name(), "FedDA 2 (Explore)");
    }
}
