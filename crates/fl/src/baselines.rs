//! Non-federated baselines: `Global` (centralised training on the whole
//! training graph — the paper's upper bound) and `Local` (each client
//! trains alone — the lower bound; scores are averaged over clients).
//!
//! `Global` is a round protocol — one outer step per round, evaluated on
//! the shared cadence — so it runs under the same
//! [`RoundDriver`] as the federated protocols via
//! [`GlobalProtocol`]: it selects no clients (its comm log stays empty) and
//! does all its training in the post-aggregation hook, directly on
//! `system.global`. `Local` has no round structure (clients never
//! communicate, models are only scored at the end) and stays a plain
//! function.

use crate::driver::RoundDriver;
use crate::protocol::{FlProtocol, StepOutcome};
use crate::system::{ClientReturn, FlSystem, RunResult};
use fedda_hetgraph::{HeteroGraph, LinkExample, LinkSampler};
use fedda_hgn::{train_local, GraphView, TrainConfig};
use fedda_metrics::MeanStd;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Train the model centrally on the global training graph for
/// `system.config().rounds` outer steps (each of `E` local epochs, to match
/// the federated compute budget), evaluating on the configured cadence.
pub fn run_global(system: &mut FlSystem) -> RunResult {
    RoundDriver::new()
        .run(&mut GlobalProtocol::new(), system)
        // fedda-lint: allow(panic-path, reason = "GlobalProtocol::begin is infallible, so RoundDriver::run cannot return Err for it")
        .expect("the Global baseline has no invalid configurations")
}

/// The centralised "server trains alone" pieces, cloned out of the system
/// once per run (the sampler borrows the graph, so it is rebuilt per round).
struct GlobalState {
    graph: HeteroGraph,
    view: GraphView,
    positives: Vec<LinkExample>,
    train: TrainConfig,
}

/// The `Global` upper bound as an [`FlProtocol`]: no clients, no masks, no
/// communication — one centralised training step per round in
/// [`post_aggregate`](FlProtocol::post_aggregate).
pub struct GlobalProtocol {
    state: Option<GlobalState>,
}

impl GlobalProtocol {
    /// A fresh per-run instance (state is cloned from the system in
    /// `begin`).
    pub fn new() -> Self {
        Self { state: None }
    }
}

impl Default for GlobalProtocol {
    fn default() -> Self {
        Self::new()
    }
}

// fedda-lint: allow(protocol-pins, reason = "Global is a centralised upper bound: one client holds the full graph, so async staleness (k, gamma) cannot arise and an async pin would duplicate the sync curve")
// fedda-lint: allow(protocol-zoo, reason = "Global trains on the server's own full graph; client dropout/garbage faults have no channel to act on, so the chaos sweep has nothing to exercise")
impl FlProtocol for GlobalProtocol {
    fn name(&self) -> String {
        "Global".into()
    }

    fn seed_tweak(&self) -> u64 {
        0x61_0B_A1
    }

    fn begin(&mut self, system: &FlSystem, _rng: &mut StdRng) {
        // The "server" trains directly on the evaluation (global training)
        // graph: rebuild the pieces the clients normally own.
        let graph = system.eval_graph().clone();
        let view = GraphView::new(&graph, system.model.uses_self_loops());
        let positives = LinkSampler::new(&graph).all_positives();
        self.state = Some(GlobalState {
            graph,
            view,
            positives,
            train: system.config().train.clone(),
        });
    }

    fn select_clients(
        &mut self,
        _system: &FlSystem,
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<usize> {
        Vec::new()
    }

    fn build_masks(
        &mut self,
        _system: &FlSystem,
        _active: &[usize],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<Vec<bool>> {
        Vec::new()
    }

    fn post_aggregate(
        &mut self,
        system: &mut FlSystem,
        _active: &[usize],
        _returns: &[ClientReturn],
        _round: usize,
        rng: &mut StdRng,
    ) -> StepOutcome {
        // fedda-lint: allow(panic-path, reason = "RoundDriver calls begin() before any round hook; a missing state is a protocol-engine bug")
        let state = self.state.as_ref().expect("begin() initialises the state");
        let sampler = LinkSampler::new(&state.graph);
        train_local(
            system.model.as_ref(),
            &mut system.global,
            &state.view,
            &sampler,
            &state.positives,
            &state.train,
            rng,
        );
        StepOutcome::default()
    }
}

/// Per-client local-only result.
#[derive(Clone, Debug, Default)]
pub struct LocalResult {
    /// Final global-test AUC of each client's locally-trained model.
    pub aucs: Vec<f64>,
    /// Final global-test MRR of each client's locally-trained model.
    pub mrrs: Vec<f64>,
}

impl LocalResult {
    /// Mean ± std of client AUCs (the paper reports Local averaged over
    /// clients).
    pub fn auc_summary(&self) -> MeanStd {
        MeanStd::of(&self.aucs)
    }

    /// Mean ± std of client MRRs.
    pub fn mrr_summary(&self) -> MeanStd {
        MeanStd::of(&self.mrrs)
    }
}

/// Train each client alone (same per-round compute as the federated runs,
/// no communication) and evaluate every client's model on the global test
/// set.
pub fn run_local_only(system: &FlSystem) -> LocalResult {
    let cfg = system.config().clone();
    let mut result = LocalResult::default();
    for (i, client) in system.clients.iter().enumerate() {
        let mut params = system.global.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0001_0CA1 ^ (i as u64) << 8);
        let sampler = LinkSampler::new(&client.data.graph);
        for _round in 0..cfg.rounds {
            train_local(
                system.model.as_ref(),
                &mut params,
                &client.view,
                &sampler,
                &client.positives,
                &cfg.train,
                &mut rng,
            );
        }
        let eval = system.evaluate_params(&params, cfg.rounds);
        result.aucs.push(eval.roc_auc);
        result.mrrs.push(eval.mrr);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;

    #[test]
    fn global_baseline_trains_and_records_curve() {
        let mut sys = tiny_system(2, 31);
        let before = sys.global.flatten();
        let result = run_global(&mut sys);
        assert_eq!(result.curve.len(), sys.config().rounds);
        assert_ne!(
            sys.global.flatten(),
            before,
            "global training must move parameters"
        );
        assert!(result.final_eval.roc_auc > 0.0);
    }

    #[test]
    fn global_baseline_ignores_fault_injection() {
        // The Global protocol selects no clients, so even an aggressive
        // fault schedule has nobody to strike: no fault events, identical
        // trained parameters.
        let mut plain = tiny_system(2, 33);
        let r_plain = run_global(&mut plain);
        let mut faulty = tiny_system(2, 33);
        faulty.set_faults(Some(crate::faults::FaultConfig {
            dropout: 0.9,
            ..Default::default()
        }));
        let r_faulty = run_global(&mut faulty);
        assert!(r_faulty.faults.is_empty());
        assert_eq!(plain.global.flatten(), faulty.global.flatten());
        for (a, b) in r_plain.curve.iter().zip(&r_faulty.curve) {
            assert_eq!(a.roc_auc.to_bits(), b.roc_auc.to_bits());
        }
    }

    #[test]
    fn local_baseline_covers_every_client() {
        let sys = tiny_system(3, 32);
        let result = run_local_only(&sys);
        assert_eq!(result.aucs.len(), 3);
        assert_eq!(result.mrrs.len(), 3);
        let s = result.auc_summary();
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0);
    }
}
