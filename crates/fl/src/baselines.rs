//! Non-federated baselines: `Global` (centralised training on the whole
//! training graph — the paper's upper bound) and `Local` (each client
//! trains alone — the lower bound; scores are averaged over clients).

use crate::system::{FlSystem, RoundEval, RunResult};
use fedda_hetgraph::LinkSampler;
use fedda_hgn::train_local;
use fedda_metrics::MeanStd;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Train the model centrally on the global training graph for
/// `system.config().rounds` outer steps (each of `E` local epochs, to match
/// the federated compute budget), evaluating after each.
pub fn run_global(system: &mut FlSystem) -> RunResult {
    let mut result = RunResult::default();
    let cfg = system.config().clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x61_0B_A1);
    // The "server" trains directly on the evaluation (global training)
    // graph: rebuild the pieces the clients normally own.
    let graph = system.eval_graph().clone();
    let view = fedda_hgn::GraphView::new(&graph, system.model.uses_self_loops());
    let sampler = LinkSampler::new(&graph);
    let positives = sampler.all_positives();
    let mut params = system.global.clone();
    for round in 0..cfg.rounds {
        train_local(
            system.model.as_ref(),
            &mut params,
            &view,
            &sampler,
            &positives,
            &cfg.train,
            &mut rng,
        );
        let eval = system.evaluate_params(&params, round);
        result.curve.push(RoundEval {
            round,
            roc_auc: eval.roc_auc,
            mrr: eval.mrr,
        });
        result.final_eval = eval;
    }
    system.global = params;
    result
}

/// Per-client local-only result.
#[derive(Clone, Debug, Default)]
pub struct LocalResult {
    /// Final global-test AUC of each client's locally-trained model.
    pub aucs: Vec<f64>,
    /// Final global-test MRR of each client's locally-trained model.
    pub mrrs: Vec<f64>,
}

impl LocalResult {
    /// Mean ± std of client AUCs (the paper reports Local averaged over
    /// clients).
    pub fn auc_summary(&self) -> MeanStd {
        MeanStd::of(&self.aucs)
    }

    /// Mean ± std of client MRRs.
    pub fn mrr_summary(&self) -> MeanStd {
        MeanStd::of(&self.mrrs)
    }
}

/// Train each client alone (same per-round compute as the federated runs,
/// no communication) and evaluate every client's model on the global test
/// set.
pub fn run_local_only(system: &FlSystem) -> LocalResult {
    let cfg = system.config().clone();
    let mut result = LocalResult::default();
    for (i, client) in system.clients.iter().enumerate() {
        let mut params = system.global.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0001_0CA1 ^ (i as u64) << 8);
        let sampler = LinkSampler::new(&client.data.graph);
        for _round in 0..cfg.rounds {
            train_local(
                system.model.as_ref(),
                &mut params,
                &client.view,
                &sampler,
                &client.positives,
                &cfg.train,
                &mut rng,
            );
        }
        let eval = system.evaluate_params(&params, cfg.rounds);
        result.aucs.push(eval.roc_auc);
        result.mrrs.push(eval.mrr);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;

    #[test]
    fn global_baseline_trains_and_records_curve() {
        let mut sys = tiny_system(2, 31);
        let before = sys.global.flatten();
        let result = run_global(&mut sys);
        assert_eq!(result.curve.len(), sys.config().rounds);
        assert_ne!(
            sys.global.flatten(),
            before,
            "global training must move parameters"
        );
        assert!(result.final_eval.roc_auc > 0.0);
    }

    #[test]
    fn local_baseline_covers_every_client() {
        let sys = tiny_system(3, 32);
        let result = run_local_only(&sys);
        assert_eq!(result.aucs.len(), 3);
        assert_eq!(result.mrrs.len(), 3);
        let s = result.auc_summary();
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0);
    }
}
