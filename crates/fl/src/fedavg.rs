//! FedAvg (McMahan et al., 2017) over the simulated federation, with the
//! random client-fraction (`C`) and parameter-fraction (`D`) knobs of the
//! paper's motivating study (§4, Fig. 2).
//!
//! `C = D = 1` is vanilla FedAvg: every round broadcasts the global model
//! to all clients, runs `E` local epochs everywhere, and averages all
//! returned parameters uniformly (Eqs. 4–5, `p_i = 1/M`).
//!
//! FedAvg is stateless between rounds, so the config struct itself
//! implements [`FlProtocol`]: selection is a seeded shuffle, masks are
//! either full or random at density `D`, and there is no post-aggregation
//! bookkeeping.

use crate::driver::RoundDriver;
use crate::protocol::FlProtocol;
use crate::system::{FlSystem, RunResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// FedAvg protocol configuration (and, being stateless, the
/// [`FlProtocol`] implementation itself).
#[derive(Clone, Debug)]
pub struct FedAvg {
    /// Fraction of clients randomly activated each round (Fig. 2's `C`).
    pub client_fraction: f64,
    /// Fraction of parameter units randomly gathered from each activated
    /// client each round (Fig. 2's `D`).
    pub param_fraction: f64,
}

impl Default for FedAvg {
    fn default() -> Self {
        Self {
            client_fraction: 1.0,
            param_fraction: 1.0,
        }
    }
}

impl FedAvg {
    /// Vanilla FedAvg.
    pub fn vanilla() -> Self {
        Self::default()
    }

    /// FedAvg with random partial activation. Out-of-range fractions are
    /// reported by [`validate`](FlProtocol::validate) (which the driver
    /// calls before round 0), not panicked on here.
    pub fn with_fractions(client_fraction: f64, param_fraction: f64) -> Self {
        Self {
            client_fraction,
            param_fraction,
        }
    }

    /// Run `cfg.rounds` rounds through the shared [`RoundDriver`],
    /// evaluating the global model on the `FlConfig::eval_every` cadence.
    ///
    /// # Panics
    ///
    /// On an invalid configuration (see [`validate`](FlProtocol::validate));
    /// use the driver directly to handle the error.
    pub fn run(&self, system: &mut FlSystem) -> RunResult {
        RoundDriver::new()
            .run(&mut self.clone(), system)
            // fedda-lint: allow(panic-path, reason = "documented panic in the method contract above; fallible callers use RoundDriver directly")
            .expect("invalid FedAvg configuration")
    }
}

impl FlProtocol for FedAvg {
    fn name(&self) -> String {
        if self.client_fraction >= 1.0 && self.param_fraction >= 1.0 {
            "FedAvg".into()
        } else {
            format!(
                "FedAvg(C={:.2},D={:.2})",
                self.client_fraction, self.param_fraction
            )
        }
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.client_fraction > 0.0 && self.client_fraction <= 1.0) {
            return Err(format!(
                "client_fraction must be in (0,1], got {}",
                self.client_fraction
            ));
        }
        if !(self.param_fraction > 0.0 && self.param_fraction <= 1.0) {
            return Err(format!(
                "param_fraction must be in (0,1], got {}",
                self.param_fraction
            ));
        }
        Ok(())
    }

    fn seed_tweak(&self) -> u64 {
        0xFEDA_A0A0
    }

    fn select_clients(&mut self, system: &FlSystem, _round: usize, rng: &mut StdRng) -> Vec<usize> {
        let m = system.num_clients();
        let take = ((m as f64) * self.client_fraction).round().max(1.0) as usize;
        let mut order: Vec<usize> = (0..m).collect();
        order.shuffle(rng);
        let mut active = order[..take.min(m)].to_vec();
        active.sort_unstable();
        active
    }

    fn build_masks(
        &mut self,
        system: &FlSystem,
        active: &[usize],
        _round: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<bool>> {
        if self.param_fraction >= 1.0 {
            system.full_masks(active.len())
        } else {
            (0..active.len())
                .map(|_| system.random_mask(self.param_fraction, rng))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;

    #[test]
    fn vanilla_fedavg_transmits_everything() {
        let mut sys = tiny_system(3, 11);
        let result = FedAvg::vanilla().run(&mut sys);
        let rounds = sys.config().rounds;
        assert_eq!(result.curve.len(), rounds);
        assert_eq!(
            result.comm.total_uplink_units(),
            rounds * 3 * sys.num_units()
        );
        assert_eq!(result.comm.total_activations(), rounds * 3);
        assert!(result.final_eval.roc_auc > 0.0);
    }

    #[test]
    fn client_fraction_reduces_activations() {
        let mut sys = tiny_system(4, 12);
        let result = FedAvg::with_fractions(0.5, 1.0).run(&mut sys);
        let rounds = sys.config().rounds;
        assert_eq!(result.comm.total_activations(), rounds * 2);
        assert_eq!(
            result.comm.total_uplink_units(),
            rounds * 2 * sys.num_units()
        );
    }

    #[test]
    fn param_fraction_reduces_uplink_not_downlink() {
        let mut sys = tiny_system(2, 13);
        let result = FedAvg::with_fractions(1.0, 0.5).run(&mut sys);
        let rounds = sys.config().rounds;
        let full = rounds * 2 * sys.num_units();
        assert!(result.comm.total_uplink_units() < full);
        assert_eq!(result.comm.total_downlink_units(), full);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut s1 = tiny_system(3, 14);
        let mut s2 = tiny_system(3, 14);
        let r1 = FedAvg::vanilla().run(&mut s1);
        let r2 = FedAvg::vanilla().run(&mut s2);
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.roc_auc, b.roc_auc);
        }
        assert_eq!(s1.global.flatten(), s2.global.flatten());
    }

    #[test]
    fn out_of_range_fractions_fail_validation() {
        assert!(FedAvg::with_fractions(0.0, 1.0).validate().is_err());
        assert!(FedAvg::with_fractions(1.0, 0.0).validate().is_err());
        assert!(FedAvg::with_fractions(1.5, 1.0).validate().is_err());
        assert!(FedAvg::with_fractions(1.0, f64::NAN).validate().is_err());
        assert!(FedAvg::with_fractions(0.5, 0.5).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid FedAvg configuration")]
    fn zero_client_fraction_rejected_before_round_zero() {
        let mut sys = tiny_system(2, 15);
        let _ = FedAvg::with_fractions(0.0, 1.0).run(&mut sys);
    }

    #[test]
    fn names_match_paper() {
        use crate::protocol::FlProtocol;
        assert_eq!(FedAvg::vanilla().name(), "FedAvg");
        assert_eq!(
            FedAvg::with_fractions(0.8, 1.0).name(),
            "FedAvg(C=0.80,D=1.00)"
        );
    }

    #[test]
    fn fedavg_survives_full_dropout_rounds() {
        // FedAvg has no activation machinery, so dropout rate 1.0 means
        // every round aggregates nothing: the global model must simply
        // stand still and the run must complete with zero uplink.
        let mut sys = tiny_system(3, 16);
        sys.set_faults(Some(crate::faults::FaultConfig::dropout_only(1.0)));
        let before = sys.global.flatten();
        let result = FedAvg::vanilla().run(&mut sys);
        assert_eq!(result.curve.len(), sys.config().rounds);
        assert_eq!(sys.global.flatten(), before, "no survivor, no movement");
        assert_eq!(result.comm.total_uplink_units(), 0);
        // Downlink still paid: the broadcast happens before anyone fails.
        assert!(result.comm.total_downlink_units() > 0);
        assert_eq!(result.faults.len(), 3 * sys.config().rounds);
    }

    #[test]
    fn fedavg_zero_rate_fault_config_matches_faultless_run() {
        // An all-zero FaultConfig schedules nothing, so the run must be
        // bit-identical to `faults: None` — the fault stream is orthogonal
        // to every other RNG stream.
        let mut plain = tiny_system(3, 17);
        let r_plain = FedAvg::vanilla().run(&mut plain);
        let mut faulty = tiny_system(3, 17);
        faulty.set_faults(Some(crate::faults::FaultConfig::default()));
        let r_faulty = FedAvg::vanilla().run(&mut faulty);
        assert!(r_faulty.faults.is_empty());
        for (a, b) in r_plain.curve.iter().zip(&r_faulty.curve) {
            assert_eq!(a.roc_auc.to_bits(), b.roc_auc.to_bits());
            assert_eq!(a.mrr.to_bits(), b.mrr.to_bits());
        }
        let (pa, pb) = (plain.global.flatten(), faulty.global.flatten());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
