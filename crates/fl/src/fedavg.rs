//! FedAvg (McMahan et al., 2017) over the simulated federation, with the
//! random client-fraction (`C`) and parameter-fraction (`D`) knobs of the
//! paper's motivating study (§4, Fig. 2).
//!
//! `C = D = 1` is vanilla FedAvg: every round broadcasts the global model
//! to all clients, runs `E` local epochs everywhere, and averages all
//! returned parameters uniformly (Eqs. 4–5, `p_i = 1/M`).

use crate::system::{FlSystem, RoundEval, RunResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// FedAvg protocol driver.
#[derive(Clone, Debug)]
pub struct FedAvg {
    /// Fraction of clients randomly activated each round (Fig. 2's `C`).
    pub client_fraction: f64,
    /// Fraction of parameter units randomly gathered from each activated
    /// client each round (Fig. 2's `D`).
    pub param_fraction: f64,
}

impl Default for FedAvg {
    fn default() -> Self {
        Self {
            client_fraction: 1.0,
            param_fraction: 1.0,
        }
    }
}

impl FedAvg {
    /// Vanilla FedAvg.
    pub fn vanilla() -> Self {
        Self::default()
    }

    /// FedAvg with random partial activation.
    pub fn with_fractions(client_fraction: f64, param_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&client_fraction) && client_fraction > 0.0);
        assert!((0.0..=1.0).contains(&param_fraction) && param_fraction > 0.0);
        Self {
            client_fraction,
            param_fraction,
        }
    }

    /// Run `cfg.rounds` rounds, evaluating the global model after each.
    pub fn run(&self, system: &mut FlSystem) -> RunResult {
        let mut result = RunResult::default();
        let m = system.num_clients();
        let rounds = system.config().rounds;
        let mut rng = StdRng::seed_from_u64(system.config().seed ^ 0xFEDA_A0A0);
        let active_per_round = ((m as f64) * self.client_fraction).round().max(1.0) as usize;
        for round in 0..rounds {
            let mut order: Vec<usize> = (0..m).collect();
            order.shuffle(&mut rng);
            let mut active = order[..active_per_round.min(m)].to_vec();
            active.sort_unstable();
            let returns = system.run_local_round(&active, round);
            let masks: Vec<Vec<bool>> = if self.param_fraction >= 1.0 {
                system.full_masks(active.len())
            } else {
                (0..active.len())
                    .map(|_| system.random_mask(self.param_fraction, &mut rng))
                    .collect()
            };
            system.aggregate_masked(&returns, &masks);
            result.comm.push(system.round_comm(&masks));
            let eval = system.evaluate_global(round);
            result.curve.push(RoundEval {
                round,
                roc_auc: eval.roc_auc,
                mrr: eval.mrr,
            });
            result.final_eval = eval;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_system;

    #[test]
    fn vanilla_fedavg_transmits_everything() {
        let mut sys = tiny_system(3, 11);
        let result = FedAvg::vanilla().run(&mut sys);
        let rounds = sys.config().rounds;
        assert_eq!(result.curve.len(), rounds);
        assert_eq!(
            result.comm.total_uplink_units(),
            rounds * 3 * sys.num_units()
        );
        assert_eq!(result.comm.total_activations(), rounds * 3);
        assert!(result.final_eval.roc_auc > 0.0);
    }

    #[test]
    fn client_fraction_reduces_activations() {
        let mut sys = tiny_system(4, 12);
        let result = FedAvg::with_fractions(0.5, 1.0).run(&mut sys);
        let rounds = sys.config().rounds;
        assert_eq!(result.comm.total_activations(), rounds * 2);
        assert_eq!(
            result.comm.total_uplink_units(),
            rounds * 2 * sys.num_units()
        );
    }

    #[test]
    fn param_fraction_reduces_uplink_not_downlink() {
        let mut sys = tiny_system(2, 13);
        let result = FedAvg::with_fractions(1.0, 0.5).run(&mut sys);
        let rounds = sys.config().rounds;
        let full = rounds * 2 * sys.num_units();
        assert!(result.comm.total_uplink_units() < full);
        assert_eq!(result.comm.total_downlink_units(), full);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut s1 = tiny_system(3, 14);
        let mut s2 = tiny_system(3, 14);
        let r1 = FedAvg::vanilla().run(&mut s1);
        let r2 = FedAvg::vanilla().run(&mut s2);
        for (a, b) in r1.curve.iter().zip(&r2.curve) {
            assert_eq!(a.roc_auc, b.roc_auc);
        }
        assert_eq!(s1.global.flatten(), s2.global.flatten());
    }

    #[test]
    #[should_panic]
    fn zero_client_fraction_rejected() {
        let _ = FedAvg::with_fractions(0.0, 1.0);
    }
}
