//! The protocol-engine seam: [`FlProtocol`] is the set of hooks a federated
//! algorithm plugs into the shared [`RoundDriver`](crate::RoundDriver).
//!
//! Every algorithm in the reproduction used to hand-roll its own round loop
//! over [`FlSystem`]; the driver now owns the canonical loop (broadcast,
//! local round, masked aggregation per Eq. 6, comm accounting, evaluation
//! cadence, event emission) and a protocol only decides *who* participates
//! ([`select_clients`](FlProtocol::select_clients)), *which units* each
//! participant returns ([`build_masks`](FlProtocol::build_masks)) and *how
//! activation state evolves* after aggregation
//! ([`post_aggregate`](FlProtocol::post_aggregate)). A new protocol
//! (FedProx-style regularisation, a different reactivation rule, …) is one
//! trait impl — not a fourth copied loop.
//!
//! # RNG stream derivation rules
//!
//! Determinism is load-bearing: seeded runs must be bit-identical across
//! refactors, and protocols sharing a `FlConfig::seed` must stay
//! comparable. The rules:
//!
//! * the driver owns a single `StdRng` seeded with
//!   `cfg.seed ^ protocol.seed_tweak()` — each protocol picks a distinct
//!   tweak so its decision stream never collides with model init
//!   (`cfg.seed`), client streams (`client_seeds`), or evaluation
//!   (`cfg.seed ^ 0xEAE5 ^ round·31`);
//! * hooks draw from that RNG **only** through the arguments they are
//!   given, in hook order (`begin`, then per round `select_clients` →
//!   `build_masks` → `post_aggregate`; the local round between masks and
//!   aggregation is the driver's and consumes no protocol randomness) —
//!   never stash a clone;
//! * hooks that need no randomness must not draw (FedDA's selection and
//!   masks are deterministic functions of its activation state; only its
//!   `Explore` reactivation draws).
//!
//! Existing tweaks: FedAvg `0xFEDA_A0A0`, FedDA `0xDA_DA_DA`, Global
//! `0x61_0B_A1`, FedProx `0xFED9_0B0C`, FedDyn `0xFEDD_1509`, FedAdam
//! `0xFED0_ADA3`.
//!
//! Fault injection gets its **own** stream, not a protocol tweak: the
//! [`FaultPlan`](crate::FaultPlan) is pre-sampled from
//! `cfg.seed ^` [`FAULT_STREAM_TWEAK`](crate::faults::FAULT_STREAM_TWEAK)
//! before round 0, so enabling faults never shifts a single draw of any
//! protocol's stream — a faulted run and a clean run make identical
//! selection/mask/reactivation decisions given identical activation
//! state.

use crate::faults::FaultObserved;
use crate::system::{ClientReturn, FlSystem};
use rand::rngs::StdRng;

/// What a protocol's [`post_aggregate`](FlProtocol::post_aggregate) hook
/// reports back to the driver: the activation changes of the round.
/// Protocols without dynamic activation return
/// [`StepOutcome::default()`].
#[derive(Clone, Debug, Default)]
pub struct StepOutcome {
    /// Clients deactivated during the round.
    pub deactivated: Vec<usize>,
    /// Clients reactivated during the round.
    pub reactivated: Vec<usize>,
    /// Whether a full activation reset fired.
    pub restarted: bool,
}

/// A client-side penalty on the local objective, returned by
/// [`FlProtocol::local_regularizer`] and applied at every local gradient
/// step by [`FlSystem::run_local_round_with`].
///
/// The penalised local objective is
/// `L_i(θ) + μ/2·‖θ − θ^t‖² + ⟨linear, θ⟩`, where `θ^t` is always the
/// round's broadcast parameters (`system.global` at dispatch time) — the
/// anchor is supplied by the runtime, not the protocol, so the penalty
/// travels as plain owned data. FedProx sets only `prox_mu`; FedDyn sets
/// `prox_mu = α` plus its per-client linear state `−∇̂ᵢ`.
#[derive(Clone, Debug, Default)]
pub struct LocalPenalty {
    /// Proximal coefficient `μ ≥ 0` on `½‖θ − θ^t‖²`.
    pub prox_mu: f32,
    /// Optional linear-term gradient in `ParamSet::flatten` order, added
    /// verbatim to every step's gradient.
    pub linear: Option<Vec<f32>>,
}

/// Hooks a federated algorithm implements to run under the shared
/// [`RoundDriver`](crate::RoundDriver).
///
/// Implementations are per-run state machines: the driver calls
/// [`begin`](FlProtocol::begin) exactly once before round 0, then the
/// per-round hooks in a fixed order. Reuse across runs requires a fresh
/// instance (see `FedDa::protocol` / `Framework::protocol`).
pub trait FlProtocol {
    /// Display name matching the paper's tables (e.g. `"FedAvg"`,
    /// `"FedDA 2 (Explore)"`).
    fn name(&self) -> String;

    /// Check hyper-parameters. The driver calls this before round 0 and
    /// refuses to run on `Err`.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// XOR tweak applied to `FlConfig::seed` to derive this protocol's
    /// RNG stream (see the module docs for the derivation rules).
    fn seed_tweak(&self) -> u64 {
        0
    }

    /// Whether the driver should record per-round
    /// [`ActivationSnapshot`](crate::ActivationSnapshot)s into
    /// `RunResult::activation_trace` (dynamic-activation protocols only).
    fn traces_activation(&self) -> bool {
        false
    }

    /// Called once before round 0: size per-run state off the federation.
    fn begin(&mut self, system: &FlSystem, rng: &mut StdRng) {
        let _ = (system, rng);
    }

    /// Pick the clients to activate this round (sorted ascending by
    /// convention; the driver broadcasts to exactly these).
    fn select_clients(&mut self, system: &FlSystem, round: usize, rng: &mut StdRng) -> Vec<usize>;

    /// Penalty this protocol puts on `client`'s local objective for the
    /// round (FedProx's proximal term, FedDyn's dynamic regulariser). The
    /// driver queries this once per dispatched client, after
    /// [`build_masks`](FlProtocol::build_masks) and before local training;
    /// the proximal anchor is the broadcast parameters of the same
    /// dispatch. The default is `None` — no penalty, and local training is
    /// bit-identical to the unhooked path. Deliberately RNG-free: a
    /// regulariser is a deterministic function of protocol state, and
    /// adding one must not shift any decision stream.
    fn local_regularizer(
        &mut self,
        system: &FlSystem,
        client: usize,
        round: usize,
    ) -> Option<LocalPenalty> {
        let _ = (system, client, round);
        None
    }

    /// Build the request mask for each selected client (`masks[j]`
    /// corresponds to `active[j]`, one bool per parameter unit).
    fn build_masks(
        &mut self,
        system: &FlSystem,
        active: &[usize],
        round: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<bool>>;

    /// Hook before aggregation on rounds where the driver observed faults:
    /// the structured records of every dropout, held/arrived straggler and
    /// rejected corruption of the round. Dynamic-activation protocols use
    /// this to treat faulted clients as inactive (FedDA deactivates them so
    /// Restart/Explore reactivation is exercised by real failures); the
    /// default ignores faults. Never called when `FlConfig::faults` is
    /// `None`. Deliberately RNG-free — fault handling must not shift any
    /// protocol's decision stream.
    fn on_faults(&mut self, system: &FlSystem, faults: &[FaultObserved], round: usize) {
        let _ = (system, faults, round);
    }

    /// Hook after masked aggregation: update masks/activation state,
    /// run reactivation, or write protocol-owned parameters into
    /// `system.global`. Runs before the round's evaluation.
    fn post_aggregate(
        &mut self,
        system: &mut FlSystem,
        active: &[usize],
        returns: &[ClientReturn],
        round: usize,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let _ = (system, active, returns, round, rng);
        StepOutcome::default()
    }
}
