//! Closed-form communication-efficiency model (paper §5.4.3, Eqs. 8–11).
//!
//! Given the expected per-round client-retention ratio `r_c` and the
//! expected fraction of deactivated disentangled parameters `r_p`, the
//! paper derives the expected number of communicated parameters for both
//! strategies and bounds the ratio against vanilla FedAvg (`t_0 · M · N`).
//!
//! The paper's model counts parameter *units*; the ledger
//! ([`CommLog`](crate::CommLog)) additionally measures wire *bytes*, which
//! depend on the uplink codec ([`Compression`]). The `*_bytes` functions
//! below extend the closed forms to byte denominations: [`report_bytes`]
//! gives the exact wire size of one full (unmasked) report under a codec,
//! and the ratio variants scale the unit-count ratios by the codec's
//! byte factor against the uncompressed 4-bytes-per-scalar baseline.

use crate::compress::{k_of, Compression};

/// Inputs of the analytic model.
#[derive(Clone, Copy, Debug)]
pub struct EfficiencyInputs {
    /// Number of clients `M`.
    pub m: usize,
    /// Total parameter units `N`.
    pub n: usize,
    /// Disentangled parameter units `N_d`.
    pub n_d: usize,
    /// Expected fraction of clients *remaining* after each round (`r_c`).
    pub r_c: f64,
    /// Expected fraction of disentangled parameters deactivated per
    /// remaining client (`r_p`).
    pub r_p: f64,
}

impl EfficiencyInputs {
    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_d > self.n {
            return Err("n_d cannot exceed n".into());
        }
        if !(0.0..=1.0).contains(&self.r_c) || !(0.0..=1.0).contains(&self.r_p) {
            return Err("r_c and r_p must be in [0, 1]".into());
        }
        if self.m == 0 || self.n == 0 {
            return Err("m and n must be positive".into());
        }
        Ok(())
    }
}

/// Expected rounds before a `Restart` reset: the smallest `t_0` with
/// `r_c^{t_0} < β_r`, i.e. `t_0 = ceil(log_{r_c} β_r)` (Eq. 8's side
/// condition `t_0 ≥ log_{r_c} β_r`).
pub fn restart_period(r_c: f64, beta_r: f64) -> usize {
    assert!((0.0..1.0).contains(&beta_r), "beta_r in (0,1)");
    if r_c >= 1.0 {
        return usize::MAX; // never shrinks, never restarts
    }
    if r_c <= 0.0 {
        return 1;
    }
    (beta_r.ln() / r_c.ln()).ceil().max(1.0) as usize
}

/// Eq. 8: expected communicated parameter units over one `Restart` cycle of
/// `t_0` rounds.
///
/// `E[#cp] = M·N · (1 - r_c^{t_0+1}) / (1 - r_c)
///          - M·N_d · (r_c·r_p - (r_c·r_p)^{t_0+1}) / (1 - r_c·r_p)`.
pub fn restart_expected_units(inp: &EfficiencyInputs, t0: usize) -> f64 {
    // fedda-lint: allow(panic-path, reason = "documented precondition; EfficiencyInputs::validate errors are caller bugs, not runtime data")
    inp.validate().expect("invalid inputs");
    let (m, n, n_d) = (inp.m as f64, inp.n as f64, inp.n_d as f64);
    let rc = inp.r_c;
    let rcrp = inp.r_c * inp.r_p;
    let geom = |r: f64, from_pow: i32, to_pow: i32| -> f64 {
        // sum_{k=from}^{to} r^k, handling r = 1
        if (r - 1.0).abs() < 1e-12 {
            f64::from(to_pow - from_pow + 1)
        } else {
            (r.powi(from_pow) - r.powi(to_pow.saturating_add(1))) / (1.0 - r)
        }
    };
    // Saturating conversion: t0 beyond i32::MAX rounds means the geometric
    // sums have long since converged, so the cap is exact in f64 anyway.
    let t0 = i32::try_from(t0).unwrap_or(i32::MAX);
    // (1 - rc^{t0+1}) / (1 - rc) = sum_{k=0}^{t0} rc^k
    let clients_term = m * n * geom(rc, 0, t0);
    // (rcrp - rcrp^{t0+1}) / (1 - rcrp) = sum_{k=1}^{t0} rcrp^k
    let savings_term = if t0 >= 1 {
        m * n_d * geom(rcrp, 1, t0)
    } else {
        0.0
    };
    clients_term - savings_term
}

/// Eq. 9: expected ratio of `Restart` communication to vanilla FedAvg over
/// the same `t_0` rounds (`t_0 · M · N` units).
pub fn restart_ratio(inp: &EfficiencyInputs, beta_r: f64) -> f64 {
    let t0 = restart_period(inp.r_c, beta_r);
    let t0 = t0.min(10_000); // guard the r_c = 1 degenerate case
    restart_expected_units(inp, t0) / (t0 as f64 * inp.m as f64 * inp.n as f64)
}

/// Eq. 11: upper bound on the `Explore` strategy's per-round communication
/// ratio against FedAvg (valid from the second round on):
/// `E[#cp] / (M·N) ≤ β_e - β_e · r_c · r_p · N_d / N`.
pub fn explore_ratio_bound(inp: &EfficiencyInputs, beta_e: f64) -> f64 {
    // fedda-lint: allow(panic-path, reason = "documented precondition; EfficiencyInputs::validate errors are caller bugs, not runtime data")
    inp.validate().expect("invalid inputs");
    assert!((0.0..1.0).contains(&beta_e), "beta_e in (0,1)");
    beta_e - beta_e * inp.r_c * inp.r_p * (inp.n_d as f64 / inp.n as f64)
}

/// Eq. 10: expected per-round communicated units for `Explore`, given the
/// fraction `gamma` of active clients that were already active before the
/// last round and their (deeper) deactivation fraction `r_p_hat ≥ r_p`.
pub fn explore_expected_units(
    inp: &EfficiencyInputs,
    beta_e: f64,
    gamma: f64,
    r_p_hat: f64,
) -> f64 {
    // fedda-lint: allow(panic-path, reason = "documented precondition; EfficiencyInputs::validate errors are caller bugs, not runtime data")
    inp.validate().expect("invalid inputs");
    assert!((0.0..=1.0).contains(&gamma), "gamma in [0,1]");
    assert!(r_p_hat >= inp.r_p - 1e-9, "r_p_hat must be ≥ r_p");
    let (m, n, n_d) = (inp.m as f64, inp.n as f64, inp.n_d as f64);
    // Veterans that stay: masked at r_p; veterans-of-veterans masked at
    // r_p_hat; fresh reactivated clients transmit everything.
    m * beta_e * inp.r_c * gamma * (n - inp.r_p * n_d)
        + m * beta_e * inp.r_c * (1.0 - gamma) * (n - r_p_hat * n_d)
        + m * n * beta_e * (1.0 - inp.r_c)
}

/// Exact wire bytes of one fully-transmitted parameter unit of `len`
/// scalars under `codec` — the analytic mirror of
/// [`Payload::wire_bytes`](crate::compress::Payload::wire_bytes):
/// `None`/`Identity` 4·len, `QuantF16` 2·len, `QuantI8` 1·len, `TopK`
/// 8 bytes per kept scalar with `k = ⌊frac·len⌋`. Per-unit metadata (the
/// `QuantI8` scale, the `TopK` length header) is excluded by the same
/// convention the ledger uses.
pub fn unit_bytes(len: usize, codec: Option<&Compression>) -> usize {
    match codec {
        None | Some(Compression::Identity) => 4 * len,
        Some(Compression::QuantF16) => 2 * len,
        Some(Compression::QuantI8) => len,
        Some(Compression::TopK { frac }) => 8 * k_of(*frac, len),
    }
}

/// Exact wire bytes of one full (all units, no masking) client report
/// whose units have `unit_lens` scalars each, under `codec`.
pub fn report_bytes(unit_lens: &[usize], codec: Option<&Compression>) -> usize {
    unit_lens.iter().map(|&len| unit_bytes(len, codec)).sum()
}

/// The codec's byte factor against the uncompressed wire: wire bytes of a
/// full report under `codec` divided by its raw `4 × scalars` size.
/// `Identity`/`None` → 1.0, `QuantF16` → 0.5, `QuantI8` → 0.25, `TopK`
/// → slightly under `2·frac` (the floor in `k` rounds down per unit).
pub fn codec_byte_factor(unit_lens: &[usize], codec: Option<&Compression>) -> f64 {
    let raw = report_bytes(unit_lens, None);
    if raw == 0 {
        return 0.0;
    }
    report_bytes(unit_lens, codec) as f64 / raw as f64
}

/// Eq. 9 in byte denomination: expected `Restart` wire bytes under `codec`
/// divided by vanilla FedAvg's *uncompressed* bytes over the same `t_0`
/// rounds. The unit-count model treats units as interchangeable, so the
/// byte ratio factors as (unit ratio) × (codec byte factor).
pub fn restart_ratio_bytes(
    inp: &EfficiencyInputs,
    beta_r: f64,
    unit_lens: &[usize],
    codec: Option<&Compression>,
) -> f64 {
    restart_ratio(inp, beta_r) * codec_byte_factor(unit_lens, codec)
}

/// Eq. 11 in byte denomination: upper bound on the `Explore` strategy's
/// per-round wire bytes under `codec` against uncompressed FedAvg.
pub fn explore_ratio_bound_bytes(
    inp: &EfficiencyInputs,
    beta_e: f64,
    unit_lens: &[usize],
    codec: Option<&Compression>,
) -> f64 {
    explore_ratio_bound(inp, beta_e) * codec_byte_factor(unit_lens, codec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> EfficiencyInputs {
        EfficiencyInputs {
            m: 16,
            n: 65,
            n_d: 20,
            r_c: 0.8,
            r_p: 0.5,
        }
    }

    #[test]
    fn restart_period_matches_log() {
        // 0.8^4 = 0.4096 ≥ 0.4, 0.8^5 = 0.328 < 0.4 → ceil(log_0.8 0.4) = 5
        assert_eq!(restart_period(0.8, 0.4), 5);
        assert_eq!(restart_period(1.0, 0.4), usize::MAX);
        assert_eq!(restart_period(0.0, 0.4), 1);
    }

    #[test]
    fn restart_expected_units_below_fedavg() {
        let inp = inputs();
        let t0 = restart_period(inp.r_c, 0.4);
        let e = restart_expected_units(&inp, t0);
        let fedavg = (t0 as f64 + 0.0) * inp.m as f64 * inp.n as f64;
        assert!(e < fedavg, "{e} !< {fedavg}");
        assert!(e > 0.0);
    }

    #[test]
    fn restart_ratio_below_one_when_shrinking() {
        let ratio = restart_ratio(&inputs(), 0.4);
        assert!(ratio < 1.0, "ratio {ratio}");
        assert!(ratio > 0.0);
    }

    #[test]
    fn no_shrink_no_savings() {
        let mut inp = inputs();
        inp.r_c = 1.0;
        inp.r_p = 0.0;
        // with r_c = 1 and r_p = 0 the per-cycle cost equals FedAvg's
        let e = restart_expected_units(&inp, 10);
        // sum_{k=0}^{10} of M*N = 11 M N (the paper's formula counts t0+1
        // broadcasts per cycle including the restart round)
        assert!((e - 11.0 * 16.0 * 65.0).abs() < 1e-6);
    }

    #[test]
    fn explore_bound_dominates_expectation() {
        let inp = inputs();
        let beta_e = 0.667;
        let bound = explore_ratio_bound(&inp, beta_e) * inp.m as f64 * inp.n as f64;
        for gamma in [0.0, 0.3, 0.7, 1.0] {
            for r_p_hat in [inp.r_p, 0.7, 0.9] {
                let e = explore_expected_units(&inp, beta_e, gamma, r_p_hat);
                assert!(
                    e <= bound + 1e-6,
                    "gamma={gamma}, r_p_hat={r_p_hat}: {e} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn explore_bound_decreases_with_masking() {
        let mut inp = inputs();
        let weak = explore_ratio_bound(&inp, 0.667);
        inp.r_p = 0.9;
        let strong = explore_ratio_bound(&inp, 0.667);
        assert!(strong < weak);
    }

    #[test]
    fn unit_bytes_matches_codec_wire_format() {
        assert_eq!(unit_bytes(10, None), 40);
        assert_eq!(unit_bytes(10, Some(&Compression::Identity)), 40);
        assert_eq!(unit_bytes(10, Some(&Compression::QuantF16)), 20);
        assert_eq!(unit_bytes(10, Some(&Compression::QuantI8)), 10);
        // k = floor(0.25 * 10) = 2 kept scalars at 8 bytes each.
        assert_eq!(unit_bytes(10, Some(&Compression::TopK { frac: 0.25 })), 16);
        assert_eq!(unit_bytes(3, Some(&Compression::TopK { frac: 0.25 })), 0);
    }

    #[test]
    fn codec_byte_factor_against_raw() {
        let lens = [10, 7, 3];
        assert!((codec_byte_factor(&lens, None) - 1.0).abs() < 1e-12);
        assert!(
            (codec_byte_factor(&lens, Some(&Compression::QuantF16)) - 0.5).abs() < 1e-12,
            "f16 halves the wire"
        );
        assert!((codec_byte_factor(&lens, Some(&Compression::QuantI8)) - 0.25).abs() < 1e-12);
        // TopK floors per unit: k = 5 + 3 + 1 = 9 of 20 scalars, 8 B each.
        let topk = codec_byte_factor(&lens, Some(&Compression::TopK { frac: 0.5 }));
        assert!((topk - 72.0 / 80.0).abs() < 1e-12, "topk factor {topk}");
        assert_eq!(codec_byte_factor(&[], Some(&Compression::QuantI8)), 0.0);
    }

    #[test]
    fn byte_ratios_scale_unit_ratios() {
        let inp = inputs();
        let lens = [100, 50, 25];
        let unit_ratio = restart_ratio(&inp, 0.4);
        let byte_ratio = restart_ratio_bytes(&inp, 0.4, &lens, Some(&Compression::QuantF16));
        assert!((byte_ratio - unit_ratio * 0.5).abs() < 1e-12);
        // Identity leaves the ratio untouched.
        let same = restart_ratio_bytes(&inp, 0.4, &lens, Some(&Compression::Identity));
        assert!((same - unit_ratio).abs() < 1e-12);
        let bound = explore_ratio_bound(&inp, 0.667);
        let bound_b = explore_ratio_bound_bytes(&inp, 0.667, &lens, Some(&Compression::QuantI8));
        assert!((bound_b - bound * 0.25).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let mut inp = inputs();
        inp.n_d = 100;
        assert!(inp.validate().is_err());
        let mut inp = inputs();
        inp.r_c = 1.5;
        assert!(inp.validate().is_err());
    }
}
