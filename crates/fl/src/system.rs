//! The simulated federated system: a server-side global model, `M` clients
//! holding sub-heterographs, and the primitives every protocol (FedAvg,
//! FedDA, ablations) is built from — broadcast, parallel local update,
//! masked aggregation (Eq. 6) and global evaluation.

use crate::comm::{CommLog, RoundComm};
use crate::compress::{Compression, UplinkCharge};
use crate::faults::{FaultConfig, FaultObserved};
use crate::protocol::LocalPenalty;
use fedda_data::ClientData;
use fedda_hetgraph::{HeteroGraph, LinkExample, LinkSampler};
use fedda_hgn::{
    evaluate, train_local_penalized, EvalResult, GraphView, HgnConfig, LinkPredictor, SimpleHgn,
    TrainConfig,
};
use fedda_tensor::{ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Client-side update privacy: clip-and-noise in the style of DP-FedAvg
/// (the paper's conclusion flags privacy on top of FedDA as future work —
/// this implements the standard mechanism so that direction is exercised).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyConfig {
    /// L2 clip bound `C` on the whole returned update `θ_i - θ`.
    pub clip_norm: f32,
    /// Gaussian noise multiplier `σ`: each returned scalar gets
    /// `N(0, (σ·C)²)` noise added after clipping.
    pub noise_multiplier: f32,
}

impl PrivacyConfig {
    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.clip_norm <= 0.0 {
            return Err("clip_norm must be positive".into());
        }
        if self.noise_multiplier < 0.0 {
            return Err("noise_multiplier must be non-negative".into());
        }
        Ok(())
    }
}

/// How the server weights client contributions when averaging (Eq. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AggWeighting {
    /// `p_i = 1/|contributors|` — the paper's choice (§5.1.2: the server
    /// has no prior knowledge of local data sizes).
    #[default]
    Uniform,
    /// `p_i ∝` the client's local positive-edge count (classic FedAvg
    /// weighting; requires the server to learn the sizes).
    BySampleCount,
}

/// Configuration shared by every federated run.
#[derive(Clone, Debug)]
pub struct FlConfig {
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Model architecture (identical on server and clients).
    pub model: HgnConfig,
    /// Local-update hyper-parameters (Algorithm 1's `B`, `E`, learning
    /// rate).
    pub train: TrainConfig,
    /// Negatives per positive for evaluation metrics.
    pub eval_negatives: usize,
    /// Evaluate the global model every `eval_every` rounds (the final
    /// round is always evaluated; `1` evaluates every round, which is also
    /// what a `0` is clamped to). Evaluation dominates wall-time on large
    /// federations, so sparse cadences make long runs cheap; the curve in
    /// [`RunResult`] then only holds the evaluated rounds.
    pub eval_every: usize,
    /// Run seed: drives model init, client sampling and evaluation.
    pub seed: u64,
    /// Run client updates on crossbeam threads.
    pub parallel: bool,
    /// Worker-pool size for parallel client updates; `None` keeps the
    /// historical one-thread-per-dispatched-client shape, a bound (e.g.
    /// `Some(8)`) caps the pool for large federations. Ignored when
    /// `parallel` is `false`. Results are worker-count independent:
    /// client training is a pure function of (client seed, round,
    /// broadcast parameters) and the pool returns results in dispatch
    /// order.
    pub workers: Option<usize>,
    /// Optional clip-and-noise on returned updates.
    pub privacy: Option<PrivacyConfig>,
    /// Aggregation weighting (Eq. 5's `p_i`).
    pub weighting: AggWeighting,
    /// Optional deterministic fault injection (dropout / stragglers /
    /// corruption); `None` leaves every seeded run bit-identical to a
    /// fault-free driver.
    pub faults: Option<FaultConfig>,
    /// Optional uplink compression (mask-then-compress at dispatch,
    /// decompress at server arrival, ledger charged at compressed size);
    /// `None` keeps the pre-compression code path bit for bit.
    pub compression: Option<Compression>,
}

impl Default for FlConfig {
    fn default() -> Self {
        Self {
            rounds: 40,
            model: HgnConfig::default(),
            train: TrainConfig::default(),
            eval_negatives: 5,
            eval_every: 1,
            seed: 0,
            parallel: true,
            workers: None,
            privacy: None,
            weighting: AggWeighting::Uniform,
            faults: None,
            compression: None,
        }
    }
}

/// One client's immutable state inside the simulator.
pub struct Client {
    /// The client's local data (graph + specialised edge types).
    pub data: ClientData,
    /// Precomputed message-passing view of the local graph.
    pub view: GraphView,
    /// Training positives: edges of the specialised types only (§6.1 — a
    /// biased client's downstream task covers only what it specialises in).
    pub positives: Vec<LinkExample>,
    seed: u64,
}

/// What a client sends back after a local round.
pub struct ClientReturn {
    /// Client index.
    pub client: usize,
    /// Locally-updated parameters.
    pub params: ParamSet,
    /// Per-unit L2 distance between the updated and broadcast parameters —
    /// the "returned gradient" magnitude FedDA scores contributions with.
    pub unit_delta: Vec<f32>,
}

/// One contribution to a weighted masked aggregation: a client's return,
/// its unit mask, and a scale multiplied into the client's base weight
/// (`1.0` for a fresh report; the [`StalenessPolicy::Discount`]
/// multiplier for a stale one).
///
/// [`StalenessPolicy::Discount`]: crate::faults::StalenessPolicy::Discount
pub struct WeightedReturn<'a> {
    /// The client's returned parameters and deltas.
    pub ret: &'a ClientReturn,
    /// One bool per unit: which units this client contributes.
    pub mask: &'a [bool],
    /// Multiplier on the client's base aggregation weight.
    pub scale: f64,
}

/// Per-round evaluation snapshot of the global model.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundEval {
    /// Round index (0-based).
    pub round: usize,
    /// Global-test ROC-AUC.
    pub roc_auc: f64,
    /// Global-test MRR.
    pub mrr: f64,
}

/// Per-round snapshot of FedDA's activation state (empty for protocols
/// without dynamic activation).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ActivationSnapshot {
    /// Clients active at the start of the round.
    pub active_clients: Vec<usize>,
    /// Mean fraction of parameter units requested per active client.
    pub mask_density: f64,
    /// Clients deactivated during the round.
    pub deactivated: Vec<usize>,
    /// Clients reactivated during the round (Restart counts everyone it
    /// brings back, as does the empty-active-set safety net).
    pub reactivated: Vec<usize>,
    /// Whether a full reset fired this round — either the `Restart`
    /// strategy's threshold, or the empty-active-set safety net (which
    /// restores everyone regardless of strategy).
    pub restarted: bool,
}

/// Result of one full federated run.
#[derive(Debug, Default)]
pub struct RunResult {
    /// Per-round global evaluation.
    pub curve: Vec<RoundEval>,
    /// Communication log.
    pub comm: CommLog,
    /// Final-round evaluation.
    pub final_eval: EvalResult,
    /// FedDA's per-round activation trace (empty for FedAvg/baselines).
    pub activation_trace: Vec<ActivationSnapshot>,
    /// Every fault the driver observed, in round order (empty when
    /// `FlConfig::faults` is `None`).
    pub faults: Vec<FaultObserved>,
}

impl RunResult {
    /// Best test AUC along the run.
    pub fn best_auc(&self) -> f64 {
        self.curve
            .iter()
            .map(|e| e.roc_auc)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// First round whose AUC reaches `threshold`. Returns the round index
    /// (not the curve position — the curve is sparse when
    /// `FlConfig::eval_every > 1`).
    pub fn rounds_to_auc(&self, threshold: f64) -> Option<usize> {
        self.curve
            .iter()
            .find(|e| e.roc_auc >= threshold)
            .map(|e| e.round)
    }
}

/// The simulated federation.
pub struct FlSystem {
    /// The shared model architecture (Simple-HGN by default; any
    /// [`LinkPredictor`] via [`FlSystem::with_model`]).
    pub model: Box<dyn LinkPredictor>,
    /// Server-side global parameters.
    pub global: ParamSet,
    /// Clients.
    pub clients: Vec<Client>,
    cfg: FlConfig,
    eval_graph: HeteroGraph,
    eval_view: GraphView,
    test_positives: Vec<LinkExample>,
}

impl FlSystem {
    /// Assemble a federation.
    ///
    /// * `global_train` — the training split of the global graph; used for
    ///   evaluation-time message passing (the simulator's, not the
    ///   server's, knowledge).
    /// * `global_test` — held-out edges evaluated each round.
    /// * `clients` — output of the partitioner.
    pub fn new(
        global_train: &HeteroGraph,
        global_test: &HeteroGraph,
        clients: Vec<ClientData>,
        cfg: FlConfig,
    ) -> Self {
        assert!(!clients.is_empty(), "FlSystem needs at least one client");
        assert!(cfg.rounds > 0, "FlSystem needs at least one round");
        let mut init_rng = StdRng::seed_from_u64(cfg.seed);
        let (model, global) =
            SimpleHgn::init_params(global_train.schema(), &cfg.model, &mut init_rng);
        Self::with_model(
            global_train,
            global_test,
            clients,
            cfg,
            Box::new(model),
            global,
        )
    }

    /// Assemble a federation around an arbitrary [`LinkPredictor`] and its
    /// freshly-initialised parameters — the seam that lets FedDA drive any
    /// HGN (the paper's §6.1 claim; see the R-GCN integration test).
    pub fn with_model(
        global_train: &HeteroGraph,
        global_test: &HeteroGraph,
        clients: Vec<ClientData>,
        cfg: FlConfig,
        model: Box<dyn LinkPredictor>,
        global: ParamSet,
    ) -> Self {
        assert!(!clients.is_empty(), "FlSystem needs at least one client");
        assert!(cfg.rounds > 0, "FlSystem needs at least one round");
        let client_seeds = fedda_data::client_seeds(cfg.seed, clients.len());
        let clients = clients
            .into_iter()
            .zip(client_seeds)
            .map(|(data, seed)| {
                let view = GraphView::new(&data.graph, model.uses_self_loops());
                let sampler = LinkSampler::new(&data.graph);
                let positives = sampler.positives_of_types(&data.specialized);
                Client {
                    data,
                    view,
                    positives,
                    seed,
                }
            })
            .collect();
        let eval_view = GraphView::new(global_train, model.uses_self_loops());
        let test_sampler = LinkSampler::new(global_test);
        let test_positives = test_sampler.all_positives();
        Self {
            model,
            global,
            clients,
            cfg,
            eval_graph: global_train.clone(),
            eval_view,
            test_positives,
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &FlConfig {
        &self.cfg
    }

    /// Enable or disable fault injection on an assembled federation.
    ///
    /// Faults are read by the driver at the start of each run, so this can
    /// flip between a clean and a chaotic run of the *same* system —
    /// nothing else in the configuration or the seeded state changes.
    pub fn set_faults(&mut self, faults: Option<FaultConfig>) {
        self.cfg.faults = faults;
    }

    /// Enable or disable uplink compression on an assembled federation.
    ///
    /// Like [`FlSystem::set_faults`], the codec is read by the driver at
    /// the start of each run: the same seeded system can run uncompressed
    /// and compressed back to back with nothing else changing — the basis
    /// of the `Identity` bit-identity pins.
    pub fn set_compression(&mut self, compression: Option<Compression>) {
        self.cfg.compression = compression;
    }

    /// Replace the local-training hyper-parameters on an assembled
    /// federation. Client-objective penalties
    /// ([`FlProtocol::local_regularizer`](crate::FlProtocol::local_regularizer))
    /// only bite from the second local gradient step — the first step
    /// starts exactly at the broadcast anchor, where the proximal gradient
    /// vanishes — so studies of FedProx-style protocols want more than one
    /// local epoch/batch per round.
    pub fn set_train(&mut self, train: TrainConfig) {
        self.cfg.train = train;
    }

    /// The global training graph (evaluation-time message passing; also
    /// what the `Global` baseline trains on).
    pub fn eval_graph(&self) -> &HeteroGraph {
        &self.eval_graph
    }

    /// Number of clients `M`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Number of parameter units `N`.
    pub fn num_units(&self) -> usize {
        self.global.len()
    }

    /// Number of disentangled units `N_d`.
    pub fn num_disentangled_units(&self) -> usize {
        self.global.num_disentangled()
    }

    /// Ids of the disentangled units.
    pub fn disentangled_ids(&self) -> Vec<ParamId> {
        self.global
            .iter()
            .filter(|(_, p)| p.meta().disentangled)
            .map(|(id, _)| id)
            .collect()
    }

    /// Scalars per unit (for comm accounting).
    pub fn unit_sizes(&self) -> Vec<usize> {
        self.global.iter().map(|(_, p)| p.len()).collect()
    }

    /// Run local updates on the given clients, starting from the current
    /// global model. Clients run on a [`WorkerPool`] when configured
    /// (`FlConfig::parallel` / `FlConfig::workers`).
    ///
    /// # Thread nesting
    ///
    /// Two layers can spawn threads here: the pool's per-client workers,
    /// and the blocked matmul kernels (`fedda_tensor::gemm`) inside each
    /// client's training loop. Letting both fan out would oversubscribe the
    /// machine `clients × kernel-threads` ways, so a multi-worker pool caps
    /// each worker's kernel threads at 1 via
    /// [`fedda_tensor::gemm::with_kernel_threads`] — parallelism comes from
    /// clients, matmuls stay single-threaded. A single-worker pool runs
    /// inline and the kernels keep the full `FEDDA_THREADS` budget instead.
    ///
    /// [`WorkerPool`]: crate::runtime::WorkerPool
    pub fn run_local_round(&self, active: &[usize], round: usize) -> Vec<ClientReturn> {
        self.run_local_round_with(active, round, &[])
    }

    /// [`FlSystem::run_local_round`] with per-client objective penalties:
    /// `penalties[j]` (if any) is applied to `active[j]`'s local objective
    /// at every gradient step, anchored at the current broadcast
    /// (`self.global`). An empty slice or all-`None` entries make this
    /// bit-identical to the penalty-free path — no extra RNG draws, no
    /// extra float operations.
    pub fn run_local_round_with(
        &self,
        active: &[usize],
        round: usize,
        penalties: &[Option<LocalPenalty>],
    ) -> Vec<ClientReturn> {
        assert!(
            penalties.is_empty() || penalties.len() == active.len(),
            "one penalty slot per active client (or none at all)"
        );
        let positions: Vec<usize> = (0..active.len()).collect();
        let work = |&pos: &usize| -> ClientReturn {
            let i = active[pos];
            let client = &self.clients[i];
            let mut params = self.global.clone();
            let mut rng =
                StdRng::seed_from_u64(client.seed ^ (round as u64).wrapping_mul(0x9E37_79B9));
            let sampler = LinkSampler::new(&client.data.graph);
            let penalty = penalties
                .get(pos)
                .and_then(|p| p.as_ref())
                .map(|p| fedda_hgn::Penalty {
                    prox_mu: p.prox_mu,
                    reference: &self.global,
                    linear: p.linear.as_deref(),
                });
            train_local_penalized(
                self.model.as_ref(),
                &mut params,
                &client.view,
                &sampler,
                &client.positives,
                &self.cfg.train,
                penalty.as_ref(),
                &mut rng,
            );
            if let Some(privacy) = self.cfg.privacy {
                // fedda-lint: allow(panic-path, reason = "config is validated at system construction; this re-check only guards hand-built FlSystem values")
                privacy.validate().expect("invalid PrivacyConfig");
                apply_privacy(&mut params, &self.global, privacy, &mut rng);
            }
            let unit_delta = params.unit_l2_distances(&self.global);
            ClientReturn {
                client: i,
                params,
                unit_delta,
            }
        };
        let workers = if self.cfg.parallel {
            self.cfg.workers.unwrap_or(active.len())
        } else {
            1
        };
        crate::runtime::WorkerPool::new(workers).run_ordered(&positions, work)
    }

    /// Masked federated averaging (Eq. 6): for every unit `k`,
    /// `θ^{t+1}[k] = mean over {i : I_i[k] = 1} of θ_i[k]`; units no client
    /// contributed keep their previous value.
    ///
    /// `masks[j]` corresponds to `returns[j]` and has one bool per unit.
    pub fn aggregate_masked(&mut self, returns: &[ClientReturn], masks: &[Vec<bool>]) {
        assert_eq!(returns.len(), masks.len(), "one mask per returning client");
        let contributions: Vec<WeightedReturn<'_>> = returns
            .iter()
            .zip(masks)
            .map(|(ret, mask)| WeightedReturn {
                ret,
                mask,
                scale: 1.0,
            })
            .collect();
        self.aggregate_weighted(&contributions);
    }

    /// Scaled variant of [`FlSystem::aggregate_masked`] used by the fault
    /// path: each contribution's base weight (Eq. 5's `p_i`) is multiplied
    /// by its `scale` before the per-unit normalisation, so staleness
    /// discounts compose with the weighting scheme and dropped clients are
    /// simply absent — the division by each unit's surviving weight sum is
    /// exactly the Eq. 6 renormalisation over survivors. A `scale` of
    /// `1.0` on every contribution is bit-identical to
    /// [`FlSystem::aggregate_masked`].
    pub fn aggregate_weighted(&mut self, contributions: &[WeightedReturn<'_>]) {
        let n = self.num_units();
        let weights: Vec<f64> = contributions
            .iter()
            .map(|c| {
                let base = match self.cfg.weighting {
                    AggWeighting::Uniform => 1.0,
                    AggWeighting::BySampleCount => {
                        self.clients[c.ret.client].positives.len().max(1) as f64
                    }
                };
                base * c.scale
            })
            .collect();
        let mut weight_sums = vec![0.0f64; n];
        // Accumulate into f64 buffers for stable averaging.
        let mut sums: Vec<Vec<f64>> = self
            .global
            .iter()
            .map(|(_, p)| vec![0.0f64; p.len()])
            .collect();
        for (c, &w) in contributions.iter().zip(&weights) {
            assert_eq!(c.mask.len(), n, "mask length must equal unit count");
            for (k, (_, p)) in c.ret.params.iter().enumerate() {
                if c.mask[k] {
                    weight_sums[k] += w;
                    for (s, &v) in sums[k].iter_mut().zip(p.value().as_slice()) {
                        *s += w * f64::from(v);
                    }
                }
            }
        }
        for (k, (_, p)) in self.global.iter_mut().enumerate() {
            if weight_sums[k] > 0.0 {
                let inv = 1.0 / weight_sums[k];
                for (w, &s) in p.value_mut().as_mut_slice().iter_mut().zip(&sums[k]) {
                    *w = (s * inv) as f32;
                }
            }
        }
    }

    /// Communication counters for a round where `masks[j]` was requested
    /// from each active client (downlink is the full model per the paper's
    /// broadcast step).
    pub fn round_comm(&self, masks: &[Vec<bool>]) -> RoundComm {
        self.round_comm_parts(masks.len(), masks)
    }

    /// Communication counters with broadcast and report fan-out decoupled
    /// — the shape faults force on a round: the server broadcasts to every
    /// one of `broadcast_clients` selected clients, but `uplink_masks`
    /// holds one mask per report whose bytes actually arrived (fresh
    /// survivors, rejected-but-received corruptions, stale arrivals — not
    /// dropouts or still-held stragglers).
    pub fn round_comm_parts(
        &self,
        broadcast_clients: usize,
        uplink_masks: &[Vec<bool>],
    ) -> RoundComm {
        let sizes = self.unit_sizes();
        let charges: Vec<UplinkCharge> = uplink_masks
            .iter()
            .map(|m| UplinkCharge::from_mask(m, &sizes))
            .collect();
        self.round_comm_charges(broadcast_clients, &charges)
    }

    /// Communication counters from per-report ledger charges — the shape
    /// the drivers use: one [`UplinkCharge`] per report whose bytes
    /// actually arrived, already priced at the compressed size when a
    /// [`Compression`] codec is configured. [`FlSystem::round_comm_parts`]
    /// is the uncompressed special case (`4 × scalars` bytes per mask).
    pub fn round_comm_charges(
        &self,
        broadcast_clients: usize,
        charges: &[UplinkCharge],
    ) -> RoundComm {
        let sizes = self.unit_sizes();
        let n_units = sizes.len();
        let n_scalars: usize = sizes.iter().sum();
        let mut uplink_units = 0usize;
        let mut uplink_scalars = 0usize;
        let mut uplink_bytes = 0usize;
        for c in charges {
            uplink_units += c.units;
            uplink_scalars += c.scalars;
            uplink_bytes += c.bytes;
        }
        RoundComm {
            active_clients: broadcast_clients,
            uplink_units,
            uplink_scalars,
            uplink_bytes,
            downlink_units: broadcast_clients * n_units,
            downlink_scalars: broadcast_clients * n_scalars,
        }
    }

    /// Evaluate the current global model on the global test edges
    /// (message passing over the global training graph). Deterministic per
    /// round so frameworks sharing a seed are comparable.
    pub fn evaluate_global(&self, round: usize) -> EvalResult {
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ 0xEAE5 ^ (round as u64).wrapping_mul(31));
        let sampler = LinkSampler::new(&self.eval_graph);
        evaluate(
            self.model.as_ref(),
            &self.global,
            &self.eval_view,
            &sampler,
            &self.test_positives,
            self.cfg.eval_negatives,
            &mut rng,
        )
    }

    /// Detailed evaluation of the current global model: per-edge-type AUC
    /// breakdown (the fairness view), Hits@K and average precision.
    pub fn evaluate_global_detailed(&self, round: usize) -> fedda_hgn::DetailedEvalResult {
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ 0xEAE5 ^ (round as u64).wrapping_mul(31));
        let sampler = LinkSampler::new(&self.eval_graph);
        fedda_hgn::evaluate_detailed(
            self.model.as_ref(),
            &self.global,
            &self.eval_view,
            &sampler,
            &self.test_positives,
            self.cfg.eval_negatives,
            &mut rng,
        )
    }

    /// Evaluate an arbitrary parameter set (used by the Local baseline).
    pub fn evaluate_params(&self, params: &ParamSet, round: usize) -> EvalResult {
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ 0xEAE5 ^ (round as u64).wrapping_mul(31));
        let sampler = LinkSampler::new(&self.eval_graph);
        evaluate(
            self.model.as_ref(),
            params,
            &self.eval_view,
            &sampler,
            &self.test_positives,
            self.cfg.eval_negatives,
            &mut rng,
        )
    }

    /// Reset the global parameters to a fresh seeded Simple-HGN
    /// initialisation (only meaningful for systems built with
    /// [`FlSystem::new`]; systems built via [`FlSystem::with_model`] should
    /// construct a new system instead).
    pub fn reinit(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, params) =
            SimpleHgn::init_params(self.eval_graph.schema(), &self.cfg.model, &mut rng);
        assert_eq!(
            params.len(),
            self.global.len(),
            "reinit requires the default Simple-HGN parameter layout"
        );
        self.global = params;
    }

    /// An all-true mask set for `m` clients (vanilla FedAvg's request).
    pub fn full_masks(&self, m: usize) -> Vec<Vec<bool>> {
        vec![vec![true; self.num_units()]; m]
    }

    /// Random unit mask with the given activation fraction (Fig. 2's `D`).
    pub fn random_mask<R: Rng + ?Sized>(&self, fraction: f64, rng: &mut R) -> Vec<bool> {
        let n = self.num_units();
        let keep = ((n as f64) * fraction).round().max(1.0) as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        // partial Fisher–Yates
        for i in 0..keep.min(n) {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut mask = vec![false; n];
        for &k in idx.iter().take(keep.min(n)) {
            mask[k] = true;
        }
        mask
    }
}

/// Clip the whole update `θ_i - θ` to `clip_norm` in L2, then add
/// `N(0, (σ·C)²)` Gaussian noise to every returned scalar (DP-FedAvg's
/// client-side mechanism).
fn apply_privacy<R: rand::Rng + ?Sized>(
    params: &mut ParamSet,
    broadcast: &ParamSet,
    privacy: PrivacyConfig,
    rng: &mut R,
) {
    // Global L2 norm of the update across all units.
    let mut norm_sq = 0.0f64;
    for ((_, p), (_, b)) in params.iter().zip(broadcast.iter()) {
        for (&x, &y) in p.value().as_slice().iter().zip(b.value().as_slice()) {
            let d = f64::from(x) - f64::from(y);
            norm_sq += d * d;
        }
    }
    let norm = norm_sq.sqrt() as f32;
    let scale = if norm > privacy.clip_norm && norm > 0.0 {
        privacy.clip_norm / norm
    } else {
        1.0
    };
    let noise_std = privacy.noise_multiplier * privacy.clip_norm;
    let ids: Vec<ParamId> = params.ids().collect();
    for id in ids {
        let base = broadcast.get(id).value().clone();
        let value = params.get_mut(id).value_mut();
        for (x, &b) in value.as_mut_slice().iter_mut().zip(base.as_slice()) {
            let clipped = b + scale * (*x - b);
            let noise = if noise_std > 0.0 {
                let (n0, _) = fedda_tensor::init::box_muller(rng);
                noise_std * n0
            } else {
                0.0
            };
            *x = clipped + noise;
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use fedda_data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
    use fedda_hetgraph::split::split_edges;

    pub(crate) fn tiny_system(m: usize, seed: u64) -> FlSystem {
        let g = dblp_like(&PresetOptions {
            scale: 0.0015,
            seed,
            ..Default::default()
        })
        .graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let split = split_edges(&g, 0.15, &mut rng);
        let pcfg = PartitionConfig::paper_defaults(m, g.schema().num_edge_types(), seed);
        let clients = partition_non_iid(&split.train, &pcfg);
        let cfg = FlConfig {
            rounds: 2,
            model: HgnConfig {
                hidden_dim: 4,
                num_layers: 1,
                num_heads: 2,
                edge_emb_dim: 4,
                ..Default::default()
            },
            train: TrainConfig {
                local_epochs: 1,
                lr: 5e-3,
                ..Default::default()
            },
            eval_negatives: 3,
            eval_every: 1,
            seed,
            parallel: true,
            workers: None,
            privacy: None,
            weighting: AggWeighting::Uniform,
            faults: None,
            compression: None,
        };
        FlSystem::new(&split.train, &split.test, clients, cfg)
    }

    #[test]
    fn system_construction_counts() {
        let sys = tiny_system(4, 1);
        assert_eq!(sys.num_clients(), 4);
        assert!(sys.num_units() > 0);
        // 5 real edge types + self-loop shared unit; 1 layer → ≥5 per-type
        assert!(sys.num_disentangled_units() >= 5);
        assert_eq!(sys.disentangled_ids().len(), sys.num_disentangled_units());
    }

    #[test]
    fn local_round_returns_moved_params() {
        let sys = tiny_system(3, 2);
        let returns = sys.run_local_round(&[0, 1, 2], 0);
        assert_eq!(returns.len(), 3);
        for r in &returns {
            assert!(
                r.unit_delta.iter().any(|&d| d > 0.0),
                "client {} did not move",
                r.client
            );
            assert_eq!(r.unit_delta.len(), sys.num_units());
        }
        // determinism: same round twice gives identical results
        let again = sys.run_local_round(&[0, 1, 2], 0);
        for (a, b) in returns.iter().zip(&again) {
            assert_eq!(a.params.flatten(), b.params.flatten());
        }
    }

    #[test]
    fn parallel_and_serial_rounds_agree() {
        let mut sys = tiny_system(3, 3);
        let par = sys.run_local_round(&[0, 1, 2], 1);
        sys.cfg.parallel = false;
        let ser = sys.run_local_round(&[0, 1, 2], 1);
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.client, b.client);
            assert_eq!(a.params.flatten(), b.params.flatten());
        }
    }

    #[test]
    fn aggregate_full_masks_is_plain_average() {
        let mut sys = tiny_system(2, 4);
        let returns = sys.run_local_round(&[0, 1], 0);
        let masks = sys.full_masks(2);
        let expect: Vec<f32> = {
            let a = returns[0].params.flatten();
            let b = returns[1].params.flatten();
            a.iter()
                .zip(&b)
                .map(|(&x, &y)| ((f64::from(x) + f64::from(y)) / 2.0) as f32)
                .collect()
        };
        sys.aggregate_masked(&returns, &masks);
        let got = sys.global.flatten();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_units_keep_old_value_when_uncontributed() {
        let mut sys = tiny_system(2, 5);
        let before = sys.global.flatten();
        let returns = sys.run_local_round(&[0, 1], 0);
        // Mask out unit 0 for everyone.
        let mut masks = sys.full_masks(2);
        masks[0][0] = false;
        masks[1][0] = false;
        sys.aggregate_masked(&returns, &masks);
        let size0 = sys.unit_sizes()[0];
        assert_eq!(&sys.global.flatten()[..size0], &before[..size0]);
    }

    #[test]
    fn round_comm_counts_masked_units() {
        let sys = tiny_system(2, 6);
        let mut masks = sys.full_masks(2);
        let n = sys.num_units();
        masks[1] = vec![false; n];
        masks[1][3] = true;
        let rc = sys.round_comm(&masks);
        assert_eq!(rc.active_clients, 2);
        assert_eq!(rc.uplink_units, n + 1);
        assert_eq!(rc.downlink_units, 2 * n);
        assert_eq!(
            rc.uplink_scalars,
            sys.global.num_scalars() + sys.unit_sizes()[3]
        );
    }

    #[test]
    fn random_mask_has_requested_density() {
        let sys = tiny_system(2, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let mask = sys.random_mask(0.5, &mut rng);
        let on = mask.iter().filter(|&&b| b).count();
        let expect = ((sys.num_units() as f64) * 0.5).round() as usize;
        assert_eq!(on, expect);
    }

    #[test]
    fn privacy_clipping_bounds_the_update_norm() {
        let mut sys = tiny_system(2, 9);
        sys.cfg.privacy = Some(PrivacyConfig {
            clip_norm: 0.05,
            noise_multiplier: 0.0,
        });
        let returns = sys.run_local_round(&[0, 1], 0);
        for r in &returns {
            let norm: f32 = r.unit_delta.iter().map(|&d| d * d).sum::<f32>().sqrt();
            assert!(
                norm <= 0.05 + 1e-4,
                "update norm {norm} exceeds the clip bound"
            );
        }
    }

    #[test]
    fn privacy_noise_perturbs_returns() {
        let mut sys = tiny_system(2, 10);
        let clean = sys.run_local_round(&[0], 0);
        sys.cfg.privacy = Some(PrivacyConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.1,
        });
        let noisy = sys.run_local_round(&[0], 0);
        assert_ne!(clean[0].params.flatten(), noisy[0].params.flatten());
        assert!(!noisy[0].params.has_non_finite());
        // And the whole protocol still runs end to end under DP.
        let result = crate::FedDa::explore().run(&mut sys);
        assert!(result.final_eval.roc_auc.is_finite());
    }

    #[test]
    fn sample_count_weighting_biases_toward_larger_clients() {
        let mut sys = tiny_system(2, 11);
        let returns = sys.run_local_round(&[0, 1], 0);
        let masks = sys.full_masks(2);
        let uniform_expect: Vec<f32> = {
            let a = returns[0].params.flatten();
            let b = returns[1].params.flatten();
            a.iter()
                .zip(&b)
                .map(|(&x, &y)| ((f64::from(x) + f64::from(y)) / 2.0) as f32)
                .collect()
        };
        sys.cfg.weighting = AggWeighting::BySampleCount;
        sys.aggregate_masked(&returns, &masks);
        let weighted = sys.global.flatten();
        let sizes: Vec<usize> = sys.clients.iter().map(|c| c.positives.len()).collect();
        if sizes[0] != sizes[1] {
            assert_ne!(weighted, uniform_expect, "weighting had no effect");
        }
        // Weighted mean stays within the per-client envelope.
        let a = returns[0].params.flatten();
        let b = returns[1].params.flatten();
        for ((w, &x), &y) in weighted.iter().zip(&a).zip(&b) {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            assert!(*w >= lo - 1e-5 && *w <= hi + 1e-5);
        }
    }

    #[test]
    fn aggregate_weighted_scale_one_matches_aggregate_masked() {
        let mut a = tiny_system(2, 12);
        let mut b = tiny_system(2, 12);
        let returns = a.run_local_round(&[0, 1], 0);
        let masks = a.full_masks(2);
        a.aggregate_masked(&returns, &masks);
        let contributions: Vec<WeightedReturn<'_>> = returns
            .iter()
            .zip(&masks)
            .map(|(ret, mask)| WeightedReturn {
                ret,
                mask,
                scale: 1.0,
            })
            .collect();
        b.aggregate_weighted(&contributions);
        let fa = a.global.flatten();
        let fb = b.global.flatten();
        for (x, y) in fa.iter().zip(&fb) {
            assert_eq!(x.to_bits(), y.to_bits(), "scale 1.0 must be bit-identical");
        }
    }

    #[test]
    fn aggregate_weighted_renormalises_over_survivors() {
        // Dropping one of two clients must leave exactly the survivor's
        // parameters — the per-unit weight-sum division *is* the Eq. 6
        // renormalisation over whoever remains.
        let mut sys = tiny_system(2, 13);
        let returns = sys.run_local_round(&[0, 1], 0);
        let mask = vec![true; sys.num_units()];
        sys.aggregate_weighted(&[WeightedReturn {
            ret: &returns[1],
            mask: &mask,
            scale: 1.0,
        }]);
        let got = sys.global.flatten();
        let expect = returns[1].params.flatten();
        for (g, e) in got.iter().zip(&expect) {
            assert!(
                (g - e).abs() < 1e-6,
                "survivor weight must renormalise to 1"
            );
        }
    }

    #[test]
    fn aggregate_weighted_discount_pulls_toward_fresh_report() {
        let mut sys = tiny_system(2, 14);
        let returns = sys.run_local_round(&[0, 1], 0);
        let mask = vec![true; sys.num_units()];
        // Fresh client 0 at weight 1, stale client 1 discounted to 0.25:
        // result = (θ_0 + 0.25·θ_1) / 1.25.
        sys.aggregate_weighted(&[
            WeightedReturn {
                ret: &returns[0],
                mask: &mask,
                scale: 1.0,
            },
            WeightedReturn {
                ret: &returns[1],
                mask: &mask,
                scale: 0.25,
            },
        ]);
        let got = sys.global.flatten();
        let a = returns[0].params.flatten();
        let b = returns[1].params.flatten();
        for ((g, &x), &y) in got.iter().zip(&a).zip(&b) {
            let e = (f64::from(x) + 0.25 * f64::from(y)) / 1.25;
            assert!((f64::from(*g) - e).abs() < 1e-6);
        }
    }

    #[test]
    fn round_comm_parts_decouples_broadcast_from_uplink() {
        let sys = tiny_system(3, 15);
        let n = sys.num_units();
        // 3 clients broadcast to, only 1 full report arrived.
        let rc = sys.round_comm_parts(3, &[vec![true; n]]);
        assert_eq!(rc.active_clients, 3);
        assert_eq!(rc.downlink_units, 3 * n);
        assert_eq!(rc.uplink_units, n);
        assert_eq!(rc.uplink_scalars, sys.global.num_scalars());
        // Uncompressed bytes are exactly 4 per f32 scalar.
        assert_eq!(rc.uplink_bytes, 4 * rc.uplink_scalars);
        // Charge-based accounting sums per-report charges verbatim.
        let charged = sys.round_comm_charges(
            3,
            &[
                crate::UplinkCharge {
                    units: 2,
                    scalars: 10,
                    bytes: 20,
                },
                crate::UplinkCharge {
                    units: 1,
                    scalars: 4,
                    bytes: 32,
                },
            ],
        );
        assert_eq!(charged.uplink_units, 3);
        assert_eq!(charged.uplink_scalars, 14);
        assert_eq!(charged.uplink_bytes, 52);
        assert_eq!(charged.downlink_units, 3 * n);
        // And the classic path is the m == reports special case.
        let full = sys.round_comm(&sys.full_masks(3));
        assert_eq!(full, sys.round_comm_parts(3, &sys.full_masks(3)));
    }

    #[test]
    fn evaluation_is_deterministic_per_round() {
        let sys = tiny_system(2, 8);
        let a = sys.evaluate_global(3);
        let b = sys.evaluate_global(3);
        assert_eq!(a.roc_auc, b.roc_auc);
        assert_eq!(a.mrr, b.mrr);
    }
}
