//! The shared round loop every protocol runs on.
//!
//! [`RoundDriver::run`] owns the canonical federated round — broadcast to
//! the selected clients, parallel local updates, masked aggregation
//! (Eq. 6), communication accounting, activation tracing, the evaluation
//! cadence (`FlConfig::eval_every`) and structured [`RoundEvent`] emission
//! — while the [`FlProtocol`] hooks decide selection, masks and activation
//! dynamics. FedAvg, both FedDA strategies and the `Global` baseline all
//! execute through this loop; their seeded behaviour is pinned bit-for-bit
//! by the `golden_curves` regression tests.

use crate::events::{EventSink, RoundEvent};
use crate::protocol::FlProtocol;
use crate::system::{ActivationSnapshot, FlSystem, RoundEval, RunResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Executes an [`FlProtocol`] over an [`FlSystem`], optionally streaming
/// per-round [`RoundEvent`]s to an [`EventSink`].
#[derive(Default)]
pub struct RoundDriver<'a> {
    sink: Option<&'a mut dyn EventSink>,
}

impl<'a> RoundDriver<'a> {
    /// Driver without an event sink.
    pub fn new() -> Self {
        Self { sink: None }
    }

    /// Driver that emits every round's [`RoundEvent`] to `sink`.
    pub fn with_sink(sink: &'a mut dyn EventSink) -> Self {
        Self { sink: Some(sink) }
    }

    /// Run `system.config().rounds` rounds of `protocol`.
    ///
    /// Calls `protocol.validate()` before round 0 and returns its error
    /// without touching the system if the configuration is invalid.
    pub fn run(
        &mut self,
        protocol: &mut dyn FlProtocol,
        system: &mut FlSystem,
    ) -> Result<RunResult, String> {
        protocol
            .validate()
            .map_err(|e| format!("invalid {} configuration: {e}", protocol.name()))?;
        let rounds = system.config().rounds;
        let eval_every = system.config().eval_every.max(1);
        let mut rng = StdRng::seed_from_u64(system.config().seed ^ protocol.seed_tweak());
        protocol.begin(system, &mut rng);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.begin_run(&protocol.name(), rounds);
        }

        let mut result = RunResult::default();
        for round in 0..rounds {
            let started = Instant::now();
            let active = protocol.select_clients(system, round, &mut rng);
            let masks = protocol.build_masks(system, &active, round, &mut rng);
            debug_assert_eq!(masks.len(), active.len(), "one mask per active client");
            let mask_density = mean_mask_density(&masks);
            let returns = system.run_local_round(&active, round);
            system.aggregate_masked(&returns, &masks);
            let comm = system.round_comm(&masks);
            // Protocols that activate no one (the Global baseline) keep an
            // empty comm log, matching their pre-driver behaviour.
            if !active.is_empty() {
                result.comm.push(comm);
            }
            let outcome = protocol.post_aggregate(system, &active, &returns, round, &mut rng);
            if protocol.traces_activation() {
                result.activation_trace.push(ActivationSnapshot {
                    active_clients: active.clone(),
                    mask_density,
                    deactivated: outcome.deactivated.clone(),
                    reactivated: outcome.reactivated.clone(),
                    restarted: outcome.restarted,
                });
            }
            let eval = if (round + 1) % eval_every == 0 || round + 1 == rounds {
                let eval = system.evaluate_global(round);
                let point = RoundEval {
                    round,
                    roc_auc: eval.roc_auc,
                    mrr: eval.mrr,
                };
                result.curve.push(point);
                result.final_eval = eval;
                Some(point)
            } else {
                None
            };
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.on_round(&RoundEvent {
                    round,
                    active_clients: active,
                    mask_density,
                    comm,
                    deactivated: outcome.deactivated,
                    reactivated: outcome.reactivated,
                    restarted: outcome.restarted,
                    eval,
                    wall_ms: started.elapsed().as_secs_f64() * 1e3,
                });
            }
        }
        Ok(result)
    }
}

/// Mean fraction of requested units per mask; `0.0` for an empty mask set.
fn mean_mask_density(masks: &[Vec<bool>]) -> f64 {
    if masks.is_empty() {
        return 0.0;
    }
    masks
        .iter()
        .map(|m| {
            if m.is_empty() {
                0.0
            } else {
                m.iter().filter(|&&b| b).count() as f64 / m.len() as f64
            }
        })
        .sum::<f64>()
        / masks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MemorySink;
    use crate::system::tests::tiny_system;
    use crate::FedAvg;

    #[test]
    fn mask_density_handles_edge_cases() {
        assert_eq!(mean_mask_density(&[]), 0.0);
        assert_eq!(mean_mask_density(&[vec![]]), 0.0);
        assert_eq!(
            mean_mask_density(&[vec![true, false], vec![true, true]]),
            0.75
        );
    }

    #[test]
    fn driver_rejects_invalid_protocols_before_touching_the_system() {
        let mut sys = tiny_system(2, 40);
        let before = sys.global.flatten();
        let mut bad = FedAvg {
            client_fraction: 0.0,
            param_fraction: 1.0,
        };
        let err = RoundDriver::new().run(&mut bad, &mut sys).unwrap_err();
        assert!(err.contains("client_fraction"), "unexpected error: {err}");
        assert_eq!(sys.global.flatten(), before, "system must be untouched");
    }

    #[test]
    fn driver_emits_one_event_per_round() {
        let mut sys = tiny_system(3, 41);
        let mut sink = MemorySink::new();
        let result = RoundDriver::with_sink(&mut sink)
            .run(&mut FedAvg::vanilla(), &mut sys)
            .unwrap();
        let rounds = sys.config().rounds;
        assert_eq!(sink.runs, vec![("FedAvg".to_string(), rounds)]);
        assert_eq!(sink.events.len(), rounds);
        for (i, (event, rc)) in sink.events.iter().zip(result.comm.rounds()).enumerate() {
            assert_eq!(event.round, i);
            assert_eq!(event.active_clients, vec![0, 1, 2]);
            assert_eq!(event.mask_density, 1.0);
            assert_eq!(&event.comm, rc);
            assert!(event.eval.is_some(), "eval_every=1 evaluates every round");
            assert!(event.wall_ms >= 0.0);
        }
    }
}
