//! The shared round loop every protocol runs on.
//!
//! [`RoundDriver::run`] owns the canonical federated round — broadcast to
//! the selected clients, parallel local updates, masked aggregation
//! (Eq. 6), communication accounting, activation tracing, the evaluation
//! cadence (`FlConfig::eval_every`) and structured [`RoundEvent`] emission
//! — while the [`FlProtocol`] hooks decide selection, masks and activation
//! dynamics. FedAvg, both FedDA strategies and the `Global` baseline all
//! execute through this loop; their seeded behaviour is pinned bit-for-bit
//! by the `golden_curves` regression tests.

use crate::events::{EventSink, RoundEvent};
use crate::faults::{
    corrupt_return, detect_rejection, FaultConfig, FaultEffect, FaultKind, FaultObserved, FaultPlan,
};
use crate::protocol::FlProtocol;
use crate::system::{
    ActivationSnapshot, ClientReturn, FlSystem, RoundEval, RunResult, WeightedReturn,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// A straggler's report parked server-side until its arrival round.
struct HeldReport {
    client: usize,
    from_round: usize,
    arrival: usize,
    ret: ClientReturn,
    mask: Vec<bool>,
}

/// Executes an [`FlProtocol`] over an [`FlSystem`], optionally streaming
/// per-round [`RoundEvent`]s to an [`EventSink`].
#[derive(Default)]
pub struct RoundDriver<'a> {
    sink: Option<&'a mut dyn EventSink>,
}

impl<'a> RoundDriver<'a> {
    /// Driver without an event sink.
    pub fn new() -> Self {
        Self { sink: None }
    }

    /// Driver that emits every round's [`RoundEvent`] to `sink`.
    pub fn with_sink(sink: &'a mut dyn EventSink) -> Self {
        Self { sink: Some(sink) }
    }

    /// Run `system.config().rounds` rounds of `protocol`.
    ///
    /// Calls `protocol.validate()` before round 0 and returns its error
    /// without touching the system if the configuration is invalid.
    pub fn run(
        &mut self,
        protocol: &mut dyn FlProtocol,
        system: &mut FlSystem,
    ) -> Result<RunResult, String> {
        protocol
            .validate()
            .map_err(|e| format!("invalid {} configuration: {e}", protocol.name()))?;
        let fault_cfg = system.config().faults.clone();
        if let Some(fc) = &fault_cfg {
            fc.validate()
                .map_err(|e| format!("invalid fault configuration: {e}"))?;
        }
        let rounds = system.config().rounds;
        let eval_every = system.config().eval_every.max(1);
        let mut rng = StdRng::seed_from_u64(system.config().seed ^ protocol.seed_tweak());
        // The fault schedule is pre-sampled from its own stream so turning
        // it on never perturbs the protocol/init/eval draws below.
        let plan = fault_cfg
            .as_ref()
            .map(|fc| FaultPlan::generate(fc, rounds, system.num_clients(), system.config().seed));
        let mut pending: Vec<HeldReport> = Vec::new();
        protocol.begin(system, &mut rng);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.begin_run(&protocol.name(), rounds);
        }

        let mut result = RunResult::default();
        for round in 0..rounds {
            // fedda-lint: allow(wall-clock, reason = "round wall-time telemetry only; never feeds selection, masking, aggregation or any logged curve")
            let started = Instant::now();
            let active = protocol.select_clients(system, round, &mut rng);
            let masks = protocol.build_masks(system, &active, round, &mut rng);
            debug_assert_eq!(masks.len(), active.len(), "one mask per active client");
            let mask_density = mean_mask_density(&masks);
            let (returns, comm, fault_obs) = match (&plan, &fault_cfg) {
                (Some(plan), Some(fc)) => run_faulted_round(
                    system,
                    plan,
                    fc,
                    &active,
                    &masks,
                    round,
                    rounds,
                    &mut pending,
                ),
                _ => {
                    // Fault-free path: byte-for-byte the pre-fault loop so
                    // every golden curve stays bit-identical.
                    let returns = system.run_local_round(&active, round);
                    system.aggregate_masked(&returns, &masks);
                    let comm = system.round_comm(&masks);
                    (returns, comm, Vec::new())
                }
            };
            // Protocols that activate no one (the Global baseline) keep an
            // empty comm log, matching their pre-driver behaviour.
            if !active.is_empty() {
                result.comm.push(comm);
            }
            if !fault_obs.is_empty() {
                protocol.on_faults(system, &fault_obs, round);
            }
            let outcome = protocol.post_aggregate(system, &active, &returns, round, &mut rng);
            if protocol.traces_activation() {
                result.activation_trace.push(ActivationSnapshot {
                    active_clients: active.clone(),
                    mask_density,
                    deactivated: outcome.deactivated.clone(),
                    reactivated: outcome.reactivated.clone(),
                    restarted: outcome.restarted,
                });
            }
            let eval = if (round + 1) % eval_every == 0 || round + 1 == rounds {
                let eval = system.evaluate_global(round);
                let point = RoundEval {
                    round,
                    roc_auc: eval.roc_auc,
                    mrr: eval.mrr,
                };
                result.curve.push(point);
                result.final_eval = eval;
                Some(point)
            } else {
                None
            };
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.on_round(&RoundEvent {
                    round,
                    active_clients: active,
                    mask_density,
                    comm,
                    deactivated: outcome.deactivated,
                    reactivated: outcome.reactivated,
                    restarted: outcome.restarted,
                    faults: fault_obs.clone(),
                    eval,
                    wall_ms: started.elapsed().as_secs_f64() * 1e3,
                });
            }
            result.faults.extend(fault_obs);
        }
        Ok(result)
    }
}

/// One round under fault injection: run the local updates of every
/// selected client that will report this round, apply scheduled
/// corruptions and hold scheduled stragglers, admit this round's stale
/// arrivals per the staleness policy, aggregate the admissible
/// contributions with renormalised weights, and account only the bytes
/// that actually moved.
///
/// Returns the fresh admissible returns (what `post_aggregate` sees), the
/// round's comm counters and the structured fault records — fresh-round
/// effects in ascending client order, then stale arrivals in the order
/// they were held.
#[allow(clippy::too_many_arguments)]
fn run_faulted_round(
    system: &mut FlSystem,
    plan: &FaultPlan,
    fc: &FaultConfig,
    active: &[usize],
    masks: &[Vec<bool>],
    round: usize,
    rounds: usize,
    pending: &mut Vec<HeldReport>,
) -> (
    Vec<ClientReturn>,
    crate::comm::RoundComm,
    Vec<FaultObserved>,
) {
    // Dropped clients never report, so their local compute is skipped
    // outright; stragglers and corrupted clients still train.
    let reporting: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&c| plan.fault_at(round, c) != Some(FaultKind::Dropout))
        .collect();
    let broadcast = system.global.clone();
    let mut returns = system.run_local_round(&reporting, round);

    let mut observations: Vec<FaultObserved> = Vec::new();
    let mut survivors: Vec<ClientReturn> = Vec::new();
    let mut survivor_masks: Vec<Vec<bool>> = Vec::new();
    let mut uplink_masks: Vec<Vec<bool>> = Vec::new();
    let mut returns_iter = returns.drain(..);
    for (j, &client) in active.iter().enumerate() {
        let fault = plan.fault_at(round, client);
        if fault == Some(FaultKind::Dropout) {
            observations.push(FaultObserved {
                round,
                client,
                effect: FaultEffect::Dropout,
            });
            continue;
        }
        let mut ret = returns_iter
            .next()
            // fedda-lint: allow(panic-path, reason = "run_local_round returns exactly one entry per non-dropout client; a shortfall is driver-internal corruption")
            .expect("one return per reporting client");
        debug_assert_eq!(ret.client, client);
        match fault {
            Some(FaultKind::Straggler { delay }) => {
                let arrives = round + delay;
                observations.push(FaultObserved {
                    round,
                    client,
                    effect: FaultEffect::StragglerHeld {
                        arrival: (arrives < rounds).then_some(arrives),
                    },
                });
                // Reports that would land after the run ends are dropped on
                // the floor — their bytes never transfer.
                if arrives < rounds {
                    pending.push(HeldReport {
                        client,
                        from_round: round,
                        arrival: arrives,
                        ret,
                        mask: masks[j].clone(),
                    });
                }
            }
            Some(FaultKind::Corruption(kind)) => {
                corrupt_return(&mut ret, &broadcast, kind);
                // The corrupted bytes still crossed the network before the
                // server could inspect them.
                uplink_masks.push(masks[j].clone());
                match detect_rejection(&ret, fc) {
                    Some(effect) => observations.push(FaultObserved {
                        round,
                        client,
                        effect,
                    }),
                    // An undetectable corruption (finite garbage with no
                    // norm bound) sails through like a healthy report.
                    None => {
                        survivors.push(ret);
                        survivor_masks.push(masks[j].clone());
                    }
                }
            }
            Some(FaultKind::Dropout) => unreachable!("dropouts filtered above"),
            None => {
                uplink_masks.push(masks[j].clone());
                // The server-side guard applies to every arriving report,
                // so even un-injected non-finite updates are caught here.
                match detect_rejection(&ret, fc) {
                    Some(effect) => observations.push(FaultObserved {
                        round,
                        client,
                        effect,
                    }),
                    None => {
                        survivors.push(ret);
                        survivor_masks.push(masks[j].clone());
                    }
                }
            }
        }
    }
    drop(returns_iter);

    // This round's stale arrivals: bytes transfer now, and the staleness
    // policy decides whether (and at what weight) they aggregate.
    let mut stale: Vec<(ClientReturn, Vec<bool>, f64)> = Vec::new();
    let mut still_pending = Vec::new();
    for held in pending.drain(..) {
        if held.arrival != round {
            still_pending.push(held);
            continue;
        }
        let staleness = round - held.from_round;
        uplink_masks.push(held.mask.clone());
        if let Some(effect) = detect_rejection(&held.ret, fc) {
            observations.push(FaultObserved {
                round,
                client: held.client,
                effect,
            });
            continue;
        }
        match fc.staleness.weight(staleness) {
            Some(weight) => {
                observations.push(FaultObserved {
                    round,
                    client: held.client,
                    effect: FaultEffect::StaleApplied { staleness, weight },
                });
                stale.push((held.ret, held.mask, weight));
            }
            None => observations.push(FaultObserved {
                round,
                client: held.client,
                effect: FaultEffect::StaleDiscarded { staleness },
            }),
        }
    }
    *pending = still_pending;

    let contributions: Vec<WeightedReturn<'_>> = survivors
        .iter()
        .zip(&survivor_masks)
        .map(|(ret, mask)| WeightedReturn {
            ret,
            mask,
            scale: 1.0,
        })
        .chain(stale.iter().map(|(ret, mask, weight)| WeightedReturn {
            ret,
            mask,
            scale: *weight,
        }))
        .collect();
    system.aggregate_weighted(&contributions);
    let comm = system.round_comm_parts(active.len(), &uplink_masks);
    (survivors, comm, observations)
}

/// Mean fraction of requested units per mask; `0.0` for an empty mask set.
fn mean_mask_density(masks: &[Vec<bool>]) -> f64 {
    if masks.is_empty() {
        return 0.0;
    }
    masks
        .iter()
        .map(|m| {
            if m.is_empty() {
                0.0
            } else {
                m.iter().filter(|&&b| b).count() as f64 / m.len() as f64
            }
        })
        .sum::<f64>()
        / masks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MemorySink;
    use crate::system::tests::tiny_system;
    use crate::FedAvg;

    #[test]
    fn mask_density_handles_edge_cases() {
        assert_eq!(mean_mask_density(&[]), 0.0);
        assert_eq!(mean_mask_density(&[vec![]]), 0.0);
        assert_eq!(
            mean_mask_density(&[vec![true, false], vec![true, true]]),
            0.75
        );
    }

    #[test]
    fn driver_rejects_invalid_protocols_before_touching_the_system() {
        let mut sys = tiny_system(2, 40);
        let before = sys.global.flatten();
        let mut bad = FedAvg {
            client_fraction: 0.0,
            param_fraction: 1.0,
        };
        let err = RoundDriver::new().run(&mut bad, &mut sys).unwrap_err();
        assert!(err.contains("client_fraction"), "unexpected error: {err}");
        assert_eq!(sys.global.flatten(), before, "system must be untouched");
    }

    #[test]
    fn driver_emits_one_event_per_round() {
        let mut sys = tiny_system(3, 41);
        let mut sink = MemorySink::new();
        let result = RoundDriver::with_sink(&mut sink)
            .run(&mut FedAvg::vanilla(), &mut sys)
            .unwrap();
        let rounds = sys.config().rounds;
        assert_eq!(sink.runs, vec![("FedAvg".to_string(), rounds)]);
        assert_eq!(sink.events.len(), rounds);
        for (i, (event, rc)) in sink.events.iter().zip(result.comm.rounds()).enumerate() {
            assert_eq!(event.round, i);
            assert_eq!(event.active_clients, vec![0, 1, 2]);
            assert_eq!(event.mask_density, 1.0);
            assert_eq!(&event.comm, rc);
            assert!(event.eval.is_some(), "eval_every=1 evaluates every round");
            assert!(event.wall_ms >= 0.0);
        }
    }
}
