//! The shared round loop every protocol runs on — a synchronous facade
//! over the event-driven [`runtime`](crate::runtime).
//!
//! [`RoundDriver::run`] owns the canonical federated round — broadcast to
//! the selected clients, parallel local updates, masked aggregation
//! (Eq. 6), communication accounting, activation tracing, the evaluation
//! cadence (`FlConfig::eval_every`) and structured [`RoundEvent`] emission
//! — while the [`FlProtocol`] hooks decide selection, masks and activation
//! dynamics. FedAvg, both FedDA strategies and the `Global` baseline all
//! execute through this loop; their seeded behaviour is pinned bit-for-bit
//! by the `golden_curves` regression tests.
//!
//! Internally round `r` occupies virtual tick `r`: the scheduler pops
//! `Dispatch(r)` (selection, masks, local training, arrival scheduling),
//! then this round's arrivals — stale straggler reports scheduled in
//! earlier rounds first (they carry older sequence numbers), then the
//! fresh reports — and finally `Seal(r)` (guard checks, Eq. 6 aggregation
//! over the mailbox, accounting, eval). Because every hook fires in the
//! same order, with the same RNG draws and the same f64 accumulation
//! order as the pre-runtime lockstep loop, sync results are bit-identical
//! to it; [`AsyncDriver`](crate::AsyncDriver) reuses the same runtime with
//! multi-tick latencies instead.

use crate::compress::{decode_arrival, Compressor, Delta, InFlight, UplinkCharge};
use crate::events::{EventSink, RoundEvent};
use crate::faults::{
    corrupt_return, detect_rejection, FaultConfig, FaultEffect, FaultKind, FaultObserved, FaultPlan,
};
use crate::protocol::FlProtocol;
use crate::runtime::{Delivery, Mailbox, Scheduler, Tick};
use crate::system::{ActivationSnapshot, FlSystem, RoundEval, RunResult, WeightedReturn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Events of the synchronous simulation: each round dispatches, collects
/// arrivals, and seals, all at its own tick.
enum SimEvent {
    /// Start round `round`: selection, masks, local training, scheduling
    /// of report arrivals.
    Dispatch { round: usize },
    /// A client report reaches the server (fresh at its dispatch tick,
    /// stale at `dispatch + delay` for held stragglers).
    Arrival(Delivery),
    /// Close round `round`: drain the mailbox, aggregate, account, eval.
    Seal { round: usize },
}

/// Per-round state carried from `Dispatch` to `Seal`.
struct RoundState {
    round: usize,
    active: Vec<usize>,
    mask_density: f64,
    /// One observation slot per active position, so dispatch-time effects
    /// (dropout, straggler-held) and seal-time effects (guard rejections)
    /// interleave in client-position order — the stream order the chaos
    /// harness pins.
    slots: Vec<Option<FaultObserved>>,
    started: Instant,
}

/// Executes an [`FlProtocol`] over an [`FlSystem`], optionally streaming
/// per-round [`RoundEvent`]s to an [`EventSink`].
#[derive(Default)]
pub struct RoundDriver<'a> {
    sink: Option<&'a mut dyn EventSink>,
}

impl<'a> RoundDriver<'a> {
    /// Driver without an event sink.
    pub fn new() -> Self {
        Self { sink: None }
    }

    /// Driver that emits every round's [`RoundEvent`] to `sink`.
    pub fn with_sink(sink: &'a mut dyn EventSink) -> Self {
        Self { sink: Some(sink) }
    }

    /// Run `system.config().rounds` rounds of `protocol`.
    ///
    /// Calls `protocol.validate()` before round 0 and returns its error
    /// without touching the system if the configuration is invalid.
    pub fn run(
        &mut self,
        protocol: &mut dyn FlProtocol,
        system: &mut FlSystem,
    ) -> Result<RunResult, String> {
        protocol
            .validate()
            .map_err(|e| format!("invalid {} configuration: {e}", protocol.name()))?;
        let fault_cfg = system.config().faults.clone();
        if let Some(fc) = &fault_cfg {
            fc.validate()
                .map_err(|e| format!("invalid fault configuration: {e}"))?;
        }
        if let Some(c) = &system.config().compression {
            c.validate()
                .map_err(|e| format!("invalid compression configuration: {e}"))?;
        }
        let compressor = system.config().compression.map(|c| c.build());
        let rounds = system.config().rounds;
        let eval_every = system.config().eval_every.max(1);
        let mut rng = StdRng::seed_from_u64(system.config().seed ^ protocol.seed_tweak());
        // The fault schedule is pre-sampled from its own stream so turning
        // it on never perturbs the protocol/init/eval draws below.
        let plan = fault_cfg
            .as_ref()
            .map(|fc| FaultPlan::generate(fc, rounds, system.num_clients(), system.config().seed));
        protocol.begin(system, &mut rng);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.begin_run(&protocol.name(), rounds);
        }

        // Every Dispatch is scheduled up front, so at any tick it carries
        // the lowest sequence number and pops before that round's arrivals
        // and Seal.
        let mut sched: Scheduler<SimEvent> = Scheduler::new();
        for round in 0..rounds {
            sched.schedule_at(round as Tick, SimEvent::Dispatch { round });
        }
        // Every held straggler report can land in one round at worst, plus
        // a full fresh wave.
        let mut mailbox: Mailbox<Delivery> =
            Mailbox::new(system.num_clients() * rounds.max(1) + system.num_clients());
        let mut state: Option<RoundState> = None;

        let mut result = RunResult::default();
        while let Some((_tick, event)) = sched.pop() {
            match event {
                SimEvent::Dispatch { round } => {
                    let st = dispatch_round(
                        system,
                        protocol,
                        &mut rng,
                        &plan,
                        compressor.as_deref(),
                        round,
                        rounds,
                        &mut sched,
                    );
                    state = Some(st);
                }
                SimEvent::Arrival(mut delivery) => {
                    // Decompress server-side, at the arrival point, before
                    // any guard or aggregation sees the report.
                    decode_arrival(&mut delivery);
                    mailbox.push(delivery);
                }
                SimEvent::Seal { round } => {
                    let st = state
                        .take()
                        // fedda-lint: allow(panic-path, reason = "Dispatch(r) always precedes Seal(r) in the event order above; a missing state is driver-internal corruption")
                        .expect("Seal without a dispatched round");
                    debug_assert_eq!(st.round, round);
                    seal_round(
                        system,
                        protocol,
                        &mut rng,
                        &fault_cfg,
                        st,
                        &mut mailbox,
                        eval_every,
                        rounds,
                        &mut result,
                        self.sink.as_deref_mut(),
                    );
                }
            }
        }
        Ok(result)
    }
}

/// Open round `round`: select and mask clients, run their local updates on
/// the worker pool, apply dispatch-time fault effects, and schedule every
/// report that will ever arrive — fresh ones at this tick, held straggler
/// reports at their arrival tick (reports landing after the run ends are
/// dropped on the floor and never charged).
#[allow(clippy::too_many_arguments)]
fn dispatch_round(
    system: &mut FlSystem,
    protocol: &mut dyn FlProtocol,
    rng: &mut StdRng,
    plan: &Option<FaultPlan>,
    compressor: Option<&(dyn Compressor + Send + Sync)>,
    round: usize,
    rounds: usize,
    sched: &mut Scheduler<SimEvent>,
) -> RoundState {
    // fedda-lint: allow(wall-clock, reason = "round wall-time telemetry only; never feeds selection, masking, aggregation or any logged curve")
    let started = Instant::now();
    let active = protocol.select_clients(system, round, rng);
    let masks = protocol.build_masks(system, &active, round, rng);
    debug_assert_eq!(masks.len(), active.len(), "one mask per active client");
    let mask_density = mean_mask_density(&masks);

    // Dropped clients never report, so their local compute is skipped
    // outright; stragglers and corrupted clients still train.
    let reporting: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&c| plan.as_ref().and_then(|p| p.fault_at(round, c)) != Some(FaultKind::Dropout))
        .collect();
    // Materialised whenever corruption may need it or the compressor needs
    // a dispatch-time reference to encode (and later decode) against.
    let broadcast =
        (plan.is_some() || compressor.is_some()).then(|| Arc::new(system.global.clone()));
    let sizes = system.unit_sizes();
    let penalties: Vec<_> = reporting
        .iter()
        .map(|&c| protocol.local_regularizer(system, c, round))
        .collect();
    let mut returns = system
        .run_local_round_with(&reporting, round, &penalties)
        .into_iter();

    let mut slots: Vec<Option<FaultObserved>> = Vec::new();
    slots.resize_with(active.len(), || None);
    for (pos, &client) in active.iter().enumerate() {
        let fault = plan.as_ref().and_then(|p| p.fault_at(round, client));
        if fault == Some(FaultKind::Dropout) {
            slots[pos] = Some(FaultObserved {
                round,
                client,
                effect: FaultEffect::Dropout,
            });
            continue;
        }
        let mut ret = returns
            .next()
            // fedda-lint: allow(panic-path, reason = "run_local_round returns exactly one entry per non-dropout client; a shortfall is driver-internal corruption")
            .expect("one return per reporting client");
        debug_assert_eq!(ret.client, client);
        let arrival_tick = match fault {
            Some(FaultKind::Straggler { delay }) => {
                let arrives = round + delay;
                slots[pos] = Some(FaultObserved {
                    round,
                    client,
                    effect: FaultEffect::StragglerHeld {
                        arrival: (arrives < rounds).then_some(arrives),
                    },
                });
                // Reports that would land after the run ends are dropped on
                // the floor — their bytes never transfer.
                if arrives >= rounds {
                    continue;
                }
                arrives as Tick
            }
            Some(FaultKind::Corruption(kind)) => {
                if let Some(broadcast) = &broadcast {
                    corrupt_return(&mut ret, broadcast, kind);
                }
                round as Tick
            }
            Some(FaultKind::Dropout) => unreachable!("dropouts filtered above"),
            None => round as Tick,
        };
        // Mask-then-compress: the protocol's mask picked the units, the
        // codec now prices them. Corruption was injected above, so a
        // corrupted report flows *through* the codec and the server guard
        // judges the decompressed bytes.
        let mask = masks[pos].clone();
        let (charge, payload) = match (compressor, &broadcast) {
            (Some(comp), Some(reference)) => {
                let report = comp.compress(&Delta {
                    updated: &ret.params,
                    reference,
                    mask: &mask,
                });
                let charge = report.charge();
                (
                    charge,
                    Some(InFlight {
                        report,
                        reference: Arc::clone(reference),
                    }),
                )
            }
            _ => (UplinkCharge::from_mask(&mask, &sizes), None),
        };
        sched.schedule_at(
            arrival_tick,
            SimEvent::Arrival(Delivery {
                client,
                dispatch_pos: pos,
                dispatch_round: round,
                ret,
                mask,
                charge,
                payload,
            }),
        );
    }
    // The Seal outranks (in sequence number) every fresh arrival scheduled
    // above, so it pops last at this tick.
    sched.schedule_at(round as Tick, SimEvent::Seal { round });
    RoundState {
        round,
        active,
        mask_density,
        slots,
        started,
    }
}

/// Close a round: admit the mailbox's deliveries (server-side guard, then
/// the staleness policy for late reports), aggregate the admissible
/// contributions with renormalised weights (Eq. 6), account the bytes that
/// actually moved, run the protocol's fault/post-aggregate hooks and the
/// evaluation cadence, and emit the round's event.
#[allow(clippy::too_many_arguments)]
fn seal_round(
    system: &mut FlSystem,
    protocol: &mut dyn FlProtocol,
    rng: &mut StdRng,
    fault_cfg: &Option<FaultConfig>,
    st: RoundState,
    mailbox: &mut Mailbox<Delivery>,
    eval_every: usize,
    rounds: usize,
    result: &mut RunResult,
    sink: Option<&mut (dyn EventSink + '_)>,
) {
    let RoundState {
        round,
        active,
        mask_density,
        mut slots,
        started,
    } = st;
    // The queue delivers stale arrivals (older sequence numbers) before
    // this round's fresh ones; aggregation order is fresh-then-stale, so
    // split them back apart.
    let (stale_in, fresh): (Vec<Delivery>, Vec<Delivery>) = mailbox
        .drain()
        .into_iter()
        .partition(|d| d.dispatch_round < round);

    let mut observations: Vec<FaultObserved> = Vec::new();
    let mut survivors: Vec<Delivery> = Vec::new();
    let mut charges: Vec<UplinkCharge> = Vec::new();
    for d in fresh {
        charges.push(d.charge);
        // The server-side guard applies to every arriving report, so even
        // un-injected non-finite updates are caught here.
        let rejection = fault_cfg
            .as_ref()
            .and_then(|fc| detect_rejection(&d.ret, fc));
        match rejection {
            Some(effect) => {
                slots[d.dispatch_pos] = Some(FaultObserved {
                    round,
                    client: d.client,
                    effect,
                })
            }
            None => survivors.push(d),
        }
    }
    // This round's stale arrivals: bytes transfer now, and the staleness
    // policy decides whether (and at what weight) they aggregate.
    let mut stale: Vec<(Delivery, f64)> = Vec::new();
    for d in stale_in {
        let staleness = round - d.dispatch_round;
        charges.push(d.charge);
        if let Some(fc) = fault_cfg {
            if let Some(effect) = detect_rejection(&d.ret, fc) {
                observations.push(FaultObserved {
                    round,
                    client: d.client,
                    effect,
                });
                continue;
            }
            match fc.staleness.weight(staleness) {
                Some(weight) => {
                    observations.push(FaultObserved {
                        round,
                        client: d.client,
                        effect: FaultEffect::StaleApplied { staleness, weight },
                    });
                    stale.push((d, weight));
                }
                None => observations.push(FaultObserved {
                    round,
                    client: d.client,
                    effect: FaultEffect::StaleDiscarded { staleness },
                }),
            }
        }
    }
    // Fresh effects in client-position order, then stale arrivals in held
    // order — the pinned observation stream.
    let mut fault_obs: Vec<FaultObserved> = slots.into_iter().flatten().collect();
    fault_obs.append(&mut observations);

    // Fresh survivors first, stale after: the f64 accumulation order of
    // the pre-runtime loop, bit for bit.
    let contributions: Vec<WeightedReturn<'_>> = survivors
        .iter()
        .map(|d| WeightedReturn {
            ret: &d.ret,
            mask: &d.mask,
            scale: 1.0,
        })
        .chain(stale.iter().map(|(d, weight)| WeightedReturn {
            ret: &d.ret,
            mask: &d.mask,
            scale: *weight,
        }))
        .collect();
    system.aggregate_weighted(&contributions);
    let comm = system.round_comm_charges(active.len(), &charges);
    // Protocols that activate no one (the Global baseline) keep an empty
    // comm log — but a round whose only traffic is a stale straggler
    // arrival still moved bytes, so it stays on the ledger even when
    // nobody was selected. The test is on the *charged* (post-compression)
    // traffic: a stale report whose codec compressed it away entirely
    // (top-k with k = 0 everywhere) moved nothing, so it must not
    // resurrect the round — the pre-compression unit-count test would have
    // double-counted such rounds onto the ledger.
    if !active.is_empty() || comm.has_uplink() {
        result.comm.push(comm);
    }
    if !fault_obs.is_empty() {
        protocol.on_faults(system, &fault_obs, round);
    }
    let returns: Vec<crate::system::ClientReturn> = survivors.into_iter().map(|d| d.ret).collect();
    let outcome = protocol.post_aggregate(system, &active, &returns, round, rng);
    if protocol.traces_activation() {
        result.activation_trace.push(ActivationSnapshot {
            active_clients: active.clone(),
            mask_density,
            deactivated: outcome.deactivated.clone(),
            reactivated: outcome.reactivated.clone(),
            restarted: outcome.restarted,
        });
    }
    let eval = if (round + 1) % eval_every == 0 || round + 1 == rounds {
        let eval = system.evaluate_global(round);
        let point = RoundEval {
            round,
            roc_auc: eval.roc_auc,
            mrr: eval.mrr,
        };
        result.curve.push(point);
        result.final_eval = eval;
        Some(point)
    } else {
        None
    };
    if let Some(sink) = sink {
        sink.on_round(&RoundEvent {
            round,
            active_clients: active,
            mask_density,
            comm,
            deactivated: outcome.deactivated,
            reactivated: outcome.reactivated,
            restarted: outcome.restarted,
            faults: fault_obs.clone(),
            eval,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        });
    }
    result.faults.extend(fault_obs);
}

/// Mean fraction of requested units per mask; `0.0` for an empty mask set.
pub(crate) fn mean_mask_density(masks: &[Vec<bool>]) -> f64 {
    if masks.is_empty() {
        return 0.0;
    }
    masks
        .iter()
        .map(|m| {
            if m.is_empty() {
                0.0
            } else {
                m.iter().filter(|&&b| b).count() as f64 / m.len() as f64
            }
        })
        .sum::<f64>()
        / masks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MemorySink;
    use crate::system::tests::tiny_system;
    use crate::FedAvg;

    #[test]
    fn mask_density_handles_edge_cases() {
        assert_eq!(mean_mask_density(&[]), 0.0);
        assert_eq!(mean_mask_density(&[vec![]]), 0.0);
        assert_eq!(
            mean_mask_density(&[vec![true, false], vec![true, true]]),
            0.75
        );
    }

    #[test]
    fn driver_rejects_invalid_protocols_before_touching_the_system() {
        let mut sys = tiny_system(2, 40);
        let before = sys.global.flatten();
        let mut bad = FedAvg {
            client_fraction: 0.0,
            param_fraction: 1.0,
        };
        let err = RoundDriver::new().run(&mut bad, &mut sys).unwrap_err();
        assert!(err.contains("client_fraction"), "unexpected error: {err}");
        assert_eq!(sys.global.flatten(), before, "system must be untouched");
    }

    #[test]
    fn driver_emits_one_event_per_round() {
        let mut sys = tiny_system(3, 41);
        let mut sink = MemorySink::new();
        let result = RoundDriver::with_sink(&mut sink)
            .run(&mut FedAvg::vanilla(), &mut sys)
            .unwrap();
        let rounds = sys.config().rounds;
        assert_eq!(sink.runs, vec![("FedAvg".to_string(), rounds)]);
        assert_eq!(sink.events.len(), rounds);
        for (i, (event, rc)) in sink.events.iter().zip(result.comm.rounds()).enumerate() {
            assert_eq!(event.round, i);
            assert_eq!(event.active_clients, vec![0, 1, 2]);
            assert_eq!(event.mask_density, 1.0);
            assert_eq!(&event.comm, rc);
            assert!(event.eval.is_some(), "eval_every=1 evaluates every round");
            assert!(event.wall_ms >= 0.0);
        }
    }
}
