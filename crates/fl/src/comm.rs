//! Communication accounting.
//!
//! Table 3 of the paper reports the **total number of transmitted
//! parameters** (parameter *units*, i.e. named tensors — FedAvg with `M=4`
//! clients, 40 rounds and 65 units transmits `4 × 40 × 65 = 10,400`). We
//! track both unit counts (the paper's measure) and raw scalar counts, for
//! uplink (client → server gradients) and downlink (server → client model
//! broadcast) separately.
//!
//! Under fault injection (`FlConfig::faults`) the counters record bytes
//! that actually moved: downlink still covers every *selected* client (the
//! broadcast happens before the server can know who will fail), while
//! uplink covers only reports that arrived — fresh survivors, corrupted
//! reports (received, then rejected) and stale straggler arrivals, but not
//! dropouts or reports still held (or never delivered) by a straggler.

/// Communication counters of one round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundComm {
    /// Clients activated this round.
    pub active_clients: usize,
    /// Parameter units uploaded by clients (the paper's Table 3 measure).
    pub uplink_units: usize,
    /// Scalars uploaded by clients.
    pub uplink_scalars: usize,
    /// Uplink payload bytes on the wire — `4 × uplink_scalars` on the
    /// uncompressed path, the codec's wire size under
    /// [`Compression`](crate::Compression).
    pub uplink_bytes: usize,
    /// Parameter units broadcast to clients.
    pub downlink_units: usize,
    /// Scalars broadcast to clients.
    pub downlink_scalars: usize,
}

impl RoundComm {
    /// Whether any uplink traffic was charged this round (units, scalars
    /// or bytes — a fully-compressed-away report charges none of them).
    pub fn has_uplink(&self) -> bool {
        self.uplink_units > 0 || self.uplink_scalars > 0 || self.uplink_bytes > 0
    }
}

/// Cumulative communication log of one federated run.
#[derive(Clone, Debug, Default)]
pub struct CommLog {
    rounds: Vec<RoundComm>,
}

impl CommLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one round's counters.
    pub fn push(&mut self, round: RoundComm) {
        self.rounds.push(round);
    }

    /// Per-round records.
    pub fn rounds(&self) -> &[RoundComm] {
        &self.rounds
    }

    /// Total uplink units across all rounds — the paper's "total amount of
    /// transmitted gradients".
    pub fn total_uplink_units(&self) -> usize {
        self.rounds.iter().map(|r| r.uplink_units).sum()
    }

    /// Total uplink scalars.
    pub fn total_uplink_scalars(&self) -> usize {
        self.rounds.iter().map(|r| r.uplink_scalars).sum()
    }

    /// Total uplink payload bytes — the AUC-vs-bytes frontier's x axis.
    pub fn total_uplink_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.uplink_bytes).sum()
    }

    /// Total downlink units.
    pub fn total_downlink_units(&self) -> usize {
        self.rounds.iter().map(|r| r.downlink_units).sum()
    }

    /// Total client activations.
    pub fn total_activations(&self) -> usize {
        self.rounds.iter().map(|r| r.active_clients).sum()
    }

    /// Uplink units accumulated over the first `n` rounds (for
    /// rounds-budgeted comparisons, RQ3).
    pub fn uplink_units_through(&self, n: usize) -> usize {
        self.rounds.iter().take(n).map(|r| r.uplink_units).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut log = CommLog::new();
        log.push(RoundComm {
            active_clients: 4,
            uplink_units: 260,
            uplink_scalars: 1000,
            uplink_bytes: 4000,
            downlink_units: 260,
            downlink_scalars: 1000,
        });
        log.push(RoundComm {
            active_clients: 2,
            uplink_units: 100,
            uplink_scalars: 400,
            uplink_bytes: 1600,
            downlink_units: 130,
            downlink_scalars: 500,
        });
        assert_eq!(log.total_uplink_units(), 360);
        assert_eq!(log.total_uplink_scalars(), 1400);
        assert_eq!(log.total_uplink_bytes(), 5600);
        assert_eq!(log.total_downlink_units(), 390);
        assert_eq!(log.total_activations(), 6);
        assert_eq!(log.uplink_units_through(1), 260);
        assert_eq!(log.uplink_units_through(10), 360);
    }

    #[test]
    fn has_uplink_checks_every_counter() {
        assert!(!RoundComm::default().has_uplink());
        for (u, s, b) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
            let rc = RoundComm {
                uplink_units: u,
                uplink_scalars: s,
                uplink_bytes: b,
                ..Default::default()
            };
            assert!(rc.has_uplink(), "{rc:?}");
        }
    }

    #[test]
    fn fedavg_table3_arithmetic() {
        // FedAvg, M=4, T=40, N=65 units → 10,400 (paper's Table 3 cell).
        let mut log = CommLog::new();
        for _ in 0..40 {
            log.push(RoundComm {
                active_clients: 4,
                uplink_units: 4 * 65,
                ..Default::default()
            });
        }
        assert_eq!(log.total_uplink_units(), 10_400);
    }
}
