//! End-to-end determinism of the buffered-asynchronous runtime: a run must
//! be bit-identical across repeated executions, kernel-thread budgets, and
//! worker-pool sizes — the async mirror of `determinism_e2e.rs`.
//!
//! The virtual clock and the `(tick, seq)`-ordered event queue make arrival
//! order a pure function of the seed, never of host scheduling; the worker
//! pool returns results in submission order for any pool size. Varying
//! `FlConfig::workers` and the kernel-thread budget therefore must not move
//! a single bit of the curve, the comm ledger, the activation trace, or the
//! final parameters.

use fedda_data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda_fl::{
    AsyncConfig, AsyncDriver, Compression, Corruption, FaultConfig, FedAvg, FedDa, FlConfig,
    FlSystem, RunResult, StalenessPolicy,
};
use fedda_hetgraph::split::split_edges;
use fedda_hgn::{HgnConfig, TrainConfig};
use fedda_tensor::gemm::with_kernel_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 4;
const ROUNDS: usize = 3;
const SEED: u64 = 1234;

fn build_system(workers: Option<usize>, faults: Option<FaultConfig>) -> FlSystem {
    let g = dblp_like(&PresetOptions {
        scale: 0.0012,
        seed: SEED,
        ..Default::default()
    })
    .graph;
    let mut rng = StdRng::seed_from_u64(SEED);
    let split = split_edges(&g, 0.15, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(M, g.schema().num_edge_types(), SEED);
    let clients = partition_non_iid(&split.train, &pcfg);
    let cfg = FlConfig {
        rounds: ROUNDS,
        model: HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 2,
            edge_emb_dim: 4,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs: 1,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 3,
        seed: SEED,
        parallel: true,
        workers,
        faults,
        ..Default::default()
    };
    FlSystem::new(&split.train, &split.test, clients, cfg)
}

/// Stragglers at a rate that forces multi-tick arrivals and staleness
/// discounting through the async buffer.
fn straggly_faults() -> FaultConfig {
    FaultConfig {
        straggler: 0.3,
        max_staleness: 2,
        corruption: 0.1,
        corruption_kind: Corruption::NaN,
        staleness: StalenessPolicy::Discount { gamma: 0.5 },
        ..Default::default()
    }
}

/// Everything observable about a run, in bit-exact form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    curve: Vec<(usize, u64, u64)>,
    comm: Vec<fedda_fl::RoundComm>,
    activation: Vec<fedda_fl::ActivationSnapshot>,
    faults: Vec<fedda_fl::FaultObserved>,
    final_params: Vec<u32>,
}

fn fingerprint(result: &RunResult, system: &FlSystem) -> Fingerprint {
    Fingerprint {
        curve: result
            .curve
            .iter()
            .map(|e| (e.round, e.roc_auc.to_bits(), e.mrr.to_bits()))
            .collect(),
        comm: result.comm.rounds().to_vec(),
        activation: result.activation_trace.clone(),
        faults: result.faults.clone(),
        final_params: system
            .global
            .flatten()
            .iter()
            .map(|x| x.to_bits())
            .collect(),
    }
}

fn run_async(
    which: usize,
    acfg: AsyncConfig,
    faults: Option<FaultConfig>,
    workers: Option<usize>,
    kernel_threads: usize,
) -> Fingerprint {
    with_kernel_threads(kernel_threads, || {
        let mut sys = build_system(workers, faults);
        let result = match which {
            0 => AsyncDriver::new(acfg).run(&mut FedAvg::vanilla(), &mut sys),
            _ => AsyncDriver::new(acfg).run(&mut FedDa::explore().protocol(), &mut sys),
        }
        .expect("async determinism runs use valid configurations");
        fingerprint(&result, &sys)
    })
}

fn assert_invariant_under_execution_strategy(
    which: usize,
    faults: Option<FaultConfig>,
    name: &str,
) {
    let acfg = AsyncConfig { k: 2, gamma: 0.9 };
    let reference = run_async(which, acfg, faults.clone(), Some(1), 1);
    assert_eq!(
        reference.curve.len(),
        ROUNDS,
        "{name}: expected one eval per version"
    );
    for (workers, threads) in [(Some(4), 1), (Some(1), 4), (Some(4), 4), (None, 4)] {
        let other = run_async(which, acfg, faults.clone(), workers, threads);
        assert_eq!(
            reference, other,
            "{name}: run diverged under workers={workers:?}, kernel_threads={threads}"
        );
    }
}

#[test]
fn async_fedavg_is_bit_identical_across_threads_and_workers() {
    assert_invariant_under_execution_strategy(0, None, "async FedAvg");
}

#[test]
fn async_fedavg_with_stragglers_is_bit_identical_across_threads_and_workers() {
    assert_invariant_under_execution_strategy(
        0,
        Some(straggly_faults()),
        "async FedAvg + stragglers",
    );
}

#[test]
fn async_fedda_explore_is_bit_identical_across_threads_and_workers() {
    assert_invariant_under_execution_strategy(1, None, "async FedDA-Explore");
}

#[test]
fn async_runs_under_compression_are_bit_identical_across_threads_and_workers() {
    // Every codec is deterministic and RNG-free, so a compressed run must
    // be as execution-strategy-independent as an uncompressed one — the
    // lossy codecs included, whose quantization is pure per-scalar
    // arithmetic on values the worker pool returns in submission order.
    let acfg = AsyncConfig { k: 2, gamma: 0.9 };
    for compression in [
        Compression::Identity,
        Compression::QuantI8,
        Compression::TopK { frac: 0.25 },
    ] {
        let run = |workers: Option<usize>, threads: usize| {
            with_kernel_threads(threads, || {
                let mut sys = build_system(workers, Some(straggly_faults()));
                sys.set_compression(Some(compression));
                let result = AsyncDriver::new(acfg)
                    .run(&mut FedDa::explore().protocol(), &mut sys)
                    .expect("async compressed run");
                fingerprint(&result, &sys)
            })
        };
        let reference = run(Some(1), 1);
        for (workers, threads) in [(Some(4), 1), (Some(1), 4), (None, 4)] {
            let other = run(workers, threads);
            assert_eq!(
                reference, other,
                "codec {compression:?} diverged under workers={workers:?}, \
                 kernel_threads={threads}"
            );
        }
    }
}

#[test]
fn identity_compression_with_stragglers_matches_uncompressed_async() {
    // Stale arrivals carry their compressed payload across versions and
    // decode against the *dispatch-time* broadcast; under the lossless
    // codec that whole detour must reproduce the uncompressed trajectory
    // bit for bit, staleness discounting, rejections and all.
    let acfg = AsyncConfig { k: 2, gamma: 0.9 };
    let run = |compression: Option<Compression>| {
        with_kernel_threads(2, || {
            let mut sys = build_system(Some(2), Some(straggly_faults()));
            sys.set_compression(compression);
            let result = AsyncDriver::new(acfg)
                .run(&mut FedAvg::vanilla(), &mut sys)
                .expect("async run");
            fingerprint(&result, &sys)
        })
    };
    assert_eq!(run(None), run(Some(Compression::Identity)));
}

#[test]
fn sync_facade_is_bit_identical_across_worker_pool_sizes() {
    // The sync driver rides the same worker pool: pool size must not move
    // a bit there either (its cross-thread determinism is pinned by
    // `determinism_e2e.rs`; this adds the workers axis).
    let reference = with_kernel_threads(2, || {
        let mut sys = build_system(Some(1), None);
        let result = FedDa::restart().run(&mut sys);
        fingerprint(&result, &sys)
    });
    for workers in [Some(2), Some(4), None] {
        let other = with_kernel_threads(2, || {
            let mut sys = build_system(workers, None);
            let result = FedDa::restart().run(&mut sys);
            fingerprint(&result, &sys)
        });
        assert_eq!(
            reference, other,
            "sync run diverged under workers={workers:?}"
        );
    }
}
