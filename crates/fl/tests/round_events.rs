//! Integration coverage for the driver's structured round events and the
//! sparse evaluation cadence: the `RoundEvent` stream must agree with the
//! `CommLog` and the FedDA `ActivationSnapshot` trace (they are three views
//! of the same round), including on the empty-active-set safety net path,
//! and `eval_every > 1` must thin the curve without losing the final round.

use fedda_data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda_fl::{
    baselines, FaultConfig, FaultEffect, FedAvg, FedDa, FlConfig, FlSystem, MaskRule, MemorySink,
    Reactivation, RoundDriver,
};
use fedda_hetgraph::split::split_edges;
use fedda_hgn::{HgnConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_system(m: usize, seed: u64, rounds: usize, eval_every: usize) -> FlSystem {
    let g = dblp_like(&PresetOptions {
        scale: 0.0015,
        seed,
        ..Default::default()
    })
    .graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_edges(&g, 0.15, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(m, g.schema().num_edge_types(), seed);
    let clients = partition_non_iid(&split.train, &pcfg);
    let cfg = FlConfig {
        rounds,
        model: HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 2,
            edge_emb_dim: 4,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs: 1,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 3,
        eval_every,
        seed,
        parallel: true,
        ..Default::default()
    };
    FlSystem::new(&split.train, &split.test, clients, cfg)
}

/// Events, comm log and activation trace must describe the same rounds.
fn check_events_against_result(
    sink: &MemorySink,
    result: &fedda_fl::RunResult,
    rounds: usize,
    traced: bool,
) {
    assert_eq!(sink.events.len(), rounds, "one event per round");
    let mut comm_rounds = result.comm.rounds().iter();
    for (i, event) in sink.events.iter().enumerate() {
        assert_eq!(event.round, i);
        if event.active_clients.is_empty() && event.comm.uplink_units == 0 {
            // Protocols with no active clients keep an empty comm log —
            // unless a stale straggler report arrived (uplink > 0), which
            // stays on the ledger; their events still carry the (all-zero)
            // counters.
            assert_eq!(event.comm.uplink_units, 0);
            assert_eq!(event.comm.downlink_units, 0);
        } else {
            let rc = comm_rounds.next().expect("comm log entry for the round");
            assert_eq!(&event.comm, rc, "round {i}: event vs comm log");
            assert_eq!(event.active_clients.len(), rc.active_clients);
        }
        if traced {
            let snap = &result.activation_trace[i];
            assert_eq!(event.active_clients, snap.active_clients, "round {i}");
            assert_eq!(event.mask_density, snap.mask_density, "round {i}");
            assert_eq!(event.deactivated, snap.deactivated, "round {i}");
            assert_eq!(event.reactivated, snap.reactivated, "round {i}");
            assert_eq!(event.restarted, snap.restarted, "round {i}");
        } else {
            assert!(event.deactivated.is_empty());
            assert!(event.reactivated.is_empty());
            assert!(!event.restarted);
        }
    }
    assert!(comm_rounds.next().is_none(), "comm log has extra rounds");
    // Totals line up once the per-round entries do; check the sums anyway
    // as that is what dashboards will reconstruct from the stream.
    let up: usize = sink.events.iter().map(|e| e.comm.uplink_units).sum();
    assert_eq!(up, result.comm.total_uplink_units());
    let down: usize = sink.events.iter().map(|e| e.comm.downlink_units).sum();
    assert_eq!(down, result.comm.total_downlink_units());
    // The per-round fault records concatenate to the run's fault log.
    let streamed: Vec<_> = sink
        .events
        .iter()
        .flat_map(|e| e.faults.iter().copied())
        .collect();
    assert_eq!(streamed, result.faults, "event faults vs result faults");
}

#[test]
fn fedda_events_mirror_comm_log_and_activation_trace() {
    let rounds = 5;
    let mut sys = tiny_system(5, 42, rounds, 1);
    let mut sink = MemorySink::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut FedDa::explore().protocol(), &mut sys)
        .unwrap();
    assert_eq!(sink.runs, vec![("FedDA 2 (Explore)".to_string(), rounds)]);
    assert_eq!(result.activation_trace.len(), rounds);
    check_events_against_result(&sink, &result, rounds, true);
    // Something must actually have been masked/deactivated for this test
    // to exercise the interesting paths.
    assert!(
        sink.events
            .iter()
            .any(|e| !e.deactivated.is_empty() || e.mask_density < 1.0),
        "expected FedDA dynamics to show up in the event stream"
    );
}

#[test]
fn safety_net_restart_is_visible_in_the_event_stream() {
    // α = 1 plus the 0.9-quantile rule deactivates whole cohorts, and the
    // explore cool-down empties the reactivation pool, so the driver's
    // empty-active-set safety net must fire — and the emitted events must
    // report it exactly as the activation trace does.
    let aggressive = FedDa {
        strategy: Reactivation::Explore { beta_e: 0.2 },
        alpha: 1.0,
        mask_rule: MaskRule::GradientQuantile(0.9),
        explore_cooldown: true,
    };
    let m = 4;
    let rounds = 5;
    let mut sys = tiny_system(m, 31, rounds, 1);
    let mut sink = MemorySink::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut aggressive.protocol(), &mut sys)
        .unwrap();
    check_events_against_result(&sink, &result, rounds, true);
    let fired: Vec<_> = sink.events.iter().filter(|e| e.restarted).collect();
    assert!(!fired.is_empty(), "expected the safety net to fire");
    for event in fired {
        assert_eq!(
            event.reactivated.len(),
            m,
            "the safety-net restore brings everyone back"
        );
    }
}

#[test]
fn faults_emptying_the_round_trip_the_safety_net_every_round() {
    // Dropout rate 1.0: every selected client fails every round, so
    // `on_faults` deactivates the whole cohort and the empty-active-set
    // safety net must fire each round — and the FaultObserved stream, the
    // activation trace and the event stream must tell the same story.
    let m = 4;
    let rounds = 4;
    let mut sys = tiny_system(m, 47, rounds, 1);
    sys.set_faults(Some(FaultConfig::dropout_only(1.0)));
    let mut sink = MemorySink::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut FedDa::explore().protocol(), &mut sys)
        .unwrap();
    check_events_against_result(&sink, &result, rounds, true);
    let everyone: Vec<usize> = (0..m).collect();
    for (round, event) in sink.events.iter().enumerate() {
        // The previous round's safety net restored everyone…
        assert_eq!(event.active_clients, everyone, "round {round}");
        // …and they all dropped again: one Dropout record per client.
        let failed: Vec<usize> = event.faults.iter().map(|f| f.client).collect();
        assert_eq!(failed, everyone, "round {round}: fault records");
        for f in &event.faults {
            assert_eq!(f.round, round);
            assert_eq!(f.effect, FaultEffect::Dropout);
        }
        // The activation trace is the same collapse seen from the
        // protocol's side: everyone deactivated, the safety-net restart
        // bringing everyone back.
        let snap = &result.activation_trace[round];
        assert_eq!(snap.deactivated, failed, "round {round}: deactivations");
        assert!(snap.restarted, "round {round}: safety net must fire");
        assert_eq!(snap.reactivated.len(), m, "round {round}: full restore");
        // Nobody reported, so no uplink; the broadcast still happened.
        assert_eq!(event.comm.uplink_units, 0);
        assert!(event.comm.downlink_units > 0);
    }
    assert_eq!(result.faults.len(), m * rounds);
    assert!(sys.global.flatten().iter().all(|v| v.is_finite()));
}

#[test]
fn fedavg_events_have_no_activation_dynamics() {
    let rounds = 3;
    let mut sys = tiny_system(3, 7, rounds, 1);
    let mut sink = MemorySink::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut FedAvg::vanilla(), &mut sys)
        .unwrap();
    assert!(result.activation_trace.is_empty());
    check_events_against_result(&sink, &result, rounds, false);
}

#[test]
fn global_baseline_emits_events_with_empty_comm() {
    let rounds = 3;
    let mut sys = tiny_system(2, 8, rounds, 1);
    let mut sink = MemorySink::new();
    let mut protocol = fedda_fl::GlobalProtocol::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut protocol, &mut sys)
        .unwrap();
    assert_eq!(result.comm.rounds().len(), 0, "Global never communicates");
    check_events_against_result(&sink, &result, rounds, false);
    for event in &sink.events {
        assert!(event.active_clients.is_empty());
        assert_eq!(event.mask_density, 0.0);
    }
}

#[test]
fn sparse_eval_cadence_thins_the_curve_but_keeps_the_final_round() {
    let rounds = 5;
    let mut sys = tiny_system(3, 13, rounds, 2);
    let mut sink = MemorySink::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut FedAvg::vanilla(), &mut sys)
        .unwrap();
    // eval_every = 2 over 5 rounds evaluates after rounds 1, 3 and (always)
    // the final round 4.
    let evaluated: Vec<usize> = result.curve.iter().map(|e| e.round).collect();
    assert_eq!(evaluated, vec![1, 3, 4]);
    for (i, event) in sink.events.iter().enumerate() {
        assert_eq!(
            event.eval.is_some(),
            evaluated.contains(&i),
            "round {i}: eval presence"
        );
    }
    assert_eq!(
        result.final_eval.roc_auc,
        result.curve.last().unwrap().roc_auc,
        "final_eval is the last evaluated round"
    );
    // The comm log still covers every round.
    assert_eq!(result.comm.rounds().len(), rounds);
}

#[test]
fn sparse_curves_keep_round_indices_in_rounds_to_auc() {
    let rounds = 6;
    let mut dense_sys = tiny_system(3, 17, rounds, 1);
    let dense = FedAvg::vanilla().run(&mut dense_sys);
    let mut sparse_sys = tiny_system(3, 17, rounds, 3);
    let sparse = FedAvg::vanilla().run(&mut sparse_sys);
    // Evaluation is cadence-independent (same model state, same eval RNG
    // per round), so the sparse curve is a subsequence of the dense one.
    assert_eq!(
        sparse.curve.iter().map(|e| e.round).collect::<Vec<_>>(),
        vec![2, 5]
    );
    for eval in &sparse.curve {
        let dense_eval = dense.curve.iter().find(|e| e.round == eval.round).unwrap();
        assert_eq!(eval.roc_auc.to_bits(), dense_eval.roc_auc.to_bits());
    }
    assert_eq!(sparse.best_auc(), {
        let mut best = f64::NEG_INFINITY;
        for e in &sparse.curve {
            best = best.max(e.roc_auc);
        }
        best
    });
    // rounds_to_auc must return the *round index*, not the curve position:
    // any threshold met by the first sparse point reports round 2, not 0.
    let first = sparse.curve[0].roc_auc;
    assert_eq!(sparse.rounds_to_auc(first), Some(2));
    assert_eq!(sparse.rounds_to_auc(f64::INFINITY), None);
}

#[test]
fn eval_every_zero_is_clamped_to_dense() {
    let rounds = 2;
    let mut sys = tiny_system(2, 19, rounds, 0);
    let result = FedAvg::vanilla().run(&mut sys);
    assert_eq!(result.curve.len(), rounds, "0 behaves like 1 (dense)");
}

#[test]
fn run_global_keeps_its_public_entry_point() {
    // The wrapper and the explicit protocol must be the same computation.
    let rounds = 2;
    let mut a = tiny_system(2, 23, rounds, 1);
    let ra = baselines::run_global(&mut a);
    let mut b = tiny_system(2, 23, rounds, 1);
    let rb = RoundDriver::new()
        .run(&mut fedda_fl::GlobalProtocol::new(), &mut b)
        .unwrap();
    for (x, y) in ra.curve.iter().zip(&rb.curve) {
        assert_eq!(x.roc_auc.to_bits(), y.roc_auc.to_bits());
    }
    assert_eq!(a.global.flatten(), b.global.flatten());
}
