//! Cross-check of the analytic per-codec byte model (ROADMAP item 4(b),
//! `analysis::report_bytes`) against the communication ledger: on a FedAvg
//! run with full participation and full masks, every selected client
//! uploads every unit each round, so the ledgered uplink bytes must equal
//! `rounds × M × report_bytes(unit_lens, codec)` exactly — no tolerance,
//! the closed form mirrors `Payload::wire_bytes` byte for byte.

use fedda_data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda_fl::analysis::{codec_byte_factor, report_bytes};
use fedda_fl::{Compression, FedAvg, FlConfig, FlSystem};
use fedda_hetgraph::split::split_edges;
use fedda_hgn::{HgnConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 4;
const ROUNDS: usize = 3;
const SEED: u64 = 7;

fn small_system() -> FlSystem {
    let g = dblp_like(&PresetOptions {
        scale: 0.0015,
        seed: SEED,
        ..Default::default()
    })
    .graph;
    let mut rng = StdRng::seed_from_u64(SEED);
    let split = split_edges(&g, 0.15, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(M, g.schema().num_edge_types(), SEED);
    let clients = partition_non_iid(&split.train, &pcfg);
    let cfg = FlConfig {
        rounds: ROUNDS,
        model: HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 2,
            edge_emb_dim: 4,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs: 1,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 2,
        seed: SEED,
        ..Default::default()
    };
    FlSystem::new(&split.train, &split.test, clients, cfg)
}

fn unit_lens(system: &FlSystem) -> Vec<usize> {
    system.global.iter().map(|(_, p)| p.len()).collect()
}

fn ledgered_bytes(codec: Option<Compression>) -> (usize, Vec<usize>) {
    let mut sys = small_system();
    sys.set_compression(codec);
    let lens = unit_lens(&sys);
    let result = FedAvg::vanilla().run(&mut sys);
    (result.comm.total_uplink_bytes(), lens)
}

#[test]
fn uncompressed_ledger_matches_closed_form() {
    let (bytes, lens) = ledgered_bytes(None);
    assert_eq!(bytes, ROUNDS * M * report_bytes(&lens, None));
}

#[test]
fn identity_ledger_matches_closed_form() {
    let (bytes, lens) = ledgered_bytes(Some(Compression::Identity));
    assert_eq!(
        bytes,
        ROUNDS * M * report_bytes(&lens, Some(&Compression::Identity))
    );
    // Identity frames the same bytes as the uncompressed path.
    assert_eq!(
        report_bytes(&lens, Some(&Compression::Identity)),
        report_bytes(&lens, None)
    );
}

#[test]
fn f16_ledger_matches_closed_form() {
    let (bytes, lens) = ledgered_bytes(Some(Compression::QuantF16));
    assert_eq!(
        bytes,
        ROUNDS * M * report_bytes(&lens, Some(&Compression::QuantF16))
    );
}

#[test]
fn i8_ledger_matches_closed_form() {
    let (bytes, lens) = ledgered_bytes(Some(Compression::QuantI8));
    assert_eq!(
        bytes,
        ROUNDS * M * report_bytes(&lens, Some(&Compression::QuantI8))
    );
}

#[test]
fn topk_ledger_matches_closed_form() {
    let codec = Compression::TopK { frac: 0.25 };
    let (bytes, lens) = ledgered_bytes(Some(codec));
    assert_eq!(bytes, ROUNDS * M * report_bytes(&lens, Some(&codec)));
    // The per-unit floor makes TopK strictly cheaper than 2·frac·raw.
    let factor = codec_byte_factor(&lens, Some(&codec));
    assert!(factor <= 0.5 + 1e-12, "topk factor {factor}");
}
