//! Property-based tests of the FL layer's pure logic: the analytic
//! communication model, the comm accounting, the fault-injection
//! configuration/renormalisation rules, the protocol-zoo math helpers
//! (FedProx proximal term, FedDyn h update, FedAdam moment update), and
//! the uplink compression codecs' error bounds and byte accounting.

use fedda_fl::analysis::{
    explore_expected_units, explore_ratio_bound, restart_expected_units, restart_period,
    restart_ratio, EfficiencyInputs,
};
use fedda_fl::compress::{k_of, top_k_positions, Identity, Payload, QuantF16, QuantI8, TopK};
use fedda_fl::{
    feddyn::update_h, fedopt::adam_update, fedprox::proximal_term, renormalize, CommLog,
    Compressor, Corruption, FaultConfig, FaultPlan, RoundComm, StalenessPolicy,
};
use proptest::prelude::*;

/// Matched `(updated, reference)` slices of the same length — one unit's
/// worth of parameters as the codecs see them.
fn unit_strategy() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..64)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

fn inputs_strategy() -> impl Strategy<Value = EfficiencyInputs> {
    (2usize..64, 10usize..200, 0.05f64..0.99, 0.0f64..0.99).prop_flat_map(|(m, n, r_c, r_p)| {
        (1usize..=n / 2).prop_map(move |n_d| EfficiencyInputs {
            m,
            n,
            n_d,
            r_c,
            r_p,
        })
    })
}

/// Corruption kinds with valid parameters.
fn corruption_strategy() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        Just(Corruption::NaN),
        Just(Corruption::Inf),
        (0.5f32..1e6).prop_map(|scale| Corruption::Garbage { scale }),
    ]
}

/// Staleness policies with valid parameters.
fn staleness_strategy() -> impl Strategy<Value = StalenessPolicy> {
    prop_oneof![
        Just(StalenessPolicy::Discard),
        (0.01f64..=1.0).prop_map(|gamma| StalenessPolicy::Discount { gamma }),
    ]
}

/// Valid fault configurations: three rates scaled so their sum stays in
/// `[0, 1]`, a positive staleness bound, valid kind/policy parameters.
fn fault_config_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
        1usize..6,
        corruption_strategy(),
        staleness_strategy(),
        prop::option::of(0.1f32..1e6),
    )
        .prop_map(|((a, b, c), max_staleness, kind, policy, maxnorm)| {
            // The 0.999 headroom keeps the rescaled rates' sum strictly
            // under 1 despite rounding in the three divisions.
            let total = (a + b + c).max(1.0) / 0.999;
            FaultConfig {
                dropout: a / total,
                straggler: b / total,
                max_staleness,
                corruption: c / total,
                corruption_kind: kind,
                staleness: policy,
                max_update_norm: maxnorm,
                ..Default::default()
            }
        })
}

proptest! {
    #[test]
    fn generated_fault_configs_validate(cfg in fault_config_strategy()) {
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
    }

    #[test]
    fn rates_outside_unit_interval_are_rejected(
        cfg in fault_config_strategy(),
        rate in prop_oneof![-10.0f64..-1e-9, 1.0f64 + 1e-9..10.0],
        which in 0usize..3,
    ) {
        let mut bad = cfg;
        match which {
            0 => bad.dropout = rate,
            1 => bad.straggler = rate,
            _ => bad.corruption = rate,
        }
        prop_assert!(bad.validate().is_err(), "accepted rate {rate}");
    }

    #[test]
    fn zero_staleness_bound_is_rejected(cfg in fault_config_strategy()) {
        let mut bad = cfg;
        bad.max_staleness = 0;
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn plans_are_deterministic_and_in_bounds(
        cfg in fault_config_strategy(),
        rounds in 1usize..12,
        clients in 1usize..10,
        seed in any::<u64>(),
    ) {
        let a = FaultPlan::generate(&cfg, rounds, clients, seed);
        let b = FaultPlan::generate(&cfg, rounds, clients, seed);
        for r in 0..rounds {
            for c in 0..clients {
                prop_assert_eq!(a.fault_at(r, c), b.fault_at(r, c));
                if let Some(fedda_fl::FaultKind::Straggler { delay }) = a.fault_at(r, c) {
                    prop_assert!((1..=cfg.max_staleness).contains(&delay));
                }
            }
        }
        prop_assert!(a.num_scheduled() <= rounds * clients);
        prop_assert_eq!(a.fault_at(rounds, 0), None);
        prop_assert_eq!(a.fault_at(0, clients), None);
    }

    #[test]
    fn renormalized_weights_sum_to_one(
        weights in prop::collection::vec(1e-6f64..1e6, 1..40),
    ) {
        // However many clients a round loses, the survivors' renormalised
        // Eq. 6 weights always sum to 1.
        let w = renormalize(&weights);
        let total: f64 = w.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12, "sum {total}");
        for (out, orig) in w.iter().zip(&weights) {
            prop_assert!(*out > 0.0 && *out <= 1.0, "weight {out} from {orig}");
        }
    }

    #[test]
    fn staleness_discount_weights_are_monotone_in_staleness(
        gamma in 0.01f64..=1.0, staleness in 1usize..20,
    ) {
        let p = StalenessPolicy::Discount { gamma };
        let w = p.weight(staleness).unwrap();
        let w_next = p.weight(staleness + 1).unwrap();
        prop_assert!(w > 0.0 && w <= 1.0);
        prop_assert!(w_next <= w + 1e-15, "older reports must not gain weight");
        prop_assert_eq!(StalenessPolicy::Discard.weight(staleness), None);
    }

    #[test]
    fn restart_expectation_never_exceeds_fedavg(
        inp in inputs_strategy(), beta_r in 0.05f64..0.95,
    ) {
        let t0 = restart_period(inp.r_c, beta_r).min(1000);
        let expected = restart_expected_units(&inp, t0);
        // FedAvg over the same cycle (the formula counts t0+1 rounds of
        // participation including the restart round).
        let fedavg = (t0 as f64 + 1.0) * inp.m as f64 * inp.n as f64;
        prop_assert!(expected <= fedavg + 1e-6, "{expected} > {fedavg}");
        prop_assert!(expected >= 0.0);
    }

    #[test]
    fn restart_ratio_monotone_in_rp(inp in inputs_strategy(), beta_r in 0.05f64..0.95) {
        // more parameter masking -> no more communication
        let lo = EfficiencyInputs { r_p: (inp.r_p * 0.5).min(1.0), ..inp };
        let ratio_full = restart_ratio(&inp, beta_r);
        let ratio_lo = restart_ratio(&lo, beta_r);
        prop_assert!(ratio_full <= ratio_lo + 1e-9,
            "masking more increased cost: {ratio_full} > {ratio_lo}");
    }

    #[test]
    fn explore_bound_is_in_unit_interval(
        inp in inputs_strategy(), beta_e in 0.05f64..0.95,
    ) {
        let bound = explore_ratio_bound(&inp, beta_e);
        prop_assert!(bound > 0.0);
        prop_assert!(bound <= beta_e + 1e-12, "bound {bound} exceeds beta_e {beta_e}");
    }

    #[test]
    fn explore_expectation_below_bound(
        inp in inputs_strategy(), beta_e in 0.05f64..0.95,
        gamma in 0.0f64..1.0, extra in 0.0f64..1.0,
    ) {
        let r_p_hat = inp.r_p + (1.0 - inp.r_p) * extra;
        let e = explore_expected_units(&inp, beta_e, gamma, r_p_hat);
        let bound = explore_ratio_bound(&inp, beta_e) * (inp.m * inp.n) as f64;
        prop_assert!(e <= bound + 1e-6, "{e} > {bound}");
        prop_assert!(e >= 0.0);
    }

    #[test]
    fn restart_period_is_consistent(r_c in 0.01f64..0.999, beta_r in 0.01f64..0.99) {
        let t0 = restart_period(r_c, beta_r);
        prop_assume!(t0 < 10_000);
        // After t0 rounds the retained fraction has dropped below beta_r…
        prop_assert!(r_c.powi(t0 as i32) < beta_r + 1e-9);
        // …and t0 is minimal.
        if t0 > 1 {
            prop_assert!(r_c.powi(t0 as i32 - 1) >= beta_r - 1e-9);
        }
    }

    #[test]
    fn comm_log_totals_match_manual_sums(
        rounds in prop::collection::vec(
            (1usize..20, 0usize..5000, 0usize..100_000), 0..30,
        ),
    ) {
        let mut log = CommLog::new();
        let mut units = 0usize;
        let mut scalars = 0usize;
        let mut activations = 0usize;
        let mut bytes = 0usize;
        for &(clients, u, s) in &rounds {
            log.push(RoundComm {
                active_clients: clients,
                uplink_units: u,
                uplink_scalars: s,
                uplink_bytes: s * 4,
                downlink_units: u * 2,
                downlink_scalars: s * 2,
            });
            units += u;
            scalars += s;
            bytes += s * 4;
            activations += clients;
        }
        prop_assert_eq!(log.total_uplink_units(), units);
        prop_assert_eq!(log.total_uplink_scalars(), scalars);
        prop_assert_eq!(log.total_uplink_bytes(), bytes);
        prop_assert_eq!(log.total_activations(), activations);
        prop_assert_eq!(log.total_downlink_units(), units * 2);
        prop_assert_eq!(log.uplink_units_through(rounds.len() + 5), units);
    }

    #[test]
    fn proximal_term_is_zero_at_the_global_point_and_linear_in_mu(
        theta in prop::collection::vec(-10.0f32..10.0, 1..64),
        mu in 0.0f64..100.0,
        scale in 1.5f64..10.0,
    ) {
        // μ/2·‖θ − θ_ref‖² vanishes exactly at θ_ref for every μ…
        prop_assert_eq!(proximal_term(&theta, &theta, mu), 0.0);
        // …is non-negative everywhere…
        let reference = vec![0.0f32; theta.len()];
        let base = proximal_term(&theta, &reference, mu);
        prop_assert!(base >= 0.0);
        // …and is exactly linear in μ (the f64 accumulation factors μ out).
        let scaled = proximal_term(&theta, &reference, mu * scale);
        prop_assert!((scaled - base * scale).abs() <= 1e-9 * scaled.abs().max(1.0),
            "proximal term not linear in mu: {scaled} vs {}", base * scale);
    }

    #[test]
    fn feddyn_h_updates_telescope(
        deltas in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 4), 1..20,
        ),
        alpha in 1e-3f64..10.0,
        clients in 1usize..16,
    ) {
        // Applying the per-round h update sequentially over T rounds must
        // telescope: h_T = −α/m · Σ_t Σ_k delta_t[k], per coordinate.
        let dim = deltas[0].len();
        let mut h = vec![0.0f64; dim];
        for delta_sum in &deltas {
            update_h(&mut h, delta_sum, alpha, clients);
        }
        for k in 0..dim {
            let total: f64 = deltas.iter().map(|d| d[k]).sum();
            let expected = -alpha / (clients as f64) * total;
            prop_assert!((h[k] - expected).abs() <= 1e-9 * expected.abs().max(1.0),
                "h[{k}] = {} does not telescope to {expected}", h[k]);
            prop_assert!(h[k].is_finite());
        }
    }

    #[test]
    fn adam_moments_stay_finite_and_match_the_scalar_reference(
        deltas in prop::collection::vec(-1e3f64..1e3, 1..50),
        lr in 1e-4f64..1.0,
        beta1 in 0.0f64..0.999,
        beta2 in 0.0f64..0.999,
        epsilon in 1e-8f64..1e-2,
    ) {
        // Drive one scalar coordinate through T rounds of adam_update and
        // check the moments against the closed-form EMA (powi-based bias
        // correction), staying finite throughout.
        let mut m = 0.0f64;
        let mut v = 0.0f64;
        for (t, &delta) in deltas.iter().enumerate() {
            let steps = (t + 1) as i32;
            let bias1 = 1.0 - beta1.powi(steps);
            let bias2 = 1.0 - beta2.powi(steps);
            let (m_next, v_next, step) =
                adam_update(m, v, delta, lr, beta1, beta2, epsilon, bias1, bias2);
            // Reference EMA recursion, computed independently.
            let m_ref = beta1 * m + (1.0 - beta1) * delta;
            let v_ref = beta2 * v + (1.0 - beta2) * delta * delta;
            prop_assert_eq!(m_next.to_bits(), m_ref.to_bits());
            prop_assert_eq!(v_next.to_bits(), v_ref.to_bits());
            let step_ref = lr * (m_ref / bias1) / ((v_ref / bias2).sqrt() + epsilon);
            prop_assert_eq!(step.to_bits(), step_ref.to_bits());
            prop_assert!(m_next.is_finite() && v_next.is_finite() && step.is_finite());
            prop_assert!(v_next >= 0.0, "second moment went negative: {v_next}");
            // The bias-corrected step is bounded by lr·|m̂|/ε.
            prop_assert!(step.abs() <= lr * (m_ref / bias1).abs() / epsilon + 1e-12);
            m = m_next;
            v = v_next;
        }
    }

    #[test]
    fn identity_compress_decompress_is_bit_exact(unit in unit_strategy()) {
        let (updated, reference) = unit;
        // decompress ∘ compress = id, down to the bit pattern: Identity
        // transmits the raw f32 bits of every masked scalar.
        let p = Identity.encode_unit(&updated, &reference);
        let mut out = reference.clone();
        p.decode_into(&mut out);
        for (got, want) in out.iter().zip(&updated) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
        // And doing it twice changes nothing (idempotence on the decoded
        // values).
        let p2 = Identity.encode_unit(&out, &reference);
        prop_assert_eq!(&p2, &p);
    }

    #[test]
    fn i8_round_trip_error_is_within_half_a_quantization_step(
        unit in unit_strategy(),
    ) {
        let (updated, reference) = unit;
        // Rounding to the nearest of 255 codes puts every scalar within
        // scale/2 of its true delta (scale = max|delta|/127); the decoded
        // value then differs from the updated one by at most that plus
        // f32 arithmetic slack.
        let p = QuantI8.encode_unit(&updated, &reference);
        let scale = match &p {
            Payload::I8 { scale, .. } => *scale,
            other => return Err(TestCaseError::fail(format!("wrong payload {other:?}"))),
        };
        prop_assert!(scale.is_finite() && scale >= 0.0);
        let mut out = reference.clone();
        p.decode_into(&mut out);
        let bound = f64::from(scale) * 0.5 + 1e-4;
        for (i, (got, want)) in out.iter().zip(&updated).enumerate() {
            let err = (f64::from(*got) - f64::from(*want)).abs();
            prop_assert!(err <= bound, "scalar {i}: |{got} - {want}| = {err} > {bound}");
        }
    }

    #[test]
    fn f16_round_trip_error_is_within_half_an_ulp(
        unit in unit_strategy(),
    ) {
        let (updated, reference) = unit;
        // Round-to-nearest-even: the encoded delta is within half a
        // binary16 ULP of the true delta — relative 2^-11 for normals,
        // absolute 2^-25 in the subnormal range.
        let p = QuantF16.encode_unit(&updated, &reference);
        let mut out = reference.clone();
        p.decode_into(&mut out);
        for (i, ((&got, &up), &rf)) in out.iter().zip(&updated).zip(&reference).enumerate() {
            let delta = f64::from(up) - f64::from(rf);
            let bound = delta.abs() / 2048.0 + f64::from(f32::from_bits(0x3300_0000)) // 2^-25
                // decoding adds the reference back in f32, costing at most
                // half an ULP of the result's magnitude.
                + f64::from(got.abs().max(rf.abs())) * f64::from(f32::EPSILON);
            let err = (f64::from(got) - f64::from(up)).abs();
            prop_assert!(err <= bound, "scalar {i}: |{got} - {up}| = {err} > {bound}");
        }
    }

    #[test]
    fn topk_keeps_exactly_the_k_largest_magnitudes(
        unit in unit_strategy(),
        frac in 0.01f64..=0.5,
    ) {
        let (updated, reference) = unit;
        let deltas: Vec<f32> = updated
            .iter()
            .zip(&reference)
            .map(|(&u, &r)| u - r)
            .collect();
        let k = k_of(frac, deltas.len());
        let kept = top_k_positions(&deltas, k);
        prop_assert_eq!(kept.len(), k);
        // Deterministic: same input, same selection.
        prop_assert_eq!(&top_k_positions(&deltas, k), &kept);
        // Every kept magnitude dominates every dropped one; on an exact
        // tie the kept index is the smaller (the documented tie-break).
        let kept_set: Vec<bool> = {
            let mut s = vec![false; deltas.len()];
            for &i in &kept {
                s[i] = true;
            }
            s
        };
        for &i in &kept {
            for (j, &in_kept) in kept_set.iter().enumerate() {
                if !in_kept {
                    let ord = deltas[i].abs().total_cmp(&deltas[j].abs());
                    prop_assert!(
                        ord == std::cmp::Ordering::Greater
                            || (ord == std::cmp::Ordering::Equal && i < j),
                        "kept |{}|@{i} loses to dropped |{}|@{j}",
                        deltas[i], deltas[j]
                    );
                }
            }
        }
        // The encoded payload agrees with the selection and decodes the
        // kept coordinates exactly (raw f32 bits of the delta).
        let p = TopK { frac }.encode_unit(&updated, &reference);
        prop_assert_eq!(p.num_entries(), k);
        let mut out = reference.clone();
        p.decode_into(&mut out);
        for (i, &in_kept) in kept_set.iter().enumerate() {
            if in_kept {
                prop_assert_eq!(out[i].to_bits(), (reference[i] + deltas[i]).to_bits());
            } else {
                prop_assert_eq!(out[i].to_bits(), reference[i].to_bits());
            }
        }
    }

    #[test]
    fn compressed_bytes_are_exact_per_codec_and_never_exceed_raw(
        unit in unit_strategy(),
        frac in 0.01f64..=0.5,
    ) {
        let (updated, reference) = unit;
        let n = updated.len();
        let raw_bytes = 4 * n;
        for (name, p) in [
            ("ident", Identity.encode_unit(&updated, &reference)),
            ("q8", QuantI8.encode_unit(&updated, &reference)),
            ("f16", QuantF16.encode_unit(&updated, &reference)),
            ("topk", TopK { frac }.encode_unit(&updated, &reference)),
        ] {
            let expected = match &p {
                Payload::Raw(v) => 4 * v.len(),
                Payload::F16(v) => 2 * v.len(),
                Payload::I8 { codes, .. } => codes.len(),
                Payload::TopK(v) => 8 * v.len(),
            };
            prop_assert_eq!(p.wire_bytes(), expected, "{}", name);
            prop_assert!(
                p.wire_bytes() <= raw_bytes,
                "{name}: {} > raw {raw_bytes}", p.wire_bytes()
            );
        }
        // The exact ratios on dense codecs.
        prop_assert_eq!(Identity.encode_unit(&updated, &reference).wire_bytes(), raw_bytes);
        prop_assert_eq!(
            QuantF16.encode_unit(&updated, &reference).wire_bytes(),
            raw_bytes / 2
        );
        prop_assert_eq!(
            QuantI8.encode_unit(&updated, &reference).wire_bytes(),
            raw_bytes / 4
        );
        prop_assert_eq!(
            TopK { frac }.encode_unit(&updated, &reference).wire_bytes(),
            8 * k_of(frac, n)
        );
    }
}
