//! Property-based tests of the FL layer's pure logic: the analytic
//! communication model and the comm accounting.

use fedda_fl::analysis::{
    explore_expected_units, explore_ratio_bound, restart_expected_units, restart_period,
    restart_ratio, EfficiencyInputs,
};
use fedda_fl::{CommLog, RoundComm};
use proptest::prelude::*;

fn inputs_strategy() -> impl Strategy<Value = EfficiencyInputs> {
    (2usize..64, 10usize..200, 0.05f64..0.99, 0.0f64..0.99).prop_flat_map(|(m, n, r_c, r_p)| {
        (1usize..=n / 2).prop_map(move |n_d| EfficiencyInputs {
            m,
            n,
            n_d,
            r_c,
            r_p,
        })
    })
}

proptest! {
    #[test]
    fn restart_expectation_never_exceeds_fedavg(
        inp in inputs_strategy(), beta_r in 0.05f64..0.95,
    ) {
        let t0 = restart_period(inp.r_c, beta_r).min(1000);
        let expected = restart_expected_units(&inp, t0);
        // FedAvg over the same cycle (the formula counts t0+1 rounds of
        // participation including the restart round).
        let fedavg = (t0 as f64 + 1.0) * inp.m as f64 * inp.n as f64;
        prop_assert!(expected <= fedavg + 1e-6, "{expected} > {fedavg}");
        prop_assert!(expected >= 0.0);
    }

    #[test]
    fn restart_ratio_monotone_in_rp(inp in inputs_strategy(), beta_r in 0.05f64..0.95) {
        // more parameter masking -> no more communication
        let lo = EfficiencyInputs { r_p: (inp.r_p * 0.5).min(1.0), ..inp };
        let ratio_full = restart_ratio(&inp, beta_r);
        let ratio_lo = restart_ratio(&lo, beta_r);
        prop_assert!(ratio_full <= ratio_lo + 1e-9,
            "masking more increased cost: {ratio_full} > {ratio_lo}");
    }

    #[test]
    fn explore_bound_is_in_unit_interval(
        inp in inputs_strategy(), beta_e in 0.05f64..0.95,
    ) {
        let bound = explore_ratio_bound(&inp, beta_e);
        prop_assert!(bound > 0.0);
        prop_assert!(bound <= beta_e + 1e-12, "bound {bound} exceeds beta_e {beta_e}");
    }

    #[test]
    fn explore_expectation_below_bound(
        inp in inputs_strategy(), beta_e in 0.05f64..0.95,
        gamma in 0.0f64..1.0, extra in 0.0f64..1.0,
    ) {
        let r_p_hat = inp.r_p + (1.0 - inp.r_p) * extra;
        let e = explore_expected_units(&inp, beta_e, gamma, r_p_hat);
        let bound = explore_ratio_bound(&inp, beta_e) * (inp.m * inp.n) as f64;
        prop_assert!(e <= bound + 1e-6, "{e} > {bound}");
        prop_assert!(e >= 0.0);
    }

    #[test]
    fn restart_period_is_consistent(r_c in 0.01f64..0.999, beta_r in 0.01f64..0.99) {
        let t0 = restart_period(r_c, beta_r);
        prop_assume!(t0 < 10_000);
        // After t0 rounds the retained fraction has dropped below beta_r…
        prop_assert!(r_c.powi(t0 as i32) < beta_r + 1e-9);
        // …and t0 is minimal.
        if t0 > 1 {
            prop_assert!(r_c.powi(t0 as i32 - 1) >= beta_r - 1e-9);
        }
    }

    #[test]
    fn comm_log_totals_match_manual_sums(
        rounds in prop::collection::vec(
            (1usize..20, 0usize..5000, 0usize..100_000), 0..30,
        ),
    ) {
        let mut log = CommLog::new();
        let mut units = 0usize;
        let mut scalars = 0usize;
        let mut activations = 0usize;
        for &(clients, u, s) in &rounds {
            log.push(RoundComm {
                active_clients: clients,
                uplink_units: u,
                uplink_scalars: s,
                downlink_units: u * 2,
                downlink_scalars: s * 2,
            });
            units += u;
            scalars += s;
            activations += clients;
        }
        prop_assert_eq!(log.total_uplink_units(), units);
        prop_assert_eq!(log.total_uplink_scalars(), scalars);
        prop_assert_eq!(log.total_activations(), activations);
        prop_assert_eq!(log.total_downlink_units(), units * 2);
        prop_assert_eq!(log.uplink_units_through(rounds.len() + 5), units);
    }
}
