//! End-to-end determinism: a short FedDA run must be bit-identical across
//! repeated executions, across kernel-thread budgets, and across the
//! parallel/sequential client dispatch paths. This is the guarantee the
//! fedda-lint rules (no hash collections, no wall-clock in protocol code)
//! and the bit-identical GEMM kernels exist to protect.
//!
//! Thread budgets are varied in-process with `with_kernel_threads`, which
//! only tightens the configured `FEDDA_THREADS` cap — under a CI run pinned
//! to one thread both arms collapse to the same budget, which still
//! satisfies (trivially) the equality being asserted; the multi-thread CI
//! job exercises the real 4-vs-1 comparison.

use fedda_data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda_fl::{
    FedAdam, FedDa, FedDyn, FedProx, FlConfig, FlProtocol, FlSystem, RoundDriver, RunResult,
};
use fedda_hetgraph::split::split_edges;
use fedda_hgn::{HgnConfig, TrainConfig};
use fedda_tensor::gemm::with_kernel_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 4;
const ROUNDS: usize = 3;
const SEED: u64 = 1234;

fn build_system(parallel: bool) -> FlSystem {
    let g = dblp_like(&PresetOptions {
        scale: 0.0012,
        seed: SEED,
        ..Default::default()
    })
    .graph;
    let mut rng = StdRng::seed_from_u64(SEED);
    let split = split_edges(&g, 0.15, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(M, g.schema().num_edge_types(), SEED);
    let clients = partition_non_iid(&split.train, &pcfg);
    let cfg = FlConfig {
        rounds: ROUNDS,
        model: HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 2,
            edge_emb_dim: 4,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs: 1,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 3,
        seed: SEED,
        parallel,
        ..Default::default()
    };
    FlSystem::new(&split.train, &split.test, clients, cfg)
}

/// Everything observable about a run, in bit-exact form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    curve: Vec<(usize, u64, u64)>,
    comm: Vec<fedda_fl::RoundComm>,
    activation: Vec<fedda_fl::ActivationSnapshot>,
    final_params: Vec<u32>,
}

fn fingerprint(result: &RunResult, system: &FlSystem) -> Fingerprint {
    Fingerprint {
        curve: result
            .curve
            .iter()
            .map(|e| (e.round, e.roc_auc.to_bits(), e.mrr.to_bits()))
            .collect(),
        comm: result.comm.rounds().to_vec(),
        activation: result.activation_trace.clone(),
        final_params: system
            .global
            .flatten()
            .iter()
            .map(|x| x.to_bits())
            .collect(),
    }
}

fn run_protocol(
    make: &dyn Fn() -> Box<dyn FlProtocol>,
    parallel: bool,
    kernel_threads: usize,
) -> Fingerprint {
    with_kernel_threads(kernel_threads, || {
        let mut sys = build_system(parallel);
        // A fresh protocol instance per run: stateful protocols (FedDA's
        // bandit, FedDyn's h, FedAdam's moments) must not leak state
        // between the arms being compared.
        let mut protocol = make();
        let result = RoundDriver::new()
            .run(protocol.as_mut(), &mut sys)
            .expect("valid protocol configuration");
        fingerprint(&result, &sys)
    })
}

fn assert_invariant_under_execution_strategy(make: &dyn Fn() -> Box<dyn FlProtocol>, name: &str) {
    let reference = run_protocol(make, true, 1);
    assert_eq!(
        reference.curve.len(),
        ROUNDS,
        "{name}: expected one eval per round"
    );
    for (parallel, threads) in [(true, 4), (false, 1), (false, 4), (true, 1)] {
        let other = run_protocol(make, parallel, threads);
        assert_eq!(
            reference, other,
            "{name}: run diverged under parallel={parallel}, kernel_threads={threads}"
        );
    }
}

#[test]
fn fedda_restart_is_bit_identical_across_threads_and_dispatch() {
    assert_invariant_under_execution_strategy(
        &|| Box::new(FedDa::restart().protocol()),
        "FedDA-Restart",
    );
}

#[test]
fn fedda_explore_is_bit_identical_across_threads_and_dispatch() {
    assert_invariant_under_execution_strategy(
        &|| Box::new(FedDa::explore().protocol()),
        "FedDA-Explore",
    );
}

#[test]
fn fedprox_is_bit_identical_across_threads_and_dispatch() {
    assert_invariant_under_execution_strategy(&|| Box::new(FedProx::new(0.1)), "FedProx");
}

#[test]
fn feddyn_is_bit_identical_across_threads_and_dispatch() {
    assert_invariant_under_execution_strategy(&|| Box::new(FedDyn::new(0.01).protocol()), "FedDyn");
}

#[test]
fn fedadam_is_bit_identical_across_threads_and_dispatch() {
    assert_invariant_under_execution_strategy(
        &|| Box::new(FedAdam::new(0.01).protocol()),
        "FedAdam",
    );
}
