//! Chaos harness: the protocol engine under deterministic fault injection.
//!
//! Sweeps fault rate × protocol × seed and pins the failure-semantics
//! invariants the driver guarantees:
//!
//! * every run completes all rounds with a finite global model and finite
//!   evaluation scores, however many clients a round loses;
//! * the structured [`FaultObserved`] stream matches the injected
//!   [`FaultPlan`] *exactly* (same cells, same effects, same order) —
//!   reconstructed here independently from the schedule and the per-round
//!   active sets;
//! * the comm log counts only bytes that actually moved: dropouts and
//!   held stragglers transfer nothing, stale arrivals and rejected
//!   corruptions do;
//! * staleness discounting applies exactly `gamma^staleness`;
//! * accuracy degrades gracefully with the fault rate rather than
//!   collapsing;
//! * `faults: None` and an all-zero `FaultConfig` are bit-identical to the
//!   pre-fault engine (the `golden_curves` pins), because the fault stream
//!   is orthogonal to every other RNG stream.

use fedda_data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda_fl::{
    AsyncConfig, AsyncDriver, Compression, Corruption, FaultConfig, FaultEffect, FaultKind,
    FaultObserved, FaultPlan, FedAdam, FedAvg, FedDa, FedDyn, FedProx, FlConfig, FlProtocol,
    FlSystem, MemorySink, RoundDriver, RunResult, ScriptedFault, StalenessPolicy,
};
use fedda_hetgraph::split::split_edges;
use fedda_hgn::{HgnConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 5;
const ROUNDS: usize = 5;
const GOLDEN_SEED: u64 = 42;

/// Same construction as `golden_curves::golden_system` (so the zero-fault
/// pins below are comparable bit-for-bit), parameterised by seed and fault
/// configuration.
fn chaos_system(seed: u64, faults: Option<FaultConfig>) -> FlSystem {
    let g = dblp_like(&PresetOptions {
        scale: 0.0015,
        seed,
        ..Default::default()
    })
    .graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_edges(&g, 0.15, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(M, g.schema().num_edge_types(), seed);
    let clients = partition_non_iid(&split.train, &pcfg);
    let cfg = FlConfig {
        rounds: ROUNDS,
        model: HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 2,
            edge_emb_dim: 4,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs: 1,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 3,
        seed,
        parallel: true,
        faults,
        ..Default::default()
    };
    FlSystem::new(&split.train, &split.test, clients, cfg)
}

/// The mixed fault schedule the sweep injects at headline rate `r`:
/// dropouts at `r`, stragglers and NaN corruption at `r/2` each, stale
/// reports discounted by `0.5^staleness`.
fn mixed_faults(rate: f64) -> FaultConfig {
    FaultConfig {
        dropout: rate,
        straggler: rate / 2.0,
        max_staleness: 2,
        corruption: rate / 2.0,
        corruption_kind: Corruption::NaN,
        staleness: StalenessPolicy::Discount { gamma: 0.5 },
        ..Default::default()
    }
}

/// Number of protocols in the sweep (see [`run_protocol`]).
const PROTOCOLS: usize = 6;

/// Run protocol `which` (0 = FedAvg, 1 = FedDA-Restart, 2 = FedDA-Explore,
/// 3 = FedProx, 4 = FedDyn, 5 = FedAdam) through the shared driver with an
/// event sink attached.
fn run_protocol(which: usize, sys: &mut FlSystem, sink: &mut MemorySink) -> RunResult {
    let mut driver = RoundDriver::with_sink(sink);
    match which {
        0 => driver.run(&mut FedAvg::vanilla(), sys),
        1 => driver.run(&mut FedDa::restart().protocol(), sys),
        2 => driver.run(&mut FedDa::explore().protocol(), sys),
        3 => driver.run(&mut FedProx::new(0.01), sys),
        4 => driver.run(&mut FedDyn::new(0.01).protocol(), sys),
        _ => driver.run(&mut FedAdam::new(0.01).protocol(), sys),
    }
    .expect("chaos runs use valid configurations")
}

/// Reconstruct, independently of the driver, the exact `FaultObserved`
/// stream the run must have produced: walk the regenerated schedule over
/// the per-round active sets, holding stragglers until their arrival
/// round, mirroring the driver's documented ordering contract (fresh
/// effects in active order, then stale arrivals in held order).
fn expected_observations(
    plan: &FaultPlan,
    fc: &FaultConfig,
    active_per_round: &[Vec<usize>],
) -> Vec<FaultObserved> {
    let rounds = active_per_round.len();
    let mut expected = Vec::new();
    let mut pending: Vec<(usize, usize, usize)> = Vec::new(); // (client, from, arrival)
    for (round, active) in active_per_round.iter().enumerate() {
        for &client in active {
            match plan.fault_at(round, client) {
                Some(FaultKind::Dropout) => expected.push(FaultObserved {
                    round,
                    client,
                    effect: FaultEffect::Dropout,
                }),
                Some(FaultKind::Straggler { delay }) => {
                    let arrives = round + delay;
                    let arrival = (arrives < rounds).then_some(arrives);
                    expected.push(FaultObserved {
                        round,
                        client,
                        effect: FaultEffect::StragglerHeld { arrival },
                    });
                    if let Some(a) = arrival {
                        pending.push((client, round, a));
                    }
                }
                Some(FaultKind::Corruption(Corruption::NaN | Corruption::Inf)) => {
                    expected.push(FaultObserved {
                        round,
                        client,
                        effect: FaultEffect::CorruptionRejected { non_finite: true },
                    })
                }
                // Finite garbage is only caught when a norm bound is set;
                // the sweep injects NaN so this arm stays unvisited there.
                Some(FaultKind::Corruption(Corruption::Garbage { .. })) | None => {}
            }
        }
        let mut still = Vec::new();
        for (client, from, arrival) in pending.drain(..) {
            if arrival != round {
                still.push((client, from, arrival));
                continue;
            }
            let staleness = round - from;
            let effect = match fc.staleness.weight(staleness) {
                Some(weight) => FaultEffect::StaleApplied { staleness, weight },
                None => FaultEffect::StaleDiscarded { staleness },
            };
            expected.push(FaultObserved {
                round,
                client,
                effect,
            });
        }
        pending = still;
    }
    expected
}

/// The invariants every chaos run must satisfy, fault-injected or not.
fn check_chaos_invariants(
    sys: &FlSystem,
    sink: &MemorySink,
    result: &RunResult,
    faults: Option<&FaultConfig>,
    seed: u64,
    label: &str,
) {
    // Completion: every round ran, evaluated (eval_every = 1) and emitted
    // exactly one event.
    assert_eq!(sink.events.len(), ROUNDS, "{label}: one event per round");
    assert_eq!(result.curve.len(), ROUNDS, "{label}: dense curve");
    for (i, event) in sink.events.iter().enumerate() {
        assert_eq!(event.round, i, "{label}: event round index");
    }

    // Finiteness: faults must never push non-finite values into the global
    // model or the evaluation scores.
    assert!(
        sys.global.flatten().iter().all(|v| v.is_finite()),
        "{label}: global model picked up non-finite parameters"
    );
    for eval in &result.curve {
        assert!(
            eval.roc_auc.is_finite() && (0.0..=1.0).contains(&eval.roc_auc),
            "{label}: AUC out of range at round {}: {}",
            eval.round,
            eval.roc_auc
        );
        assert!(
            eval.mrr.is_finite() && (0.0..=1.0).contains(&eval.mrr),
            "{label}: MRR out of range at round {}: {}",
            eval.round,
            eval.mrr
        );
    }

    // The event stream and the run result are two views of the same fault
    // records.
    let streamed: Vec<FaultObserved> = sink
        .events
        .iter()
        .flat_map(|e| e.faults.iter().copied())
        .collect();
    assert_eq!(streamed, result.faults, "{label}: events vs result faults");

    // Events mirror the comm log (rounds with no active clients keep the
    // comm log empty, as for the Global baseline — unless a stale straggler
    // arrival moved bytes, which stays on the ledger). The key is the
    // driver's own ledger condition: any uplink counter non-zero keeps the
    // round logged.
    let mut comm_rounds = result.comm.rounds().iter();
    for (i, event) in sink.events.iter().enumerate() {
        if event.active_clients.is_empty() && !event.comm.has_uplink() {
            assert_eq!(event.comm.uplink_bytes, 0, "{label}: round {i}");
        } else {
            let rc = comm_rounds.next().expect("comm log entry");
            assert_eq!(&event.comm, rc, "{label}: round {i}: event vs comm log");
        }
        // These sweeps run uncompressed: the byte ledger is exactly the
        // historical 4 bytes per masked f32 scalar.
        assert_eq!(
            event.comm.uplink_bytes,
            4 * event.comm.uplink_scalars,
            "{label}: round {i}: uncompressed byte accounting"
        );
    }
    assert!(comm_rounds.next().is_none(), "{label}: extra comm rounds");

    match faults {
        None => assert!(result.faults.is_empty(), "{label}: faultless run"),
        Some(fc) => {
            // The observed stream must match the injected schedule exactly,
            // reconstructed here from the plan and the active sets alone.
            let plan = FaultPlan::generate(fc, ROUNDS, M, seed);
            let active_per_round: Vec<Vec<usize>> = sink
                .events
                .iter()
                .map(|e| e.active_clients.clone())
                .collect();
            let expected = expected_observations(&plan, fc, &active_per_round);
            assert_eq!(
                result.faults, expected,
                "{label}: observed faults vs injected schedule"
            );

            // Staleness discounting is exactly gamma^staleness.
            if let StalenessPolicy::Discount { gamma } = fc.staleness {
                for f in &result.faults {
                    if let FaultEffect::StaleApplied { staleness, weight } = f.effect {
                        assert_eq!(
                            weight,
                            gamma.powi(staleness as i32),
                            "{label}: discount weight"
                        );
                    }
                }
            }

            // Comm counts only transferred bytes. Under full masks (all
            // three protocols here mask per FedDA dynamics or not at all,
            // but FedAvg is always full), uplink per event is bounded by
            // what could possibly arrive.
            let n = sys.num_units();
            for (event, active) in sink.events.iter().zip(&active_per_round) {
                assert!(
                    event.comm.uplink_units <= (active.len() + M) * n,
                    "{label}: uplink exceeds any possible arrival count"
                );
                assert_eq!(
                    event.comm.downlink_units,
                    active.len() * n,
                    "{label}: downlink is one full model per selected client"
                );
            }
        }
    }
}

#[test]
fn chaos_sweep_invariants_hold_across_rates_protocols_and_seeds() {
    let rates = [0.0, 0.3];
    let mut mean_final_auc = [0.0f64; 2];
    let mut saw_faults = false;
    let sweep_size = (PROTOCOLS * 3) as f64;
    for (ri, &rate) in rates.iter().enumerate() {
        for which in 0..PROTOCOLS {
            for seed in [GOLDEN_SEED, 43, 44] {
                let faults = (rate > 0.0).then(|| mixed_faults(rate));
                let mut sys = chaos_system(seed, faults.clone());
                let mut sink = MemorySink::new();
                let result = run_protocol(which, &mut sys, &mut sink);
                let label = format!("rate={rate} protocol={which} seed={seed}");
                check_chaos_invariants(&sys, &sink, &result, faults.as_ref(), seed, &label);
                saw_faults |= !result.faults.is_empty();
                mean_final_auc[ri] += result.final_eval.roc_auc / sweep_size;
            }
        }
    }
    assert!(saw_faults, "rate 0.3 must actually inject faults");
    // Graceful degradation: losing ~60% of reports (mixed faults at the
    // 0.3 headline rate) may cost accuracy but must not collapse it, and
    // must not somehow *help* beyond noise.
    assert!(
        mean_final_auc[1] <= mean_final_auc[0] + 0.02,
        "faults must not improve mean AUC: {} vs {}",
        mean_final_auc[1],
        mean_final_auc[0]
    );
    assert!(
        mean_final_auc[1] >= mean_final_auc[0] - 0.10,
        "AUC collapsed under faults: {} vs {}",
        mean_final_auc[1],
        mean_final_auc[0]
    );
}

#[test]
fn light_faults_keep_every_protocol_within_the_invariants() {
    // The 0.1-rate point of the sweep, split out so failures bisect.
    let faults = mixed_faults(0.1);
    for which in 0..PROTOCOLS {
        for seed in [GOLDEN_SEED, 43, 44] {
            let mut sys = chaos_system(seed, Some(faults.clone()));
            let mut sink = MemorySink::new();
            let result = run_protocol(which, &mut sys, &mut sink);
            let label = format!("rate=0.1 protocol={which} seed={seed}");
            check_chaos_invariants(&sys, &sink, &result, Some(&faults), seed, &label);
        }
    }
}

#[test]
fn dropout_point_three_fedavg_matches_injected_schedule_exactly() {
    // The acceptance pin: dropout 0.3 completes all rounds with finite
    // parameters, and the FaultObserved stream equals the schedule cell
    // for cell (FedAvg selects everyone, so every scheduled cell is hit).
    let fc = FaultConfig::dropout_only(0.3);
    let mut sys = chaos_system(GOLDEN_SEED, Some(fc.clone()));
    let result = FedAvg::vanilla().run(&mut sys);
    assert_eq!(result.curve.len(), ROUNDS);
    assert!(sys.global.flatten().iter().all(|v| v.is_finite()));

    let plan = FaultPlan::generate(&fc, ROUNDS, M, GOLDEN_SEED);
    let mut expected = Vec::new();
    for round in 0..ROUNDS {
        for client in 0..M {
            if plan.fault_at(round, client) == Some(FaultKind::Dropout) {
                expected.push(FaultObserved {
                    round,
                    client,
                    effect: FaultEffect::Dropout,
                });
            }
        }
    }
    assert!(
        !expected.is_empty(),
        "rate 0.3 over {} cells must schedule something",
        ROUNDS * M
    );
    assert_eq!(result.faults, expected);
    assert_eq!(plan.num_scheduled(), expected.len());

    // Only the reports that arrived count as uplink; every selected client
    // still cost a broadcast.
    let n = sys.num_units();
    assert_eq!(
        result.comm.total_uplink_units(),
        (ROUNDS * M - expected.len()) * n
    );
    assert_eq!(result.comm.total_downlink_units(), ROUNDS * M * n);
}

#[test]
fn fedavg_uplink_counts_only_arrived_bytes_under_mixed_faults() {
    // With FedAvg (everyone selected, full masks) the comm ledger is
    // exactly: arrivals = fresh survivors + rejected corruptions + stale
    // arrivals; dropouts and held stragglers transfer nothing.
    let fc = mixed_faults(0.3);
    let mut sys = chaos_system(43, Some(fc.clone()));
    let result = FedAvg::vanilla().run(&mut sys);

    let mut drops = 0usize;
    let mut held = 0usize;
    let mut stale = 0usize;
    for f in &result.faults {
        match f.effect {
            FaultEffect::Dropout => drops += 1,
            FaultEffect::StragglerHeld { .. } => held += 1,
            FaultEffect::StaleApplied { .. } | FaultEffect::StaleDiscarded { .. } => stale += 1,
            FaultEffect::CorruptionRejected { .. } => {}
        }
    }
    let n = sys.num_units();
    assert_eq!(
        result.comm.total_uplink_units(),
        (ROUNDS * M - drops - held + stale) * n,
        "uplink must equal arrived reports × model size"
    );
    assert_eq!(result.comm.total_downlink_units(), ROUNDS * M * n);
}

#[test]
fn new_protocol_uplink_counts_only_arrived_bytes_under_mixed_faults() {
    // Same ledger arithmetic as the FedAvg pin above, for the three ports:
    // FedProx/FedDyn/FedAdam all select everyone with full masks, so
    // arrivals = dispatched − dropouts − held stragglers + stale arrivals.
    for which in 3..PROTOCOLS {
        let fc = mixed_faults(0.3);
        let mut sys = chaos_system(43, Some(fc.clone()));
        let mut sink = MemorySink::new();
        let result = run_protocol(which, &mut sys, &mut sink);

        let mut drops = 0usize;
        let mut held = 0usize;
        let mut stale = 0usize;
        for f in &result.faults {
            match f.effect {
                FaultEffect::Dropout => drops += 1,
                FaultEffect::StragglerHeld { .. } => held += 1,
                FaultEffect::StaleApplied { .. } | FaultEffect::StaleDiscarded { .. } => stale += 1,
                FaultEffect::CorruptionRejected { .. } => {}
            }
        }
        let n = sys.num_units();
        assert_eq!(
            result.comm.total_uplink_units(),
            (ROUNDS * M - drops - held + stale) * n,
            "protocol={which}: uplink must equal arrived reports × model size"
        );
        assert_eq!(
            result.comm.total_downlink_units(),
            ROUNDS * M * n,
            "protocol={which}: downlink"
        );
    }
}

#[test]
fn feddyn_h_state_stays_finite_under_garbage_corruption() {
    // Finite garbage (scale 1e4 on the whole update) feeds FedDyn's
    // server-side correction state. Whether the server rejects it with a
    // norm bound or lets it through, `h` and `∇̂ᵢ` must stay finite — the
    // h update is a bounded linear map of the (finite) admitted deltas.
    for max_update_norm in [Some(10.0f32), None] {
        let fc = FaultConfig {
            corruption: 0.5,
            corruption_kind: Corruption::Garbage { scale: 1e4 },
            max_update_norm,
            ..Default::default()
        };
        let mut sys = chaos_system(GOLDEN_SEED, Some(fc));
        let mut protocol = FedDyn::new(0.01).protocol();
        let result = RoundDriver::new()
            .run(&mut protocol, &mut sys)
            .expect("valid FedDyn chaos configuration");
        let label = format!("max_update_norm={max_update_norm:?}");
        assert_eq!(result.curve.len(), ROUNDS, "{label}: all rounds ran");
        assert!(
            protocol.h_state().iter().all(|h| h.is_finite()),
            "{label}: FedDyn h-state picked up non-finite values"
        );
        assert!(
            sys.global.flatten().iter().all(|v| v.is_finite()),
            "{label}: global model picked up non-finite parameters"
        );
        if max_update_norm.is_some() {
            // With the norm bound the garbage is caught and logged.
            assert!(
                result.faults.iter().any(|f| matches!(
                    f.effect,
                    FaultEffect::CorruptionRejected { non_finite: false }
                )),
                "{label}: rate 0.5 must reject some garbage"
            );
        }
    }
}

/// Pinned golden expectations copied from `golden_curves.rs` — a fault
/// configuration that schedules nothing must leave them bit-identical.
struct GoldenPin {
    auc: &'static [f64],
    uplink_units: usize,
}

const GOLDEN_FEDAVG: GoldenPin = GoldenPin {
    auc: &[
        0.5345061697781892,
        0.5586623139331556,
        0.5791141115078577,
        0.5895839876898322,
        0.5994022051584416,
    ],
    uplink_units: 625,
};

const GOLDEN_EXPLORE: GoldenPin = GoldenPin {
    auc: &[
        0.5345061697781892,
        0.5507348997479924,
        0.5685399400839046,
        0.5874738601798585,
        0.6009091192958481,
    ],
    uplink_units: 392,
};

fn check_pin(result: &RunResult, pin: &GoldenPin, label: &str) {
    assert_eq!(result.curve.len(), pin.auc.len(), "{label}: curve length");
    for (eval, golden) in result.curve.iter().zip(pin.auc) {
        assert_eq!(
            eval.roc_auc.to_bits(),
            golden.to_bits(),
            "{label}: AUC at round {} drifted: {} != {}",
            eval.round,
            eval.roc_auc,
            golden
        );
    }
    assert_eq!(
        result.comm.total_uplink_units(),
        pin.uplink_units,
        "{label}: uplink"
    );
    assert!(result.faults.is_empty(), "{label}: no faults scheduled");
}

/// Selects every client in round 0 and nobody afterwards — the minimal
/// protocol for pinning what the ledger does with a stale report that
/// arrives in a round with no active clients.
struct FirstRoundOnly;

impl FlProtocol for FirstRoundOnly {
    fn name(&self) -> String {
        "FirstRoundOnly".into()
    }

    fn select_clients(&mut self, system: &FlSystem, round: usize, _rng: &mut StdRng) -> Vec<usize> {
        if round == 0 {
            (0..system.num_clients()).collect()
        } else {
            Vec::new()
        }
    }

    fn build_masks(
        &mut self,
        system: &FlSystem,
        active: &[usize],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Vec<Vec<bool>> {
        vec![vec![true; system.num_units()]; active.len()]
    }
}

#[test]
fn sync_stale_arrival_in_an_inactive_round_stays_on_the_ledger() {
    // The accounting fix this pins: a straggler report landing in a round
    // where nobody was selected used to vanish from the comm log entirely
    // (the round was keyed out on `active.is_empty()`), understating total
    // uplink. Bytes that arrive must stay on the ledger.
    let fc = FaultConfig {
        staleness: StalenessPolicy::Discount { gamma: 0.5 },
        scripted: vec![ScriptedFault {
            round: 0,
            client: 0,
            kind: FaultKind::Straggler { delay: 1 },
        }],
        ..Default::default()
    };
    let mut sys = chaos_system(GOLDEN_SEED, Some(fc));
    let mut sink = MemorySink::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut FirstRoundOnly, &mut sys)
        .unwrap();
    let n = sys.num_units();
    // Round 0: all M dispatched, client 0 held. Round 1: nobody active but
    // the held report arrives. Rounds 2+: silent, off the ledger.
    let logged = result.comm.rounds();
    assert_eq!(logged.len(), 2, "dispatch round + stale-arrival round");
    assert_eq!(logged[0].active_clients, M);
    assert_eq!(logged[0].uplink_units, (M - 1) * n);
    assert_eq!(logged[0].downlink_units, M * n);
    assert_eq!(logged[1].active_clients, 0);
    assert_eq!(logged[1].downlink_units, 0);
    assert_eq!(
        logged[1].uplink_units, n,
        "arrived stale bytes must be charged"
    );
    assert_eq!(result.comm.total_uplink_units(), M * n);
    // The event stream mirrors the ledger entry for the inactive round.
    assert!(sink.events[1].active_clients.is_empty());
    assert_eq!(&sink.events[1].comm, &logged[1]);
    // And the observation stream records held-then-applied.
    assert_eq!(
        result.faults,
        vec![
            FaultObserved {
                round: 0,
                client: 0,
                effect: FaultEffect::StragglerHeld { arrival: Some(1) },
            },
            FaultObserved {
                round: 1,
                client: 0,
                effect: FaultEffect::StaleApplied {
                    staleness: 1,
                    weight: 0.5,
                },
            },
        ]
    );
}

/// Run protocol `which` under the async runtime (K = 2, γ = 0.9).
fn run_protocol_async(which: usize, sys: &mut FlSystem) -> RunResult {
    let acfg = AsyncConfig { k: 2, gamma: 0.9 };
    match which {
        0 => AsyncDriver::new(acfg).run(&mut FedAvg::vanilla(), sys),
        1 => AsyncDriver::new(acfg).run(&mut FedDa::restart().protocol(), sys),
        2 => AsyncDriver::new(acfg).run(&mut FedDa::explore().protocol(), sys),
        3 => AsyncDriver::new(acfg).run(&mut FedProx::new(0.01), sys),
        4 => AsyncDriver::new(acfg).run(&mut FedDyn::new(0.01).protocol(), sys),
        _ => AsyncDriver::new(acfg).run(&mut FedAdam::new(0.01).protocol(), sys),
    }
    .expect("chaos runs use valid configurations")
}

#[test]
fn corruption_is_rejected_after_decompression_across_protocols_and_runtimes() {
    // Compression must not launder corruption into an innocuous update:
    // a NaN report poisons i8's per-unit scale, maps to NaN halves under
    // f16, and outranks every finite magnitude under top-k — so the
    // server's non-finite guard fires on the *decompressed* report exactly
    // as it does uncompressed, in both runtimes, for every protocol.
    let fc = FaultConfig {
        corruption: 0.5,
        corruption_kind: Corruption::NaN,
        ..Default::default()
    };
    for compression in [
        Compression::QuantI8,
        Compression::QuantF16,
        Compression::TopK { frac: 0.5 },
    ] {
        for which in [0usize, 2, 3] {
            // FedAvg, FedDA-Explore, FedProx.
            for runtime in ["sync", "async"] {
                let mut sys = chaos_system(GOLDEN_SEED, Some(fc.clone()));
                sys.set_compression(Some(compression));
                let result = match runtime {
                    "sync" => {
                        let mut sink = MemorySink::new();
                        run_protocol(which, &mut sys, &mut sink)
                    }
                    _ => run_protocol_async(which, &mut sys),
                };
                let label = format!("{} protocol={which} {runtime}", compression.label());
                let rejections = result
                    .faults
                    .iter()
                    .filter(|f| {
                        matches!(
                            f.effect,
                            FaultEffect::CorruptionRejected { non_finite: true }
                        )
                    })
                    .count();
                assert!(
                    rejections > 0,
                    "{label}: rate 0.5 must reject some corrupted reports"
                );
                assert!(
                    sys.global.flatten().iter().all(|v| v.is_finite()),
                    "{label}: corruption leaked through the codec into the global model"
                );
                assert_eq!(result.curve.len(), ROUNDS, "{label}: all rounds ran");
            }
        }
    }
}

#[test]
fn sync_stale_arrival_charges_compressed_bytes() {
    // The compressed twin of the stale-arrival pin above: under f16 the
    // straggler's report crosses the round boundary carrying its encoded
    // payload, and the arrival round's ledger entry charges the
    // *compressed* wire size — exactly 2 bytes per masked scalar, half
    // the raw 4.
    let fc = FaultConfig {
        staleness: StalenessPolicy::Discount { gamma: 0.5 },
        scripted: vec![ScriptedFault {
            round: 0,
            client: 0,
            kind: FaultKind::Straggler { delay: 1 },
        }],
        ..Default::default()
    };
    let mut sys = chaos_system(GOLDEN_SEED, Some(fc));
    sys.set_compression(Some(Compression::QuantF16));
    let result = RoundDriver::new()
        .run(&mut FirstRoundOnly, &mut sys)
        .unwrap();
    let n = sys.num_units();
    let logged = result.comm.rounds();
    assert_eq!(logged.len(), 2, "dispatch round + stale-arrival round");
    assert_eq!(logged[0].uplink_units, (M - 1) * n);
    assert_eq!(
        logged[0].uplink_bytes,
        2 * logged[0].uplink_scalars,
        "fresh arrivals charge the f16 rate"
    );
    assert_eq!(logged[1].active_clients, 0);
    assert_eq!(logged[1].uplink_units, n);
    assert!(logged[1].uplink_scalars > 0);
    assert_eq!(
        logged[1].uplink_bytes,
        2 * logged[1].uplink_scalars,
        "the stale arrival must charge its compressed byte size"
    );
}

#[test]
fn fully_compressed_away_stale_round_stays_off_the_ledger() {
    // The accounting bugfix this PR pins: the empty-active-round ledger
    // condition must key on the *compressed* charge, not the mask. A top-k
    // fraction too small to keep a single scalar of any unit compresses
    // the straggler's report away entirely — its arrival round moves zero
    // bytes, so it must not mint a ledger entry (keyed on the mask it
    // would have, double-counting a round that charged nothing).
    let fc = FaultConfig {
        staleness: StalenessPolicy::Discount { gamma: 0.5 },
        scripted: vec![ScriptedFault {
            round: 0,
            client: 0,
            kind: FaultKind::Straggler { delay: 1 },
        }],
        ..Default::default()
    };
    let mut sys = chaos_system(GOLDEN_SEED, Some(fc));
    // Valid (0 < frac ≤ 0.5) but smaller than 1/len for every unit here:
    // k = floor(frac · len) = 0 everywhere, every payload is empty.
    sys.set_compression(Some(Compression::TopK { frac: 1e-9 }));
    let mut sink = MemorySink::new();
    let result = RoundDriver::with_sink(&mut sink)
        .run(&mut FirstRoundOnly, &mut sys)
        .unwrap();
    let logged = result.comm.rounds();
    assert_eq!(
        logged.len(),
        1,
        "only the dispatch round may appear: the stale arrival charged nothing"
    );
    assert_eq!(logged[0].active_clients, M);
    assert_eq!(logged[0].uplink_units, 0, "every report compressed away");
    assert_eq!(logged[0].uplink_scalars, 0);
    assert_eq!(logged[0].uplink_bytes, 0);
    assert!(
        logged[0].downlink_units > 0,
        "the broadcast still cost a full model per client"
    );
    assert_eq!(result.comm.total_uplink_bytes(), 0);
    // The event stream still reports every round; the arrival round's
    // comm view is all-zero.
    assert_eq!(sink.events.len(), ROUNDS);
    assert!(!sink.events[1].comm.has_uplink());
}

#[test]
fn async_full_dropout_under_compression_still_charges_nothing() {
    // Dropouts transfer nothing whatever the codec: the compressed twin of
    // the full-dropout pin below, under i8.
    let fc = FaultConfig::dropout_only(1.0);
    let mut sys = chaos_system(GOLDEN_SEED, Some(fc));
    sys.set_compression(Some(Compression::QuantI8));
    let result = AsyncDriver::new(AsyncConfig::default())
        .run(&mut FedAvg::vanilla(), &mut sys)
        .unwrap();
    assert_eq!(result.curve.len(), ROUNDS);
    for rc in result.comm.rounds() {
        assert_eq!(rc.uplink_units, 0, "no report ever arrives");
        assert_eq!(rc.uplink_scalars, 0);
        assert_eq!(rc.uplink_bytes, 0);
    }
    assert_eq!(result.comm.total_uplink_bytes(), 0);
}

#[test]
fn async_full_dropout_charges_downlink_but_never_uplink() {
    // Buffered-async runtime, every report dropped: each version's wave
    // still costs a broadcast, nothing ever arrives, and the starved queue
    // flushes an empty buffer so the run completes all versions.
    let fc = FaultConfig::dropout_only(1.0);
    let mut sys = chaos_system(GOLDEN_SEED, Some(fc));
    let result = AsyncDriver::new(AsyncConfig::default())
        .run(&mut FedAvg::vanilla(), &mut sys)
        .unwrap();
    let n = sys.num_units();
    assert_eq!(result.curve.len(), ROUNDS, "every version still evaluates");
    assert_eq!(result.comm.rounds().len(), ROUNDS);
    for rc in result.comm.rounds() {
        assert_eq!(rc.active_clients, M);
        assert_eq!(rc.uplink_units, 0, "no report ever arrives");
        assert_eq!(rc.downlink_units, M * n);
    }
    assert_eq!(result.comm.total_uplink_units(), 0);
    assert_eq!(result.comm.total_downlink_units(), ROUNDS * M * n);
    assert_eq!(result.faults.len(), ROUNDS * M);
    assert!(result
        .faults
        .iter()
        .all(|f| matches!(f.effect, FaultEffect::Dropout)));
}

#[test]
fn async_report_outliving_the_run_is_never_charged() {
    // Client 0's scripted straggler report would land ~1000 ticks after the
    // run's final aggregation: its uplink bytes must never be charged, and
    // the async concurrency rule keeps the client out of every later wave.
    let fc = FaultConfig {
        scripted: vec![ScriptedFault {
            round: 0,
            client: 0,
            kind: FaultKind::Straggler { delay: 1000 },
        }],
        ..Default::default()
    };
    let mut sys = chaos_system(GOLDEN_SEED, Some(fc));
    let acfg = AsyncConfig {
        k: M - 1,
        gamma: 1.0,
    };
    let result = AsyncDriver::new(acfg)
        .run(&mut FedAvg::vanilla(), &mut sys)
        .unwrap();
    let n = sys.num_units();
    let logged = result.comm.rounds();
    assert_eq!(logged.len(), ROUNDS);
    assert_eq!(logged[0].active_clients, M);
    assert_eq!(logged[0].downlink_units, M * n);
    assert_eq!(logged[0].uplink_units, (M - 1) * n);
    for (v, rc) in logged.iter().enumerate().skip(1) {
        assert_eq!(rc.active_clients, M - 1, "v{v}: client 0 stays in flight");
        assert_eq!(rc.uplink_units, (M - 1) * n, "v{v}");
        assert_eq!(rc.downlink_units, (M - 1) * n, "v{v}");
    }
    assert_eq!(result.comm.total_uplink_units(), ROUNDS * (M - 1) * n);
    assert_eq!(
        result.comm.total_downlink_units(),
        (M + (ROUNDS - 1) * (M - 1)) * n
    );
}

#[test]
fn zero_rate_fault_config_is_bit_identical_to_the_golden_pins() {
    // `faults: Some(all-zero)` exercises the faulted driver path but
    // schedules nothing — the runs must still reproduce the golden curves
    // bit for bit, proving the fault stream is orthogonal to every other
    // RNG stream and the faulted aggregation path is numerically identical.
    for faults in [None, Some(FaultConfig::default())] {
        let label = if faults.is_some() {
            "zero-rate FaultConfig"
        } else {
            "faults: None"
        };
        let mut sys = chaos_system(GOLDEN_SEED, faults.clone());
        let result = FedAvg::vanilla().run(&mut sys);
        check_pin(&result, &GOLDEN_FEDAVG, &format!("FedAvg / {label}"));

        let mut sys = chaos_system(GOLDEN_SEED, faults.clone());
        let result = FedDa::explore().run(&mut sys);
        check_pin(&result, &GOLDEN_EXPLORE, &format!("Explore / {label}"));

        let mut sys = chaos_system(GOLDEN_SEED, faults);
        let result = FedDa::restart().run(&mut sys);
        assert_eq!(
            result.comm.total_uplink_units(),
            466,
            "Restart / {label}: uplink"
        );
    }
}
