//! Golden-curve regression tests: seeded runs of every protocol pinned to
//! the exact AUC/MRR curves and uplink totals they produced *before* the
//! `FlProtocol`/`RoundDriver` refactor. The driver must reproduce these
//! bit-for-bit — same RNG stream derivations, same round structure.
//!
//! If a PR intentionally changes training numerics, regenerate the pins:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p fedda-fl --test golden_curves -- --nocapture
//! ```
//!
//! and paste the printed literals back into this file.

use fedda_data::{dblp_like, partition_non_iid, PartitionConfig, PresetOptions};
use fedda_fl::{
    baselines, AsyncConfig, AsyncDriver, Compression, FedAdam, FedAvg, FedDa, FedDyn, FedProx,
    FlConfig, FlSystem, RunResult,
};
use fedda_hetgraph::split::split_edges;
use fedda_hgn::{HgnConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 5;
const ROUNDS: usize = 5;
const SEED: u64 = 42;

fn golden_system() -> FlSystem {
    golden_system_with_epochs(1)
}

/// The golden federation with a configurable local-epoch count. The
/// FedProx pins use two local epochs: with a single local gradient step
/// the client starts exactly at the broadcast anchor, the proximal
/// gradient `μ(θ − θ^t)` is identically zero, and the pin would be
/// vacuously equal to a FedAvg trajectory.
fn golden_system_with_epochs(local_epochs: usize) -> FlSystem {
    let g = dblp_like(&PresetOptions {
        scale: 0.0015,
        seed: SEED,
        ..Default::default()
    })
    .graph;
    let mut rng = StdRng::seed_from_u64(SEED);
    let split = split_edges(&g, 0.15, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(M, g.schema().num_edge_types(), SEED);
    let clients = partition_non_iid(&split.train, &pcfg);
    let cfg = FlConfig {
        rounds: ROUNDS,
        model: HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 2,
            edge_emb_dim: 4,
            ..Default::default()
        },
        train: TrainConfig {
            local_epochs,
            lr: 5e-3,
            ..Default::default()
        },
        eval_negatives: 3,
        seed: SEED,
        parallel: true,
        ..Default::default()
    };
    FlSystem::new(&split.train, &split.test, clients, cfg)
}

/// Pinned expectation for one protocol.
struct Golden {
    name: &'static str,
    auc: &'static [f64],
    mrr: &'static [f64],
    uplink_units: usize,
}

fn check(result: &RunResult, golden: &Golden) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let aucs: Vec<f64> = result.curve.iter().map(|e| e.roc_auc).collect();
        let mrrs: Vec<f64> = result.curve.iter().map(|e| e.mrr).collect();
        println!("// --- {} ---", golden.name);
        println!("auc: &{aucs:?},");
        println!("mrr: &{mrrs:?},");
        println!("uplink_units: {},", result.comm.total_uplink_units());
        return;
    }
    assert_eq!(
        result.curve.len(),
        golden.auc.len(),
        "{}: curve length",
        golden.name
    );
    for (i, eval) in result.curve.iter().enumerate() {
        assert_eq!(eval.round, i, "{}: round index", golden.name);
        assert_eq!(
            eval.roc_auc.to_bits(),
            golden.auc[i].to_bits(),
            "{}: AUC at round {i}: {} != {}",
            golden.name,
            eval.roc_auc,
            golden.auc[i]
        );
        assert_eq!(
            eval.mrr.to_bits(),
            golden.mrr[i].to_bits(),
            "{}: MRR at round {i}: {} != {}",
            golden.name,
            eval.mrr,
            golden.mrr[i]
        );
    }
    assert_eq!(
        result.comm.total_uplink_units(),
        golden.uplink_units,
        "{}: total uplink units",
        golden.name
    );
    assert_eq!(
        result.final_eval.roc_auc.to_bits(),
        golden.auc.last().unwrap().to_bits(),
        "{}: final eval matches last curve point",
        golden.name
    );
}

#[test]
fn golden_fedavg_vanilla() {
    let mut sys = golden_system();
    let result = FedAvg::vanilla().run(&mut sys);
    check(
        &result,
        &Golden {
            name: "FedAvg",
            auc: &[
                0.5345061697781892,
                0.5586623139331556,
                0.5791141115078577,
                0.5895839876898322,
                0.5994022051584416,
            ],
            mrr: &[
                0.5556128437290417,
                0.5683140509725034,
                0.5747191482226709,
                0.5863388665325302,
                0.5975994858037131,
            ],
            uplink_units: 625,
        },
    );
}

#[test]
fn golden_fedavg_half_half() {
    let mut sys = golden_system();
    let result = FedAvg::with_fractions(0.5, 0.5).run(&mut sys);
    check(
        &result,
        &Golden {
            name: "FedAvg(C=0.5,D=0.5)",
            auc: &[
                0.5233126556679671,
                0.5468911867133947,
                0.5665509259259259,
                0.5736594760923391,
                0.5926152080715907,
            ],
            mrr: &[
                0.5503912363067303,
                0.5605480102839273,
                0.5634864744019689,
                0.5760381734853584,
                0.5938729599821168,
            ],
            uplink_units: 195,
        },
    );
}

#[test]
fn golden_fedda_restart() {
    let mut sys = golden_system();
    let result = FedDa::restart().run(&mut sys);
    check(
        &result,
        &Golden {
            name: "FedDA-Restart",
            auc: &[
                0.5345061697781892,
                0.5507348997479924,
                0.5620398840618043,
                0.5790008619137884,
                0.589422694552815,
            ],
            mrr: &[
                0.5556128437290417,
                0.5603426112228945,
                0.5644967024368447,
                0.5814581936060824,
                0.5892759333780476,
            ],
            uplink_units: 466,
        },
    );
}

#[test]
fn golden_fedda_explore() {
    let mut sys = golden_system();
    let result = FedDa::explore().run(&mut sys);
    check(
        &result,
        &Golden {
            name: "FedDA-Explore",
            auc: &[
                0.5345061697781892,
                0.5507348997479924,
                0.5685399400839046,
                0.5874738601798585,
                0.6009091192958481,
            ],
            mrr: &[
                0.5556128437290417,
                0.5603426112228945,
                0.5684202436843299,
                0.5879135926671153,
                0.5973270176615267,
            ],
            uplink_units: 392,
        },
    );
}

#[test]
fn golden_async_fedavg_vanilla() {
    // The buffered-asynchronous runtime gets its own pins: K = 2 with
    // γ = 0.9 on the same seeded federation. These seal the async event
    // order, staleness weighting and arrival accounting bit-for-bit.
    let mut sys = golden_system();
    let result = AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.9 })
        .run(&mut FedAvg::vanilla(), &mut sys)
        .expect("golden async run");
    check(
        &result,
        &Golden {
            name: "async FedAvg (K=2, gamma=0.9)",
            auc: &[
                0.5363554730836768,
                0.5405683809429346,
                0.5435644153129523,
                0.5537101554291843,
                0.5769569736494082,
            ],
            mrr: &[
                0.5577366979655723,
                0.555626816454283,
                0.5555248155600281,
                0.5638944779789864,
                0.5853635703107553,
            ],
            uplink_units: 250,
        },
    );
}

#[test]
fn golden_async_fedda_explore() {
    let mut sys = golden_system();
    let result = AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.9 })
        .run(&mut FedDa::explore().protocol(), &mut sys)
        .expect("golden async run");
    check(
        &result,
        &Golden {
            name: "async FedDA-Explore (K=2, gamma=0.9)",
            auc: &[
                0.5363554730836768,
                0.5405683809429346,
                0.5324176245527416,
                0.5680113463120927,
                0.5456701230465737,
            ],
            mrr: &[
                0.5577366979655723,
                0.555626816454283,
                0.5440601945003364,
                0.5758062262463689,
                0.5588573105298466,
            ],
            uplink_units: 239,
        },
    );
}

#[test]
fn golden_fedprox() {
    // Two local epochs so the proximal gradient actually bites (see
    // `golden_system_with_epochs`); μ = 0.1 is inside the paper's sweep.
    let mut sys = golden_system_with_epochs(2);
    let result = FedProx::new(0.1).run(&mut sys);
    check(
        &result,
        &Golden {
            name: "FedProx(mu=0.1)",
            auc: &[
                0.5607446025920783,
                0.5925200393807813,
                0.6061676773604591,
                0.6174080296200783,
                0.6238501119523611,
            ],
            mrr: &[
                0.5691496199418747,
                0.5899578023697762,
                0.5960163760339834,
                0.6089341605186692,
                0.6171822602280367,
            ],
            uplink_units: 625,
        },
    );
}

#[test]
fn golden_feddyn() {
    let mut sys = golden_system();
    let result = FedDyn::new(0.01).run(&mut sys);
    check(
        &result,
        &Golden {
            name: "FedDyn(alpha=0.01)",
            auc: &[
                0.5626007364610196,
                0.6121640510774611,
                0.6305923372787586,
                0.6411825232170277,
                0.6434809217196764,
            ],
            mrr: &[
                0.5693061144645665,
                0.5992859937402212,
                0.6168203666443116,
                0.6259780907668244,
                0.6405865750055906,
            ],
            uplink_units: 625,
        },
    );
}

#[test]
fn golden_fedadam() {
    let mut sys = golden_system();
    let result = FedAdam::new(0.01).run(&mut sys);
    check(
        &result,
        &Golden {
            name: "FedAdam(lr=0.01)",
            auc: &[
                0.5642674513434284,
                0.6036691261287076,
                0.6222254136451468,
                0.630703520483884,
                0.6332669907682926,
            ],
            mrr: &[
                0.5723381958417184,
                0.5936172591102192,
                0.6119061591772876,
                0.6156704113570325,
                0.6281955622624652,
            ],
            uplink_units: 625,
        },
    );
}

#[test]
fn golden_async_fedprox() {
    let mut sys = golden_system_with_epochs(2);
    let result = AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.9 })
        .run(&mut FedProx::new(0.1), &mut sys)
        .expect("golden async run");
    check(
        &result,
        &Golden {
            name: "async FedProx(mu=0.1) (K=2, gamma=0.9)",
            auc: &[
                0.5629403704438419,
                0.5718306644772128,
                0.5703008478623436,
                0.583364960564115,
                0.6121060199879507,
            ],
            mrr: &[
                0.5723954840152037,
                0.5739562374245495,
                0.5700047507265831,
                0.584979320366646,
                0.6156270959087875,
            ],
            uplink_units: 250,
        },
    );
}

#[test]
fn golden_async_feddyn() {
    let mut sys = golden_system();
    let result = AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.9 })
        .run(&mut FedDyn::new(0.01).protocol(), &mut sys)
        .expect("golden async run");
    check(
        &result,
        &Golden {
            name: "async FedDyn(alpha=0.01) (K=2, gamma=0.9)",
            auc: &[
                0.548277504096042,
                0.5498108794918704,
                0.5589690004922597,
                0.5727839011770152,
                0.5991398885619402,
            ],
            mrr: &[
                0.5630183881064172,
                0.559752962217753,
                0.562309970936733,
                0.5730214621059709,
                0.6025108987256895,
            ],
            uplink_units: 250,
        },
    );
}

#[test]
fn golden_async_fedadam() {
    let mut sys = golden_system();
    let result = AsyncDriver::new(AsyncConfig { k: 2, gamma: 0.9 })
        .run(&mut FedAdam::new(0.01).protocol(), &mut sys)
        .expect("golden async run");
    check(
        &result,
        &Golden {
            name: "async FedAdam(lr=0.01) (K=2, gamma=0.9)",
            auc: &[
                0.5569088107150991,
                0.5667173850353031,
                0.5660040216520825,
                0.5678609591167243,
                0.5839737991065853,
            ],
            mrr: &[
                0.5702660406885772,
                0.571706628660856,
                0.5707802369774216,
                0.5734797674938535,
                0.5921710820478445,
            ],
            uplink_units: 250,
        },
    );
}

/// Run one protocol on the golden federation with and without `Identity`
/// compression and insist the two runs are byte-for-byte the same — the
/// whole Compressor stage (encode at dispatch, decode at arrival, charge
/// accounting) must be invisible under the lossless codec. The only
/// permitted difference is none at all: even the comm ledger matches,
/// because `Identity`'s wire cost is exactly the uncompressed 4 bytes per
/// masked scalar.
fn assert_identity_is_invisible(name: &str, run: impl Fn(&mut FlSystem) -> RunResult) {
    let mut plain_sys = golden_system();
    let plain = run(&mut plain_sys);
    let mut ident_sys = golden_system();
    ident_sys.set_compression(Some(Compression::Identity));
    let ident = run(&mut ident_sys);

    assert_eq!(plain.curve.len(), ident.curve.len(), "{name}: curve length");
    for (p, i) in plain.curve.iter().zip(&ident.curve) {
        assert_eq!(p.round, i.round, "{name}: round index");
        assert_eq!(
            p.roc_auc.to_bits(),
            i.roc_auc.to_bits(),
            "{name}: AUC diverged at round {}",
            p.round
        );
        assert_eq!(
            p.mrr.to_bits(),
            i.mrr.to_bits(),
            "{name}: MRR diverged at round {}",
            p.round
        );
    }
    assert_eq!(
        plain.comm.rounds(),
        ident.comm.rounds(),
        "{name}: comm ledgers diverged"
    );
    for rc in ident.comm.rounds() {
        assert_eq!(
            rc.uplink_bytes,
            4 * rc.uplink_scalars,
            "{name}: Identity must charge exactly 4 bytes per masked scalar"
        );
    }
    assert_eq!(
        plain.activation_trace, ident.activation_trace,
        "{name}: activation traces diverged"
    );
    let plain_bits: Vec<u32> = plain_sys
        .global
        .flatten()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let ident_bits: Vec<u32> = ident_sys
        .global
        .flatten()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(plain_bits, ident_bits, "{name}: final parameters diverged");
}

#[test]
fn golden_identity_compression_matches_uncompressed_fedavg() {
    assert_identity_is_invisible("FedAvg + ident", |sys| FedAvg::vanilla().run(sys));
}

#[test]
fn golden_identity_compression_matches_uncompressed_fedda_explore() {
    assert_identity_is_invisible("FedDA-Explore + ident", |sys| FedDa::explore().run(sys));
}

#[test]
fn golden_identity_compression_matches_uncompressed_async() {
    // The async runtime's own arrival path (staleness weighting, buffered
    // aggregation) must be equally blind to the lossless codec.
    for (name, which) in [
        ("async FedAvg + ident", 0usize),
        ("async FedDA-Explore + ident", 1),
    ] {
        assert_identity_is_invisible(name, |sys| {
            let acfg = AsyncConfig { k: 2, gamma: 0.9 };
            match which {
                0 => AsyncDriver::new(acfg).run(&mut FedAvg::vanilla(), sys),
                _ => AsyncDriver::new(acfg).run(&mut FedDa::explore().protocol(), sys),
            }
            .expect("golden async run")
        });
    }
}

#[test]
fn golden_global_baseline() {
    let mut sys = golden_system();
    let result = baselines::run_global(&mut sys);
    check(
        &result,
        &Golden {
            name: "Global",
            auc: &[
                0.6515513759395182,
                0.6749441615787579,
                0.716991158610505,
                0.7519739180387489,
                0.7539756749285489,
            ],
            mrr: &[
                0.6348074558461893,
                0.6606234630002241,
                0.698883579253298,
                0.7244676391683443,
                0.728164822266935,
            ],
            uplink_units: 0,
        },
    );
}
