//! `fedda` — the command-line interface of the FedDA reproduction.
//!
//! ```text
//! fedda-cli generate  --dataset dblp --scale 0.003 --seed 1 --out graph.json
//! fedda-cli stats     --graph graph.json
//! fedda-cli partition --graph graph.json --clients 8 --out-dir clients/ [--iid]
//! fedda-cli train     --dataset dblp --framework fedda-explore --clients 8 --rounds 20
//! fedda-cli efficiency --m 16 --n 65 --nd 20 --rc 0.8 --rp 0.5
//! ```
//!
//! All subcommands are deterministic given `--seed`.

use fedda::data::{
    amazon_like, dblp_like, non_iidness, partition_iid, partition_non_iid, DatasetStats,
    PartitionConfig, PresetOptions,
};
use fedda::experiment::{Dataset, Experiment};
use fedda::fl::analysis::{explore_ratio_bound, restart_period, restart_ratio, EfficiencyInputs};
use fedda::fl::StderrSink;
use fedda::hetgraph::io;
use fedda::hetgraph::split::split_edges;
use fedda_bench::{base_config, parse_framework, Options};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
fedda — federated learning over heterogeneous graphs (FedDA reproduction)

USAGE:
    fedda-cli <SUBCOMMAND> [FLAGS]

SUBCOMMANDS:
    generate    synthesize a heterograph and save it as JSON
                  --dataset amazon|dblp  --scale <f64>  --seed <u64>  --out <path>
    stats       print Table-1 statistics of a saved graph
                  --graph <path>
    partition   split a saved graph into client sub-heterographs
                  --graph <path>  --clients <n>  --out-dir <dir>
                  [--mode iid|biased]  [--seed <u64>]  [--test-fraction <f64>]
    train       run a federated training experiment and print the summary
                  --dataset amazon|dblp  --framework global|local|fedavg|
                  fedprox|feddyn|fedadam|fedda-restart|fedda-explore
                  [--clients <n>]  [--rounds <n>]
                  [--runs <n>]  [--scale <f64>]  [--seed <u64>]
                  [--eval-every <n>]  [--events]
                  [--mu <f64>]  [--alpha <f64>]  [--client-fraction <f64>]
                  [--server-lr <f64>]  [--beta1 <f64>]  [--beta2 <f64>]
                  [--adam-eps <f64>]
                  [--runtime sync|async]  [--async-k <n>]
                  [--async-gamma <f64>]  [--workers <n>]
                  [--compress ident|q8|f16|topk:<frac>]
                  [--faults drop=<f64>,straggle=<f64>,delay=<n>,
                   corrupt=<f64>,kind=nan|inf|garbage:<s>,
                   stale=discard|discount:<g>,maxnorm=<f64>]
    efficiency  evaluate the Eqs. 8-11 communication model
                  --m <n> --n <n> --nd <n> --rc <f64> --rp <f64>
    help        print this message
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let sub = match args.next() {
        Some(s) => s,
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let opts = Options::from_args(args);
    let result = match sub.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "partition" => cmd_partition(&opts),
        "train" => cmd_train(&opts),
        "efficiency" => cmd_efficiency(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_dataset(opts: &Options) -> Result<Dataset, String> {
    match opts.get_str("dataset").unwrap_or("dblp") {
        d if d.eq_ignore_ascii_case("amazon") => Ok(Dataset::AmazonLike),
        d if d.eq_ignore_ascii_case("dblp") => Ok(Dataset::DblpLike),
        other => Err(format!("unknown dataset '{other}' (expected amazon|dblp)")),
    }
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    let dataset = parse_dataset(opts)?;
    let out = opts.get_str("out").ok_or("--out <path> is required")?;
    let preset = PresetOptions {
        scale: opts.get("scale").unwrap_or(0.005),
        seed: opts.get("seed").unwrap_or(0),
        ..Default::default()
    };
    let generated = match dataset {
        Dataset::AmazonLike => amazon_like(&preset),
        Dataset::DblpLike => dblp_like(&preset),
    };
    io::save_json(&generated.graph, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges, {} edge types)",
        out,
        generated.graph.num_nodes(),
        generated.graph.num_edges(),
        generated.graph.schema().num_edge_types()
    );
    Ok(())
}

fn cmd_stats(opts: &Options) -> Result<(), String> {
    let path = opts.get_str("graph").ok_or("--graph <path> is required")?;
    let graph = io::load_json(Path::new(path)).map_err(|e| e.to_string())?;
    println!("{}", DatasetStats::table_header());
    println!("{}", DatasetStats::compute(path, &graph).table_row());
    println!("\nPer-edge-type counts:");
    for t in graph.schema().edge_type_ids() {
        println!(
            "  {:<16} {:>8}",
            graph.schema().edge_type(t).name,
            graph.edges_of_type(t).len()
        );
    }
    Ok(())
}

fn cmd_partition(opts: &Options) -> Result<(), String> {
    let path = opts.get_str("graph").ok_or("--graph <path> is required")?;
    let out_dir = opts
        .get_str("out-dir")
        .ok_or("--out-dir <dir> is required")?;
    let clients = opts.get("clients").unwrap_or(8usize);
    let seed: u64 = opts.get("seed").unwrap_or(0);
    let test_fraction: f64 = opts.get("test-fraction").unwrap_or(0.1);
    let iid = opts.get_str("mode").map(|m| m == "iid").unwrap_or(false);

    let graph = io::load_json(Path::new(path)).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_edges(&graph, test_fraction, &mut rng);
    let pcfg = PartitionConfig::paper_defaults(clients, graph.schema().num_edge_types(), seed);
    let parts = if iid {
        partition_iid(&split.train, &pcfg)
    } else {
        partition_non_iid(&split.train, &pcfg)
    };
    let dir = Path::new(out_dir);
    io::save_json(&split.train, &dir.join("global_train.json")).map_err(|e| e.to_string())?;
    io::save_json(&split.test, &dir.join("global_test.json")).map_err(|e| e.to_string())?;
    for (i, c) in parts.iter().enumerate() {
        io::save_json(&c.graph, &dir.join(format!("client_{i}.json")))
            .map_err(|e| e.to_string())?;
    }
    println!(
        "wrote global train/test + {} client graphs to {} (non-IIDness {:.3})",
        parts.len(),
        out_dir,
        non_iidness(&parts)
    );
    Ok(())
}

fn cmd_train(opts: &Options) -> Result<(), String> {
    let dataset = parse_dataset(opts)?;
    let framework = parse_framework(opts.get_str("framework").unwrap_or("fedda-explore"), opts)?;
    let cfg = base_config(dataset, opts);
    println!(
        "training {} on {} (M={}, {} runs x {} rounds, scale {})",
        framework.name(),
        dataset.name(),
        cfg.num_clients,
        cfg.runs,
        cfg.rounds,
        cfg.scale
    );
    let exp = Experiment::new(cfg);
    let res = if opts.events {
        let mut sink = StderrSink;
        exp.run_framework_with_sink(&framework, Some(&mut sink))
    } else {
        exp.run_framework(&framework)
    };
    println!("final ROC-AUC : {}", res.final_auc.fmt_pm());
    println!("final MRR     : {}", res.final_mrr.fmt_pm());
    println!("best ROC-AUC  : {}", res.best_auc.fmt_pm());
    println!("uplink units  : {:.0}", res.uplink_units.mean);
    println!("uplink bytes  : {:.0}", res.uplink_bytes.mean);
    Ok(())
}

fn cmd_efficiency(opts: &Options) -> Result<(), String> {
    let inputs = EfficiencyInputs {
        m: opts.get("m").unwrap_or(16),
        n: opts.get("n").unwrap_or(65),
        n_d: opts.get("nd").unwrap_or(20),
        r_c: opts.get("rc").unwrap_or(0.8),
        r_p: opts.get("rp").unwrap_or(0.5),
    };
    inputs.validate()?;
    println!(
        "M={} N={} N_d={} r_c={} r_p={}",
        inputs.m, inputs.n, inputs.n_d, inputs.r_c, inputs.r_p
    );
    for beta_r in [0.2, 0.4, 0.6, 0.8] {
        println!(
            "Restart beta_r={beta_r}: t0={} rounds, cost = {:.1}% of FedAvg",
            restart_period(inputs.r_c, beta_r),
            restart_ratio(&inputs, beta_r) * 100.0
        );
    }
    for beta_e in [0.33, 0.5, 0.667, 0.83] {
        println!(
            "Explore beta_e={beta_e}: cost ≤ {:.1}% of FedAvg",
            explore_ratio_bound(&inputs, beta_e) * 100.0
        );
    }
    Ok(())
}
