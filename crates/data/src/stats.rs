//! Dataset statistics — the numbers Table 1 of the paper reports, computed
//! from any [`HeteroGraph`].

use fedda_hetgraph::HeteroGraph;

/// Summary statistics of a heterograph (Table 1 columns).
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset label.
    pub name: String,
    /// Total node count.
    pub num_nodes: usize,
    /// Number of node types.
    pub num_node_types: usize,
    /// Total edge count.
    pub num_edges: usize,
    /// Number of edge types.
    pub num_edge_types: usize,
    /// Density `|E| / (|V| (|V|-1))`, in percent (paper convention).
    pub density_pct: f64,
    /// Per-edge-type edge counts.
    pub edges_per_type: Vec<usize>,
}

impl DatasetStats {
    /// Compute the statistics of a graph.
    pub fn compute(name: impl Into<String>, graph: &HeteroGraph) -> Self {
        Self {
            name: name.into(),
            num_nodes: graph.num_nodes(),
            num_node_types: graph.schema().num_node_types(),
            num_edges: graph.num_edges(),
            num_edge_types: graph.schema().num_edge_types(),
            density_pct: graph.density() * 100.0,
            edges_per_type: graph.edge_counts(),
        }
    }

    /// Render one row in the paper's Table 1 layout.
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:>9} {:>11} {:>11} {:>11} {:>9.2}%",
            self.name,
            self.num_nodes,
            self.num_node_types,
            self.num_edges,
            self.num_edge_types,
            self.density_pct
        )
    }

    /// Header matching [`DatasetStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<10} {:>9} {:>11} {:>11} {:>11} {:>10}",
            "Dataset", "#Nodes", "#NodeTypes", "#Edges", "#EdgeTypes", "Density"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{amazon_like, PresetOptions};

    #[test]
    fn stats_reflect_generated_graph() {
        let g = amazon_like(&PresetOptions {
            scale: 0.01,
            seed: 4,
            ..Default::default()
        })
        .graph;
        let s = DatasetStats::compute("Amazon", &g);
        assert_eq!(s.num_nodes, g.num_nodes());
        assert_eq!(s.num_node_types, 1);
        assert_eq!(s.num_edge_types, 2);
        assert_eq!(s.edges_per_type.iter().sum::<usize>(), s.num_edges);
        assert!(s.density_pct > 0.0);
    }

    #[test]
    fn table_row_is_aligned_with_header() {
        let g = amazon_like(&PresetOptions {
            scale: 0.01,
            seed: 4,
            ..Default::default()
        })
        .graph;
        let s = DatasetStats::compute("Amazon", &g);
        let header = DatasetStats::table_header();
        let row = s.table_row();
        assert!(header.starts_with("Dataset"));
        assert!(row.starts_with("Amazon"));
    }
}
