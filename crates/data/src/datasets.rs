//! Dataset presets mirroring the paper's two benchmarks (Table 1).
//!
//! | Dataset | #Nodes  | #Node types | #Edges    | #Edge types |
//! |---------|---------|-------------|-----------|-------------|
//! | Amazon  | 10,099  | 1           | 148,659   | 2           |
//! | DBLP    | 114,145 | 3           | 7,566,543 | 5           |
//!
//! The presets reproduce the schemas exactly and scale the sizes by a
//! `scale` factor so CPU-only experiments stay tractable; `scale = 1.0`
//! regenerates paper-sized graphs. Feature dimensionalities default to a
//! reduced width (the paper's 1156-d / 300-d features are projections of
//! much lower-rank signal anyway) but can be overridden.

use crate::latent::{generate, GeneratedGraph, LatentGraphConfig};
use fedda_hetgraph::Schema;

/// Size- and signal-related knobs shared by the presets.
#[derive(Clone, Debug)]
pub struct PresetOptions {
    /// Multiplier on node and edge counts (1.0 = paper size).
    pub scale: f64,
    /// Observed feature dimensionality for every node type.
    pub feat_dim: usize,
    /// Latent dimensionality of the planted signal.
    pub latent_dim: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PresetOptions {
    fn default() -> Self {
        Self {
            scale: 0.05,
            feat_dim: 32,
            latent_dim: 8,
            seed: 0,
        }
    }
}

fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(min)
}

/// Amazon-like heterograph: a single `product` node type with symmetric
/// `co-view` and `co-purchase` relations (schema of the GATNE electronics
/// subset used by Simple-HGN and the paper).
pub fn amazon_like(opts: &PresetOptions) -> GeneratedGraph {
    let mut schema = Schema::new();
    let product = schema.add_node_type("product", opts.feat_dim);
    schema.add_edge_type("co-view", product, product, true);
    schema.add_edge_type("co-purchase", product, product, true);
    let nodes = scaled(10_099, opts.scale, 60);
    // Paper totals 148,659 edges over the two types; GATNE's electronics
    // subset is co-view-heavy, roughly 2:1.
    let e_view = scaled(99_106, opts.scale, 300);
    let e_purchase = scaled(49_553, opts.scale, 150);
    let mut cfg = LatentGraphConfig::new(schema, vec![nodes], vec![e_view, e_purchase]);
    cfg.latent_dim = opts.latent_dim;
    generate(&cfg, opts.seed)
}

/// DBLP-like heterograph: `author`, `phrase`, `year` node types with five
/// relations (co-author, author–phrase, author–year, phrase–phrase,
/// phrase–year), matching the HNE-derived ICDE subgraph the paper uses
/// (3 node types, 5 edge types).
pub fn dblp_like(opts: &PresetOptions) -> GeneratedGraph {
    let mut schema = Schema::new();
    let author = schema.add_node_type("author", opts.feat_dim);
    let phrase = schema.add_node_type("phrase", opts.feat_dim);
    let year = schema.add_node_type("year", opts.feat_dim);
    schema.add_edge_type("co-author", author, author, true);
    schema.add_edge_type("author-phrase", author, phrase, false);
    schema.add_edge_type("author-year", author, year, false);
    schema.add_edge_type("phrase-phrase", phrase, phrase, true);
    schema.add_edge_type("phrase-year", phrase, year, false);
    // Node mix: authors and phrases dominate; years are few. We scale the
    // 114,145 total with a fixed mix and clamp years to a sane minimum.
    let authors = scaled(60_000, opts.scale, 40);
    let phrases = scaled(54_000, opts.scale, 40);
    let years = scaled(145, opts.scale, 10).min(60);
    // Edge mix summing to 7,566,543 at scale 1.0 (co-occurrence relations
    // dominate real DBLP-style graphs).
    let edges = [
        scaled(1_500_000, opts.scale, 200), // co-author
        scaled(2_800_000, opts.scale, 300), // author-phrase
        scaled(566_543, opts.scale, 120),   // author-year
        scaled(2_100_000, opts.scale, 250), // phrase-phrase
        scaled(600_000, opts.scale, 120),   // phrase-year
    ];
    let mut cfg = LatentGraphConfig::new(schema, vec![authors, phrases, years], edges.to_vec());
    cfg.latent_dim = opts.latent_dim;
    generate(&cfg, opts.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amazon_schema_matches_paper() {
        let opts = PresetOptions {
            scale: 0.01,
            ..Default::default()
        };
        let g = amazon_like(&opts).graph;
        assert_eq!(g.schema().num_node_types(), 1);
        assert_eq!(g.schema().num_edge_types(), 2);
        assert!(g.schema().edge_type_by_name("co-purchase").is_some());
        assert!(g.num_nodes() >= 60);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn dblp_schema_matches_paper() {
        let opts = PresetOptions {
            scale: 0.002,
            ..Default::default()
        };
        let g = dblp_like(&opts).graph;
        assert_eq!(g.schema().num_node_types(), 3);
        assert_eq!(g.schema().num_edge_types(), 5);
        assert!(g.schema().node_type_by_name("author").is_some());
        assert!(g.schema().edge_type_by_name("co-author").is_some());
    }

    #[test]
    fn scale_one_matches_paper_counts() {
        // Don't generate at scale 1 (too big for a unit test); check the
        // arithmetic instead.
        assert_eq!(scaled(10_099, 1.0, 60), 10_099);
        assert_eq!(
            99_106 + 49_553,
            148_659,
            "Amazon edge mix must sum to the paper total"
        );
        assert_eq!(
            1_500_000 + 2_800_000 + 566_543 + 2_100_000 + 600_000,
            7_566_543,
            "DBLP edge mix must sum to the paper total"
        );
    }

    #[test]
    fn presets_are_seed_deterministic() {
        let opts = PresetOptions {
            scale: 0.005,
            seed: 42,
            ..Default::default()
        };
        let a = amazon_like(&opts).graph;
        let b = amazon_like(&opts).graph;
        assert_eq!(a.edge_counts(), b.edge_counts());
        assert_eq!(
            a.edges_of_type(fedda_hetgraph::EdgeTypeId(0)),
            b.edges_of_type(fedda_hetgraph::EdgeTypeId(0))
        );
    }
}
