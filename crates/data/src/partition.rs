//! Federated system synthesis: splitting a global training graph into `M`
//! client sub-heterographs.
//!
//! The paper's non-IID protocol (§6.1): every client first randomly selects
//! the edge types it is *specialised* in and samples a fraction `r_a = 0.3`
//! of those edges from the global graph; for the remaining types it samples
//! a much smaller fraction `r_b = 0.05`. Overlap between clients is allowed
//! (`|E_i ∩ E_j| ≥ 0`). Biased clients train link prediction only on their
//! specialised types; the global test task covers all types.
//!
//! The IID variant gives every client the same expected edge-type
//! distribution by sampling every type at the same rate.

use fedda_hetgraph::{split::sample_edge_fraction, EdgeList, EdgeTypeId, HeteroGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Partitioner configuration.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of clients `M`.
    pub num_clients: usize,
    /// Fraction of a specialised type's edges each client samples (`r_a`).
    pub r_a: f64,
    /// Fraction of a non-specialised type's edges each client samples (`r_b`).
    pub r_b: f64,
    /// How many edge types each client specialises in.
    pub specialized_types_per_client: usize,
    /// RNG seed for the partition.
    pub seed: u64,
}

impl PartitionConfig {
    /// Paper defaults: `r_a = 0.3`, `r_b = 0.05`, specialisation breadth
    /// scaled to the schema (at least one type, roughly half the types).
    pub fn paper_defaults(num_clients: usize, num_edge_types: usize, seed: u64) -> Self {
        Self {
            num_clients,
            r_a: 0.30,
            r_b: 0.05,
            specialized_types_per_client: (num_edge_types / 2).max(1),
            seed,
        }
    }
}

/// One client's local data.
#[derive(Clone, Debug)]
pub struct ClientData {
    /// The client's sub-heterograph (shares the global node universe).
    pub graph: HeteroGraph,
    /// Edge types the client is specialised in — its local downstream task
    /// only predicts links of these types.
    pub specialized: Vec<EdgeTypeId>,
}

impl ClientData {
    /// Total local edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Non-IID partition per the paper's protocol.
pub fn partition_non_iid(global_train: &HeteroGraph, config: &PartitionConfig) -> Vec<ClientData> {
    assert!(config.num_clients > 0, "need at least one client");
    assert!(config.r_a > 0.0 && config.r_a <= 1.0, "r_a out of range");
    assert!(config.r_b >= 0.0 && config.r_b <= 1.0, "r_b out of range");
    let n_types = global_train.schema().num_edge_types();
    let k = config.specialized_types_per_client.clamp(1, n_types);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut clients = Vec::with_capacity(config.num_clients);
    for _ in 0..config.num_clients {
        let mut type_order: Vec<u16> = (0..n_types as u16).collect();
        type_order.shuffle(&mut rng);
        let specialized: Vec<EdgeTypeId> = type_order[..k].iter().map(|&t| EdgeTypeId(t)).collect();
        let mut lists = Vec::with_capacity(n_types);
        for t in 0..n_types {
            let t = EdgeTypeId(t as u16);
            let frac = if specialized.contains(&t) {
                config.r_a
            } else {
                config.r_b
            };
            lists.push(sample_edge_fraction(
                global_train.edges_of_type(t),
                frac,
                &mut rng,
            ));
        }
        let graph = HeteroGraph::from_edges(global_train.nodes().clone(), lists);
        clients.push(ClientData { graph, specialized });
    }
    clients
}

/// IID partition: every client samples every edge type at rate `r_a` and is
/// "specialised" in all types (its local task covers everything).
pub fn partition_iid(global_train: &HeteroGraph, config: &PartitionConfig) -> Vec<ClientData> {
    assert!(config.num_clients > 0, "need at least one client");
    let n_types = global_train.schema().num_edge_types();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let all_types: Vec<EdgeTypeId> = (0..n_types as u16).map(EdgeTypeId).collect();
    let mut clients = Vec::with_capacity(config.num_clients);
    for _ in 0..config.num_clients {
        let mut lists = Vec::with_capacity(n_types);
        for t in &all_types {
            lists.push(sample_edge_fraction(
                global_train.edges_of_type(*t),
                config.r_a,
                &mut rng,
            ));
        }
        let graph = HeteroGraph::from_edges(global_train.nodes().clone(), lists);
        clients.push(ClientData {
            graph,
            specialized: all_types.clone(),
        });
    }
    clients
}

/// Disjoint partition (no overlap): shuffles each type's edges and deals
/// them round-robin. Not used by the paper's main protocol but useful as an
/// ablation of the "overlap allowed" assumption.
pub fn partition_disjoint(
    global_train: &HeteroGraph,
    num_clients: usize,
    seed: u64,
) -> Vec<ClientData> {
    assert!(num_clients > 0, "need at least one client");
    let n_types = global_train.schema().num_edge_types();
    let mut rng = StdRng::seed_from_u64(seed);
    let all_types: Vec<EdgeTypeId> = (0..n_types as u16).map(EdgeTypeId).collect();
    let mut per_client_lists: Vec<Vec<EdgeList>> =
        vec![vec![EdgeList::new(); n_types]; num_clients];
    // `t` indexes the inner dimension of `per_client_lists` (the outer index
    // is `rank % num_clients`), so an iterator rewrite doesn't apply.
    #[allow(clippy::needless_range_loop)]
    for t in 0..n_types {
        let list = global_train.edges_of_type(EdgeTypeId(t as u16));
        let mut order: Vec<usize> = (0..list.len()).collect();
        order.shuffle(&mut rng);
        for (rank, &i) in order.iter().enumerate() {
            per_client_lists[rank % num_clients][t].push(list.src[i], list.dst[i]);
        }
    }
    per_client_lists
        .into_iter()
        .map(|lists| ClientData {
            graph: HeteroGraph::from_edges(global_train.nodes().clone(), lists),
            specialized: all_types.clone(),
        })
        .collect()
}

/// Mean pairwise total-variation distance between client edge-type
/// distributions — a scalar measure of how non-IID a partition is
/// (0 = identical distributions, →1 = disjoint supports).
pub fn non_iidness(clients: &[ClientData]) -> f64 {
    if clients.len() < 2 {
        return 0.0;
    }
    let dists: Vec<Vec<f64>> = clients
        .iter()
        .map(|c| c.graph.edge_type_distribution())
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..dists.len() {
        for j in i + 1..dists.len() {
            let tv: f64 = dists[i]
                .iter()
                .zip(&dists[j])
                .map(|(&p, &q)| (p - q).abs())
                .sum::<f64>()
                / 2.0;
            total += tv;
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Sample a client RNG seed stream from a partition seed (one sub-seed per
/// client, stable under reordering of calls).
pub fn client_seeds(base_seed: u64, num_clients: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(base_seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..num_clients).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{dblp_like, PresetOptions};

    fn small_global() -> HeteroGraph {
        dblp_like(&PresetOptions {
            scale: 0.002,
            seed: 1,
            ..Default::default()
        })
        .graph
    }

    #[test]
    fn non_iid_partition_shapes() {
        let g = small_global();
        let cfg = PartitionConfig::paper_defaults(8, g.schema().num_edge_types(), 7);
        let clients = partition_non_iid(&g, &cfg);
        assert_eq!(clients.len(), 8);
        for c in &clients {
            assert_eq!(c.specialized.len(), 2); // 5 types / 2
            assert!(c.num_edges() > 0);
            // specialised types should carry visibly more edges than the
            // r_b-sampled ones, relative to global counts
            for &t in &c.specialized {
                let local = c.graph.edges_of_type(t).len() as f64;
                let global = g.edges_of_type(t).len() as f64;
                assert!((local / global - 0.30).abs() < 0.02);
            }
        }
    }

    #[test]
    fn non_iid_is_more_biased_than_iid() {
        let g = small_global();
        let cfg = PartitionConfig::paper_defaults(8, g.schema().num_edge_types(), 7);
        let biased = partition_non_iid(&g, &cfg);
        let iid = partition_iid(&g, &cfg);
        let b = non_iidness(&biased);
        let i = non_iidness(&iid);
        assert!(
            b > i + 0.05,
            "non-IID partition ({b:.3}) should be measurably more biased than IID ({i:.3})"
        );
    }

    #[test]
    fn disjoint_partition_covers_all_edges_exactly_once() {
        let g = small_global();
        let clients = partition_disjoint(&g, 4, 3);
        let total: usize = clients.iter().map(|c| c.num_edges()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn partition_deterministic_by_seed() {
        let g = small_global();
        let cfg = PartitionConfig::paper_defaults(4, g.schema().num_edge_types(), 11);
        let a = partition_non_iid(&g, &cfg);
        let b = partition_non_iid(&g, &cfg);
        // Full edge-list equality, not just counts: same seed must reproduce
        // every client graph edge-for-edge, in the same order.
        let edges = |c: &ClientData| -> Vec<(u16, u32, u32)> {
            c.graph
                .schema()
                .edge_type_ids()
                .flat_map(|t| {
                    c.graph
                        .edges_of_type(t)
                        .iter()
                        .map(move |(s, d)| (t.0, s, d))
                })
                .collect()
        };
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.specialized, cb.specialized);
            assert_eq!(edges(ca), edges(cb));
        }
    }

    #[test]
    fn client_seeds_are_distinct() {
        let seeds = client_seeds(0, 16);
        let unique: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn single_client_non_iidness_is_zero() {
        let g = small_global();
        let cfg = PartitionConfig::paper_defaults(1, g.schema().num_edge_types(), 0);
        let clients = partition_non_iid(&g, &cfg);
        assert_eq!(non_iidness(&clients), 0.0);
    }
}
