//! # fedda-data
//!
//! Synthetic heterograph datasets and federated partitioners for the FedDA
//! reproduction.
//!
//! The paper evaluates on the Amazon (GATNE electronics subset) and DBLP
//! (HNE ICDE subgraph) heterographs, which are not available offline. This
//! crate substitutes latent-factor synthetic graphs with the *same schemas*
//! and scalable sizes (see `DESIGN.md` §1 for the substitution argument):
//!
//! * [`latent`] — the generator: community-structured latents, per-edge-type
//!   affinity modulation, noisy projected features; link prediction on the
//!   result is learnable, which is what the FedDA-vs-FedAvg comparisons
//!   need;
//! * [`datasets`] — [`datasets::amazon_like`] and [`datasets::dblp_like`]
//!   presets (Table 1 schemas, paper-proportioned edge mixes);
//! * [`partition`] — the paper's §6.1 system synthesis: non-IID clients
//!   specialised in random edge-type subsets (`r_a = 0.3`, `r_b = 0.05`),
//!   plus IID and disjoint variants and a non-IIDness measure;
//! * [`stats`] — Table 1 statistics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod latent;
pub mod partition;
pub mod stats;

pub use datasets::{amazon_like, dblp_like, PresetOptions};
pub use latent::{generate, GeneratedGraph, LatentGraphConfig};
pub use partition::{
    client_seeds, non_iidness, partition_disjoint, partition_iid, partition_non_iid, ClientData,
    PartitionConfig,
};
pub use stats::DatasetStats;
