//! Latent-factor heterograph generator.
//!
//! Real heterographs (Amazon, DBLP) are unavailable offline, so experiments
//! run on synthetic graphs with the same schema and comparable statistics.
//! To make link prediction *learnable* — which the FedDA experiments need,
//! otherwise every framework scores 0.5 AUC and no ordering is visible — we
//! plant structure:
//!
//! 1. every node gets a latent vector `z_v` drawn from one of `k` Gaussian
//!    community centroids of its node type;
//! 2. an edge of type `t` prefers endpoint pairs with high affinity
//!    `z_u · (z_v ∘ r_t)` where `r_t` is a per-edge-type modulation vector
//!    (so different edge types favour different latent subspaces, giving
//!    the per-type signal FedDA's disentangled parameters key on);
//! 3. observed features are a random linear projection of `z_v` plus noise,
//!    so a GNN can recover the latent affinity from features + structure.
//!
//! Edges are sampled by a best-of-`k` candidate rule, which approximates
//! sampling proportional to `exp(affinity)` without quadratic cost.

use fedda_hetgraph::{EdgeList, EdgeTypeId, HeteroGraph, NodeStore, NodeTypeId, Schema};
use fedda_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration of the latent-factor generator.
#[derive(Clone, Debug)]
pub struct LatentGraphConfig {
    /// The heterograph schema to instantiate.
    pub schema: Schema,
    /// Node count per node type (parallel to the schema's node types).
    pub nodes_per_type: Vec<usize>,
    /// Edge count per edge type (parallel to the schema's edge types).
    pub edges_per_type: Vec<usize>,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Number of latent communities per node type.
    pub communities_per_type: usize,
    /// Standard deviation of node latents around their community centroid.
    pub within_community_std: f32,
    /// Observation noise added to projected features.
    pub feature_noise_std: f32,
    /// Candidates examined per edge draw; higher = stronger planted signal.
    pub candidates_per_edge: usize,
}

impl LatentGraphConfig {
    /// Reasonable defaults for a given schema and sizes.
    pub fn new(schema: Schema, nodes_per_type: Vec<usize>, edges_per_type: Vec<usize>) -> Self {
        assert_eq!(nodes_per_type.len(), schema.num_node_types());
        assert_eq!(edges_per_type.len(), schema.num_edge_types());
        Self {
            schema,
            nodes_per_type,
            edges_per_type,
            latent_dim: 8,
            communities_per_type: 4,
            within_community_std: 0.35,
            feature_noise_std: 0.1,
            candidates_per_edge: 8,
        }
    }
}

/// A generated heterograph together with the ground-truth latents (exposed
/// for tests that verify the planted signal).
pub struct GeneratedGraph {
    /// The generated heterograph.
    pub graph: HeteroGraph,
    /// Latent vector of each global node, row-major `[num_nodes, latent_dim]`.
    pub latents: Vec<f32>,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Per-edge-type modulation vectors, row-major `[num_edge_types, latent_dim]`.
    pub relation_mods: Vec<f32>,
    /// Ground-truth community of each global node (within its node type) —
    /// the planted labels for node-classification tasks.
    pub communities: Vec<u32>,
    /// Communities per node type (`communities[v] < communities_per_type`).
    pub communities_per_type: usize,
}

impl GeneratedGraph {
    /// Latent vector of one node.
    pub fn latent_of(&self, v: u32) -> &[f32] {
        &self.latents[v as usize * self.latent_dim..(v as usize + 1) * self.latent_dim]
    }

    /// Planted affinity of a candidate edge `(u, v)` of type `t`.
    pub fn affinity(&self, t: EdgeTypeId, u: u32, v: u32) -> f32 {
        let r = &self.relation_mods[t.index() * self.latent_dim..(t.index() + 1) * self.latent_dim];
        self.latent_of(u)
            .iter()
            .zip(self.latent_of(v))
            .zip(r)
            .map(|((&zu, &zv), &rt)| zu * zv * rt)
            .sum()
    }
}

/// Generate a heterograph from a latent-factor model. Deterministic given
/// the seed.
pub fn generate(config: &LatentGraphConfig, seed: u64) -> GeneratedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = config.schema.clone();
    let d = config.latent_dim;
    let total_nodes: usize = config.nodes_per_type.iter().sum();

    // 1. community centroids, then node latents
    let mut latents = vec![0.0f32; total_nodes * d];
    let mut communities = Vec::with_capacity(total_nodes);
    let mut global = 0usize;
    for (t, &count) in config.nodes_per_type.iter().enumerate() {
        let _ = t;
        let k = config.communities_per_type.max(1);
        let centroids = init::normal(&mut rng, k, d, 0.0, 1.0);
        for _ in 0..count {
            let c = rng.gen_range(0..k);
            communities.push(c as u32);
            for j in 0..d {
                let (n0, _) = init::box_muller(&mut rng);
                latents[global * d + j] = centroids.get(c, j) + config.within_community_std * n0;
            }
            global += 1;
        }
    }

    // 2. per-edge-type modulation vectors: sparse-ish ±1 patterns so types
    //    emphasise different latent coordinates.
    let n_et = schema.num_edge_types();
    let mut relation_mods = vec![0.0f32; n_et * d];
    for t in 0..n_et {
        for j in 0..d {
            relation_mods[t * d + j] = if rng.gen::<f32>() < 0.5 {
                0.0
            } else if rng.gen::<bool>() {
                1.0
            } else {
                -1.0
            };
        }
        // guarantee at least one active coordinate
        // fedda-lint: allow(float-eq, reason = "coordinates are assigned only the literals 0.0/1.0/-1.0 above; the check is exact by construction")
        if relation_mods[t * d..(t + 1) * d].iter().all(|&x| x == 0.0) {
            relation_mods[t * d + rng.gen_range(0..d)] = 1.0;
        }
    }

    // Precompute global id offsets per node type.
    let mut offsets = Vec::with_capacity(config.nodes_per_type.len());
    let mut acc = 0usize;
    for &c in &config.nodes_per_type {
        offsets.push(acc);
        acc += c;
    }

    let affinity = |t: usize, u: usize, v: usize| -> f32 {
        let r = &relation_mods[t * d..(t + 1) * d];
        latents[u * d..(u + 1) * d]
            .iter()
            .zip(&latents[v * d..(v + 1) * d])
            .zip(r)
            .map(|((&zu, &zv), &rt)| zu * zv * rt)
            .sum()
    };

    // 3. sample edges: uniform src, best-of-k dst by affinity.
    let mut edge_lists = Vec::with_capacity(n_et);
    for t in 0..n_et {
        let meta = schema.edge_type(EdgeTypeId(t as u16));
        let (st, dt) = (meta.src_type.index(), meta.dst_type.index());
        let (sn, dn) = (config.nodes_per_type[st], config.nodes_per_type[dt]);
        let mut list = EdgeList::new();
        if sn == 0 || dn == 0 {
            edge_lists.push(list);
            continue;
        }
        let target = config.edges_per_type[t];
        let k = config.candidates_per_edge.max(1);
        for _ in 0..target {
            let u = offsets[st] + rng.gen_range(0..sn);
            let mut best = offsets[dt] + rng.gen_range(0..dn);
            let mut best_aff = affinity(t, u, best);
            for _ in 1..k {
                let cand = offsets[dt] + rng.gen_range(0..dn);
                if cand == u {
                    continue;
                }
                let a = affinity(t, u, cand);
                if a > best_aff {
                    best = cand;
                    best_aff = a;
                }
            }
            if best == u {
                // avoid degenerate self-edges on same-type relations
                best = offsets[dt] + (best - offsets[dt] + 1) % dn;
            }
            list.push(u as u32, best as u32);
        }
        edge_lists.push(list);
    }

    // 4. observed features: per-type random projection of latents + noise.
    let mut features = Vec::with_capacity(schema.num_node_types());
    for (t, &count) in config.nodes_per_type.iter().enumerate() {
        let fd = schema.node_type(NodeTypeId(t as u16)).feat_dim;
        let proj = init::normal(&mut rng, d, fd, 0.0, 1.0 / (d as f32).sqrt());
        let mut feats = vec![0.0f32; count * fd];
        for i in 0..count {
            let z = &latents[(offsets[t] + i) * d..(offsets[t] + i + 1) * d];
            for c in 0..fd {
                let mut v = 0.0f32;
                for (j, &zj) in z.iter().enumerate() {
                    v += zj * proj.get(j, c);
                }
                let (n0, _) = init::box_muller(&mut rng);
                feats[i * fd + c] = v + config.feature_noise_std * n0;
            }
        }
        features.push(feats);
    }

    let store = Arc::new(NodeStore::new(schema, &config.nodes_per_type, features));
    let graph = HeteroGraph::from_edges(store, edge_lists);
    GeneratedGraph {
        graph,
        latents,
        latent_dim: d,
        relation_mods,
        communities,
        communities_per_type: config.communities_per_type.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LatentGraphConfig {
        let mut s = Schema::new();
        let a = s.add_node_type("a", 6);
        let b = s.add_node_type("b", 4);
        s.add_edge_type("ab", a, b, false);
        s.add_edge_type("aa", a, a, true);
        LatentGraphConfig::new(s, vec![40, 30], vec![120, 80])
    }

    #[test]
    fn generates_requested_sizes() {
        let g = generate(&small_config(), 11);
        assert_eq!(g.graph.num_nodes(), 70);
        assert_eq!(g.graph.edge_counts(), vec![120, 80]);
        assert_eq!(g.latents.len(), 70 * 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = small_config();
        let g1 = generate(&c, 5);
        let g2 = generate(&c, 5);
        assert_eq!(
            g1.graph.edges_of_type(EdgeTypeId(0)),
            g2.graph.edges_of_type(EdgeTypeId(0))
        );
        assert_eq!(g1.latents, g2.latents);
        let g3 = generate(&c, 6);
        assert_ne!(
            g1.graph.edges_of_type(EdgeTypeId(0)),
            g3.graph.edges_of_type(EdgeTypeId(0))
        );
    }

    #[test]
    fn planted_signal_real_edges_beat_random_pairs() {
        let c = small_config();
        let g = generate(&c, 3);
        let mut rng = StdRng::seed_from_u64(99);
        for t in [EdgeTypeId(0), EdgeTypeId(1)] {
            let list = g.graph.edges_of_type(t);
            let pos: f32 =
                list.iter().map(|(u, v)| g.affinity(t, u, v)).sum::<f32>() / list.len() as f32;
            let dst_type = g.graph.schema().edge_type(t).dst_type;
            let dst_nodes = g.graph.nodes().nodes_of_type(dst_type);
            let neg: f32 = list
                .iter()
                .map(|(u, _)| {
                    let v = dst_nodes[rng.gen_range(0..dst_nodes.len())];
                    g.affinity(t, u, v)
                })
                .sum::<f32>()
                / list.len() as f32;
            assert!(
                pos > neg + 0.1,
                "edge type {t:?}: planted signal too weak (pos {pos} vs neg {neg})"
            );
        }
    }

    #[test]
    fn edge_signatures_respected() {
        let g = generate(&small_config(), 7);
        // from_edges would have panicked otherwise, but assert explicitly:
        for (u, v) in g.graph.edges_of_type(EdgeTypeId(0)).iter() {
            assert_eq!(g.graph.nodes().type_of(u).index(), 0);
            assert_eq!(g.graph.nodes().type_of(v).index(), 1);
        }
    }

    #[test]
    fn features_are_finite() {
        let g = generate(&small_config(), 13);
        for t in g.graph.schema().node_type_ids() {
            assert!(g
                .graph
                .nodes()
                .features_of_type(t)
                .iter()
                .all(|x| x.is_finite()));
        }
    }
}
