//! Property-based tests for heterograph invariants.

use fedda_hetgraph::{split, EdgeList, EdgeTypeId, HeteroGraph, LinkSampler, NodeStore, Schema};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Random two-type heterograph with a directed a→b type and a symmetric a–a
/// type.
fn random_graph(na: usize, nb: usize, n_ab: usize, n_aa: usize, seed: u64) -> HeteroGraph {
    let mut s = Schema::new();
    let a = s.add_node_type("a", 2);
    let b = s.add_node_type("b", 2);
    s.add_edge_type("ab", a, b, false);
    s.add_edge_type("aa", a, a, true);
    let store = Arc::new(NodeStore::new(
        s,
        &[na, nb],
        vec![vec![0.0; na * 2], vec![0.0; nb * 2]],
    ));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ab = EdgeList::new();
    for _ in 0..n_ab {
        ab.push(
            rng.gen_range(0..na) as u32,
            (na + rng.gen_range(0..nb)) as u32,
        );
    }
    let mut aa = EdgeList::new();
    for _ in 0..n_aa {
        aa.push(rng.gen_range(0..na) as u32, rng.gen_range(0..na) as u32);
    }
    HeteroGraph::from_edges(store, vec![ab, aa])
}

proptest! {
    #[test]
    fn split_conserves_edge_count(
        na in 2usize..12, nb in 2usize..12,
        n_ab in 0usize..40, n_aa in 0usize..40,
        seed in any::<u64>(), frac in 0.0f64..0.9,
    ) {
        let g = random_graph(na, nb, n_ab, n_aa, seed);
        let split = split::split_edges(&g, frac, &mut StdRng::seed_from_u64(seed ^ 1));
        prop_assert_eq!(split.train.num_edges() + split.test.num_edges(), g.num_edges());
        // splits respect per-type counts too
        for t in 0..2u16 {
            let t = EdgeTypeId(t);
            prop_assert_eq!(
                split.train.edges_of_type(t).len() + split.test.edges_of_type(t).len(),
                g.edges_of_type(t).len()
            );
        }
    }

    #[test]
    fn edge_type_distribution_is_a_distribution(
        na in 2usize..12, nb in 2usize..12,
        n_ab in 1usize..40, n_aa in 0usize..40,
        seed in any::<u64>(),
    ) {
        let g = random_graph(na, nb, n_ab, n_aa, seed);
        let dist = g.edge_type_distribution();
        let sum: f64 = dist.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn message_edges_count_matches_formula(
        na in 2usize..10, nb in 2usize..10,
        n_ab in 0usize..30, n_aa in 0usize..30,
        seed in any::<u64>(), self_loops in any::<bool>(),
    ) {
        let g = random_graph(na, nb, n_ab, n_aa, seed);
        let me = g.message_edges(self_loops);
        let self_edges = g
            .edges_of_type(EdgeTypeId(1))
            .iter()
            .filter(|&(s, d)| s == d)
            .count();
        let expected = n_ab + 2 * n_aa - self_edges
            + if self_loops { na + nb } else { 0 };
        prop_assert_eq!(me.len(), expected);
        // every message's endpoints are in range
        let n = g.num_nodes() as u32;
        prop_assert!(me.src.iter().all(|&s| s < n));
        prop_assert!(me.dst.iter().all(|&d| d < n));
    }

    #[test]
    fn negatives_always_respect_dst_type(
        na in 2usize..10, nb in 2usize..10,
        n_ab in 1usize..20, seed in any::<u64>(),
    ) {
        let g = random_graph(na, nb, n_ab, 5, seed);
        let sampler = LinkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let pos = sampler.all_positives();
        let all = sampler.with_negatives(&pos, 2, &mut rng);
        for e in all.iter().filter(|e| !e.label) {
            let expect = g.schema().edge_type(e.etype).dst_type;
            prop_assert_eq!(g.nodes().type_of(e.dst), expect);
        }
    }

    #[test]
    fn in_degrees_sum_to_message_count(
        na in 2usize..10, nb in 2usize..10,
        n_ab in 0usize..30, n_aa in 0usize..30,
        seed in any::<u64>(),
    ) {
        let g = random_graph(na, nb, n_ab, n_aa, seed);
        let me = g.message_edges(true);
        let deg = g.message_in_degrees(true);
        prop_assert_eq!(deg.iter().map(|&d| d as usize).sum::<usize>(), me.len());
    }
}
