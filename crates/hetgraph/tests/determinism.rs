//! Same-seed regression tests for the paths fedda-lint's `hash-collection`
//! rule protects: metapath composition and link sampling must reproduce
//! their output element-for-element across repeated runs with the same seed.
//! Before the `BTreeSet` conversions these iterated `HashSet`s, which is
//! order-stable only by accident of allocation.

use fedda_hetgraph::metapath::compose_metapath;
use fedda_hetgraph::{EdgeList, EdgeTypeId, HeteroGraph, LinkSampler, NodeStore, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Two-type graph with a directed a→b type and a symmetric a–a type.
fn demo_graph(seed: u64) -> HeteroGraph {
    let (na, nb) = (14, 9);
    let mut s = Schema::new();
    let a = s.add_node_type("a", 2);
    let b = s.add_node_type("b", 2);
    s.add_edge_type("ab", a, b, false);
    s.add_edge_type("aa", a, a, true);
    let store = Arc::new(NodeStore::new(
        s,
        &[na, nb],
        vec![vec![0.0; na * 2], vec![0.0; nb * 2]],
    ));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ab = EdgeList::new();
    for _ in 0..40 {
        ab.push(
            rng.gen_range(0..na) as u32,
            (na + rng.gen_range(0..nb)) as u32,
        );
    }
    let mut aa = EdgeList::new();
    for _ in 0..25 {
        aa.push(rng.gen_range(0..na) as u32, rng.gen_range(0..na) as u32);
    }
    HeteroGraph::from_edges(store, vec![ab, aa])
}

fn edge_vec(edges: &EdgeList) -> Vec<(u32, u32)> {
    edges.iter().collect()
}

#[test]
fn metapath_composition_is_reproducible_and_sorted() {
    let g = demo_graph(7);
    // a -aa- a -ab-> b: a second-order relation through the symmetric type.
    let path = [EdgeTypeId(1), EdgeTypeId(0)];
    let first = compose_metapath(&g, &path, false).expect("valid metapath");
    for _ in 0..5 {
        let again = compose_metapath(&g, &path, false).expect("valid metapath");
        assert_eq!(edge_vec(&first), edge_vec(&again));
    }
    // The output order is part of the contract: sorted (src, dst) pairs.
    let mut sorted = edge_vec(&first);
    sorted.sort_unstable();
    assert_eq!(edge_vec(&first), sorted);
}

#[test]
fn negative_sampling_is_reproducible_by_seed() {
    let g = demo_graph(11);
    let sampler = LinkSampler::new(&g);
    let positives = sampler.all_positives();
    assert!(!positives.is_empty());
    let draw = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        sampler.with_negatives(&positives, 2, &mut rng)
    };
    let a = draw(3);
    let b = draw(3);
    assert_eq!(a, b, "same seed must reproduce the exact negative set");
    let c = draw(4);
    assert_ne!(a, c, "different seeds should explore different negatives");
}

#[test]
fn batch_shuffling_is_reproducible_by_seed() {
    let g = demo_graph(13);
    let sampler = LinkSampler::new(&g);
    let mut ex_a = sampler.all_positives();
    let mut ex_b = ex_a.clone();
    let batches_a = LinkSampler::batches(&mut ex_a, 8, &mut StdRng::seed_from_u64(21));
    let batches_b = LinkSampler::batches(&mut ex_b, 8, &mut StdRng::seed_from_u64(21));
    assert_eq!(batches_a, batches_b);
}
