//! Heterograph (de)serialization.
//!
//! A [`GraphDoc`] is a self-contained, JSON-serializable snapshot of a
//! heterograph — schema, per-type node counts and features, and per-type
//! edge lists. It exists so synthesized federations can be saved, shipped
//! between machines, and reloaded bit-identically (the experiment harness
//! uses it to archive the exact graphs behind reported numbers).

use crate::graph::{EdgeList, HeteroGraph, NodeStore};
use crate::schema::{EdgeTypeId, NodeTypeId, Schema};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Serializable node-type description.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeTypeDoc {
    /// Type name.
    pub name: String,
    /// Feature dimensionality.
    pub feat_dim: usize,
    /// Number of nodes of this type.
    pub count: usize,
    /// Row-major features, `count × feat_dim`.
    pub features: Vec<f32>,
}

/// Serializable edge-type description with its edges.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeTypeDoc {
    /// Type name.
    pub name: String,
    /// Source node-type index.
    pub src_type: usize,
    /// Destination node-type index.
    pub dst_type: usize,
    /// Whether the relation is symmetric.
    pub symmetric: bool,
    /// Source endpoints (global node ids).
    pub src: Vec<u32>,
    /// Destination endpoints (global node ids).
    pub dst: Vec<u32>,
}

/// A self-contained heterograph snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphDoc {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Node types in schema order.
    pub node_types: Vec<NodeTypeDoc>,
    /// Edge types (with edges) in schema order.
    pub edge_types: Vec<EdgeTypeDoc>,
}

/// Pull a required field out of a JSON object.
fn req<'a>(
    v: &'a serde_json::Value,
    name: &str,
) -> Result<&'a serde_json::Value, serde_json::Error> {
    v.get(name)
        .ok_or_else(|| serde_json::Error::custom(format!("missing field `{name}`")))
}

// The workspace's `serde` shim has no derive macros, so the document types
// implement the (single-method) trait pair by hand.

impl Serialize for NodeTypeDoc {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("name".to_string(), self.name.to_json_value()),
            ("feat_dim".to_string(), self.feat_dim.to_json_value()),
            ("count".to_string(), self.count.to_json_value()),
            ("features".to_string(), self.features.to_json_value()),
        ])
    }
}

impl Deserialize for NodeTypeDoc {
    fn from_json_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(Self {
            name: Deserialize::from_json_value(req(v, "name")?)?,
            feat_dim: Deserialize::from_json_value(req(v, "feat_dim")?)?,
            count: Deserialize::from_json_value(req(v, "count")?)?,
            features: Deserialize::from_json_value(req(v, "features")?)?,
        })
    }
}

impl Serialize for EdgeTypeDoc {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("name".to_string(), self.name.to_json_value()),
            ("src_type".to_string(), self.src_type.to_json_value()),
            ("dst_type".to_string(), self.dst_type.to_json_value()),
            ("symmetric".to_string(), self.symmetric.to_json_value()),
            ("src".to_string(), self.src.to_json_value()),
            ("dst".to_string(), self.dst.to_json_value()),
        ])
    }
}

impl Deserialize for EdgeTypeDoc {
    fn from_json_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(Self {
            name: Deserialize::from_json_value(req(v, "name")?)?,
            src_type: Deserialize::from_json_value(req(v, "src_type")?)?,
            dst_type: Deserialize::from_json_value(req(v, "dst_type")?)?,
            symmetric: Deserialize::from_json_value(req(v, "symmetric")?)?,
            src: Deserialize::from_json_value(req(v, "src")?)?,
            dst: Deserialize::from_json_value(req(v, "dst")?)?,
        })
    }
}

impl Serialize for GraphDoc {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("version".to_string(), self.version.to_json_value()),
            ("node_types".to_string(), self.node_types.to_json_value()),
            ("edge_types".to_string(), self.edge_types.to_json_value()),
        ])
    }
}

impl Deserialize for GraphDoc {
    fn from_json_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(Self {
            version: Deserialize::from_json_value(req(v, "version")?)?,
            node_types: Deserialize::from_json_value(req(v, "node_types")?)?,
            edge_types: Deserialize::from_json_value(req(v, "edge_types")?)?,
        })
    }
}

/// Errors from loading a [`GraphDoc`].
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// JSON parse error.
    Json(serde_json::Error),
    /// Structurally invalid document.
    Invalid(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Invalid(msg) => write!(f, "invalid graph document: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

impl GraphDoc {
    /// Current format version.
    pub const VERSION: u32 = 1;

    /// Snapshot a heterograph.
    pub fn from_graph(graph: &HeteroGraph) -> Self {
        let schema = graph.schema();
        let node_types = schema
            .node_type_ids()
            .map(|t| {
                let meta = schema.node_type(t);
                NodeTypeDoc {
                    name: meta.name.clone(),
                    feat_dim: meta.feat_dim,
                    count: graph.nodes().num_nodes_of_type(t),
                    features: graph.nodes().features_of_type(t).to_vec(),
                }
            })
            .collect();
        let edge_types = schema
            .edge_type_ids()
            .map(|t| {
                let meta = schema.edge_type(t);
                let list = graph.edges_of_type(t);
                EdgeTypeDoc {
                    name: meta.name.clone(),
                    src_type: meta.src_type.index(),
                    dst_type: meta.dst_type.index(),
                    symmetric: meta.symmetric,
                    src: list.src.clone(),
                    dst: list.dst.clone(),
                }
            })
            .collect();
        Self {
            version: Self::VERSION,
            node_types,
            edge_types,
        }
    }

    /// Rebuild the heterograph. Validation (endpoint ranges, type
    /// signatures, feature lengths) happens in the underlying constructors.
    pub fn into_graph(self) -> Result<HeteroGraph, IoError> {
        if self.version != Self::VERSION {
            return Err(IoError::Invalid(format!(
                "unsupported version {} (expected {})",
                self.version,
                Self::VERSION
            )));
        }
        let mut schema = Schema::new();
        let mut counts = Vec::with_capacity(self.node_types.len());
        let mut features = Vec::with_capacity(self.node_types.len());
        for nt in &self.node_types {
            if nt.features.len() != nt.count * nt.feat_dim {
                return Err(IoError::Invalid(format!(
                    "node type '{}': {} feature values for {}x{}",
                    nt.name,
                    nt.features.len(),
                    nt.count,
                    nt.feat_dim
                )));
            }
            schema.add_node_type(nt.name.clone(), nt.feat_dim);
            counts.push(nt.count);
        }
        for nt in self.node_types {
            features.push(nt.features);
        }
        let n_node_types = counts.len();
        let mut lists = Vec::with_capacity(self.edge_types.len());
        for et in &self.edge_types {
            if et.src_type >= n_node_types || et.dst_type >= n_node_types {
                return Err(IoError::Invalid(format!(
                    "edge type '{}': endpoint type out of range",
                    et.name
                )));
            }
            if et.src.len() != et.dst.len() {
                return Err(IoError::Invalid(format!(
                    "edge type '{}': src/dst length mismatch",
                    et.name
                )));
            }
            schema.add_edge_type(
                et.name.clone(),
                NodeTypeId(et.src_type as u16),
                NodeTypeId(et.dst_type as u16),
                et.symmetric,
            );
            lists.push(EdgeList {
                src: et.src.clone(),
                dst: et.dst.clone(),
            });
        }
        let store = Arc::new(NodeStore::new(schema, &counts, features));
        // Range/type validation:
        let n = store.num_nodes() as u32;
        for (t, list) in lists.iter().enumerate() {
            for (s, d) in list.iter() {
                if s >= n || d >= n {
                    return Err(IoError::Invalid(format!(
                        "edge type {t}: endpoint out of range"
                    )));
                }
                let meta = store.schema().edge_type(EdgeTypeId(t as u16));
                if store.type_of(s) != meta.src_type || store.type_of(d) != meta.dst_type {
                    return Err(IoError::Invalid(format!(
                        "edge type {t}: endpoint node-type mismatch"
                    )));
                }
            }
        }
        Ok(HeteroGraph::from_edges(store, lists))
    }
}

/// Save a heterograph as pretty-printed JSON.
pub fn save_json(graph: &HeteroGraph, path: &Path) -> Result<(), IoError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let doc = GraphDoc::from_graph(graph);
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(std::io::BufWriter::new(file), &doc)?;
    Ok(())
}

/// Load a heterograph from JSON.
pub fn load_json(path: &Path) -> Result<HeteroGraph, IoError> {
    let file = std::fs::File::open(path)?;
    let doc: GraphDoc = serde_json::from_reader(std::io::BufReader::new(file))?;
    doc.into_graph()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> HeteroGraph {
        let mut schema = Schema::new();
        let a = schema.add_node_type("a", 2);
        let b = schema.add_node_type("b", 1);
        schema.add_edge_type("ab", a, b, false);
        schema.add_edge_type("aa", a, a, true);
        let store = Arc::new(NodeStore::new(
            schema,
            &[3, 2],
            vec![vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![7.0, 8.0]],
        ));
        let mut ab = EdgeList::new();
        ab.push(0, 3);
        ab.push(2, 4);
        let mut aa = EdgeList::new();
        aa.push(0, 1);
        HeteroGraph::from_edges(store, vec![ab, aa])
    }

    #[test]
    fn doc_roundtrip_preserves_everything() {
        let g = sample_graph();
        let doc = GraphDoc::from_graph(&g);
        let restored = doc.clone().into_graph().unwrap();
        assert_eq!(GraphDoc::from_graph(&restored), doc);
        assert_eq!(restored.num_nodes(), g.num_nodes());
        assert_eq!(restored.edge_counts(), g.edge_counts());
        assert_eq!(restored.nodes().features_of(1), g.nodes().features_of(1));
        assert_eq!(
            restored.schema().edge_type(EdgeTypeId(1)).symmetric,
            g.schema().edge_type(EdgeTypeId(1)).symmetric
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("fedda_hetgraph_io_test");
        let path = dir.join("graph.json");
        save_json(&g, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(GraphDoc::from_graph(&loaded), GraphDoc::from_graph(&g));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_documents_rejected() {
        let g = sample_graph();
        let mut doc = GraphDoc::from_graph(&g);
        doc.version = 99;
        assert!(matches!(doc.into_graph(), Err(IoError::Invalid(_))));

        let mut doc = GraphDoc::from_graph(&g);
        doc.node_types[0].features.pop();
        assert!(matches!(doc.into_graph(), Err(IoError::Invalid(_))));

        let mut doc = GraphDoc::from_graph(&g);
        doc.edge_types[0].src.push(999);
        doc.edge_types[0].dst.push(3);
        assert!(doc.into_graph().is_err());

        let mut doc = GraphDoc::from_graph(&g);
        doc.edge_types[0].src.push(0);
        assert!(matches!(doc.into_graph(), Err(IoError::Invalid(_))));
    }

    #[test]
    fn wrong_endpoint_type_rejected() {
        let g = sample_graph();
        let mut doc = GraphDoc::from_graph(&g);
        // ab edge pointing at a type-a node
        doc.edge_types[0].src.push(0);
        doc.edge_types[0].dst.push(1);
        assert!(doc.into_graph().is_err());
    }
}
