//! Link-prediction sampling: positive edge batches and type-respecting
//! negative samples.
//!
//! Negative samples corrupt the destination endpoint of a positive edge with
//! a uniformly random node of the *same node type*, matching the standard
//! protocol for link prediction on heterographs (and the one Simple-HGN's
//! benchmark uses). An optional rejection step avoids sampling an existing
//! edge as a negative.

use crate::graph::{HeteroGraph, NodeId};
use crate::schema::EdgeTypeId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// One labelled example for the link-prediction loss/metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkExample {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge type being predicted.
    pub etype: EdgeTypeId,
    /// `true` for a real edge, `false` for a sampled negative.
    pub label: bool,
}

/// Draws positive/negative link examples from a heterograph.
pub struct LinkSampler<'g> {
    graph: &'g HeteroGraph,
    /// Existing edges as (etype, src, dst) for negative rejection.
    existing: BTreeSet<(u16, NodeId, NodeId)>,
}

impl<'g> LinkSampler<'g> {
    /// Build a sampler; indexes the graph's edges for negative rejection.
    pub fn new(graph: &'g HeteroGraph) -> Self {
        let mut existing = BTreeSet::new();
        for t in graph.schema().edge_type_ids() {
            for (s, d) in graph.edges_of_type(t).iter() {
                existing.insert((t.0, s, d));
            }
        }
        Self { graph, existing }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &HeteroGraph {
        self.graph
    }

    /// Sample one negative for a positive edge by corrupting its destination
    /// with a random node of the same type. Falls back to an unchecked
    /// corruption after a bounded number of rejections (dense tiny graphs).
    pub fn corrupt_dst<R: Rng + ?Sized>(
        &self,
        etype: EdgeTypeId,
        src: NodeId,
        rng: &mut R,
    ) -> NodeId {
        let dst_type = self.graph.schema().edge_type(etype).dst_type;
        let candidates = self.graph.nodes().nodes_of_type(dst_type);
        debug_assert!(
            !candidates.is_empty(),
            "no candidate destinations for negatives"
        );
        for _ in 0..32 {
            let d = candidates[rng.gen_range(0..candidates.len())];
            if !self.existing.contains(&(etype.0, src, d)) {
                return d;
            }
        }
        candidates[rng.gen_range(0..candidates.len())]
    }

    /// All positive examples of the graph (every edge of every type).
    pub fn all_positives(&self) -> Vec<LinkExample> {
        let mut out = Vec::with_capacity(self.graph.num_edges());
        for t in self.graph.schema().edge_type_ids() {
            for (s, d) in self.graph.edges_of_type(t).iter() {
                out.push(LinkExample {
                    src: s,
                    dst: d,
                    etype: t,
                    label: true,
                });
            }
        }
        out
    }

    /// Positives restricted to the given edge types (a biased client's
    /// "specialised" downstream task trains only on the types it holds).
    pub fn positives_of_types(&self, types: &[EdgeTypeId]) -> Vec<LinkExample> {
        let mut out = Vec::new();
        for &t in types {
            for (s, d) in self.graph.edges_of_type(t).iter() {
                out.push(LinkExample {
                    src: s,
                    dst: d,
                    etype: t,
                    label: true,
                });
            }
        }
        out
    }

    /// Pair each positive with `negatives_per_positive` corrupted negatives.
    pub fn with_negatives<R: Rng + ?Sized>(
        &self,
        positives: &[LinkExample],
        negatives_per_positive: usize,
        rng: &mut R,
    ) -> Vec<LinkExample> {
        let mut out = Vec::with_capacity(positives.len() * (1 + negatives_per_positive));
        for &p in positives {
            out.push(p);
            for _ in 0..negatives_per_positive {
                let neg = self.corrupt_dst(p.etype, p.src, rng);
                out.push(LinkExample {
                    src: p.src,
                    dst: neg,
                    etype: p.etype,
                    label: false,
                });
            }
        }
        out
    }

    /// Shuffle examples and yield mini-batches of at most `batch_size`.
    pub fn batches<R: Rng + ?Sized>(
        examples: &mut [LinkExample],
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<Vec<LinkExample>> {
        assert!(batch_size > 0, "batch_size must be positive");
        examples.shuffle(rng);
        examples.chunks(batch_size).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeList, NodeStore};
    use crate::schema::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn bipartite() -> HeteroGraph {
        let mut s = Schema::new();
        let a = s.add_node_type("a", 1);
        let b = s.add_node_type("b", 1);
        s.add_edge_type("ab", a, b, false);
        s.add_edge_type("aa", a, a, true);
        let store = Arc::new(NodeStore::new(s, &[4, 6], vec![vec![0.0; 4], vec![0.0; 6]]));
        // type-a: global 0..4, type-b: global 4..10
        let mut ab = EdgeList::new();
        ab.push(0, 4);
        ab.push(1, 5);
        ab.push(2, 6);
        let mut aa = EdgeList::new();
        aa.push(0, 1);
        HeteroGraph::from_edges(store, vec![ab, aa])
    }

    #[test]
    fn corrupt_dst_respects_node_type() {
        let g = bipartite();
        let sampler = LinkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let d = sampler.corrupt_dst(EdgeTypeId(0), 0, &mut rng);
            assert!((4..10).contains(&d), "negative {d} is not a type-b node");
            assert_ne!(d, 4, "existing edge (0,4) must be rejected");
        }
        for _ in 0..50 {
            let d = sampler.corrupt_dst(EdgeTypeId(1), 0, &mut rng);
            assert!((0..4).contains(&d), "negative {d} is not a type-a node");
        }
    }

    #[test]
    fn all_positives_enumerates_every_edge() {
        let g = bipartite();
        let sampler = LinkSampler::new(&g);
        let pos = sampler.all_positives();
        assert_eq!(pos.len(), 4);
        assert!(pos.iter().all(|p| p.label));
    }

    #[test]
    fn positives_of_types_filters() {
        let g = bipartite();
        let sampler = LinkSampler::new(&g);
        let pos = sampler.positives_of_types(&[EdgeTypeId(1)]);
        assert_eq!(pos.len(), 1);
        assert_eq!(pos[0].etype, EdgeTypeId(1));
    }

    #[test]
    fn with_negatives_interleaves_correct_ratio() {
        let g = bipartite();
        let sampler = LinkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let pos = sampler.all_positives();
        let examples = sampler.with_negatives(&pos, 3, &mut rng);
        assert_eq!(examples.len(), 4 * 4);
        let n_pos = examples.iter().filter(|e| e.label).count();
        assert_eq!(n_pos, 4);
    }

    #[test]
    fn batches_cover_all_examples() {
        let g = bipartite();
        let sampler = LinkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let pos = sampler.all_positives();
        let mut examples = sampler.with_negatives(&pos, 1, &mut rng);
        let total = examples.len();
        let batches = LinkSampler::batches(&mut examples, 3, &mut rng);
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), total);
        assert!(batches.iter().all(|b| b.len() <= 3));
    }
}
