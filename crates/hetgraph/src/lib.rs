//! # fedda-hetgraph
//!
//! Heterogeneous graph storage and sampling for the FedDA reproduction.
//!
//! A heterograph `H = {V, E, φ, ψ, X}` (paper §3) has multi-typed nodes with
//! per-type feature spaces and multi-typed edges whose types are tied to
//! their endpoint node types. This crate provides:
//!
//! * [`Schema`] — the node/edge type universe;
//! * [`NodeStore`] — the immutable node universe (types + features), shared
//!   via `Arc` between the global graph and every client sub-heterograph so
//!   node identities stay aligned across the federation;
//! * [`HeteroGraph`] — per-edge-type edge lists over a `NodeStore`, with
//!   flattened [`MessageEdges`] views for GNN message passing (symmetric
//!   relations are mirrored, self-loops get a pseudo edge type);
//! * [`split`] — stratified train/test edge splits and fractional edge
//!   sampling (the building blocks of the paper's system synthesis);
//! * [`LinkSampler`] — positive/negative link-prediction examples with
//!   type-respecting negative corruption;
//! * [`io`] — JSON snapshots ([`io::GraphDoc`]) so synthesized federations
//!   can be archived and reloaded bit-identically;
//! * [`metapath`] — higher-order relation composition (the relational-join
//!   primitive behind metapath-based heterograph models).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod graph;
pub mod io;
pub mod metapath;
mod sampling;
mod schema;
pub mod split;

pub use graph::{EdgeList, HeteroGraph, MessageEdges, NodeId, NodeStore};
pub use sampling::{LinkExample, LinkSampler};
pub use schema::{EdgeTypeId, EdgeTypeMeta, NodeTypeId, NodeTypeMeta, Schema};
