//! Schema types for heterogeneous graphs: multi-typed nodes and links.
//!
//! Following the paper's formulation (§3), a heterograph
//! `H = {V, E, φ, ψ, X}` associates every node with a node type `φ(v)` and
//! every edge with an edge type `ψ(e)` determined by the types of its two
//! endpoints. The [`Schema`] is the static description of those type
//! universes; a [`crate::HeteroGraph`] instantiates it.

/// Index of a node type within a [`Schema`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeTypeId(pub u16);

/// Index of an edge type within a [`Schema`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeTypeId(pub u16);

impl NodeTypeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeTypeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of one node type.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeTypeMeta {
    /// Human-readable name, e.g. `"author"`.
    pub name: String,
    /// Dimensionality of this type's raw feature vectors (`d_{φ(v)}`).
    pub feat_dim: usize,
}

/// Static description of one edge type, tied to the node types at its two
/// ends. The paper restricts heterographs to at most one edge type per
/// ordered endpoint-type pair; we do not need that restriction and allow
/// several.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeTypeMeta {
    /// Human-readable name, e.g. `"co-purchase"`.
    pub name: String,
    /// Node type of the source endpoint.
    pub src_type: NodeTypeId,
    /// Node type of the destination endpoint.
    pub dst_type: NodeTypeId,
    /// Whether the relation is symmetric (co-view, co-author, …); symmetric
    /// relations get reverse copies when building message-passing edges.
    pub symmetric: bool,
}

/// The type universe of a heterograph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schema {
    node_types: Vec<NodeTypeMeta>,
    edge_types: Vec<EdgeTypeMeta>,
}

impl Schema {
    /// An empty schema; add types with [`Schema::add_node_type`] and
    /// [`Schema::add_edge_type`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a node type; returns its id.
    pub fn add_node_type(&mut self, name: impl Into<String>, feat_dim: usize) -> NodeTypeId {
        // fedda-lint: allow(panic-path, reason = "registration-time capacity bound; >65535 node types is a programming error, not a data condition")
        let id = NodeTypeId(u16::try_from(self.node_types.len()).expect("too many node types"));
        self.node_types.push(NodeTypeMeta {
            name: name.into(),
            feat_dim,
        });
        id
    }

    /// Register an edge type; returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint type is unknown.
    pub fn add_edge_type(
        &mut self,
        name: impl Into<String>,
        src_type: NodeTypeId,
        dst_type: NodeTypeId,
        symmetric: bool,
    ) -> EdgeTypeId {
        assert!(
            src_type.index() < self.node_types.len(),
            "unknown src node type"
        );
        assert!(
            dst_type.index() < self.node_types.len(),
            "unknown dst node type"
        );
        // fedda-lint: allow(panic-path, reason = "registration-time capacity bound; >65535 edge types is a programming error, not a data condition")
        let id = EdgeTypeId(u16::try_from(self.edge_types.len()).expect("too many edge types"));
        self.edge_types.push(EdgeTypeMeta {
            name: name.into(),
            src_type,
            dst_type,
            symmetric,
        });
        id
    }

    /// Number of node types.
    pub fn num_node_types(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edge types.
    pub fn num_edge_types(&self) -> usize {
        self.edge_types.len()
    }

    /// Metadata of a node type.
    pub fn node_type(&self, id: NodeTypeId) -> &NodeTypeMeta {
        &self.node_types[id.index()]
    }

    /// Metadata of an edge type.
    pub fn edge_type(&self, id: EdgeTypeId) -> &EdgeTypeMeta {
        &self.edge_types[id.index()]
    }

    /// All node type ids.
    pub fn node_type_ids(&self) -> impl Iterator<Item = NodeTypeId> {
        (0..self.node_types.len()).map(|i| NodeTypeId(i as u16))
    }

    /// All edge type ids.
    pub fn edge_type_ids(&self) -> impl Iterator<Item = EdgeTypeId> {
        (0..self.edge_types.len()).map(|i| EdgeTypeId(i as u16))
    }

    /// Find a node type by name.
    pub fn node_type_by_name(&self, name: &str) -> Option<NodeTypeId> {
        self.node_types
            .iter()
            .position(|m| m.name == name)
            .map(|i| NodeTypeId(i as u16))
    }

    /// Find an edge type by name.
    pub fn edge_type_by_name(&self, name: &str) -> Option<EdgeTypeId> {
        self.edge_types
            .iter()
            .position(|m| m.name == name)
            .map(|i| EdgeTypeId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_clinic_like_schema() {
        let mut s = Schema::new();
        let patient = s.add_node_type("patient", 32);
        let drug = s.add_node_type("drug", 16);
        let prescribes = s.add_edge_type("prescribed", patient, drug, false);
        let knows = s.add_edge_type("interacts", patient, patient, true);
        assert_eq!(s.num_node_types(), 2);
        assert_eq!(s.num_edge_types(), 2);
        assert_eq!(s.node_type(patient).feat_dim, 32);
        assert_eq!(s.edge_type(prescribes).dst_type, drug);
        assert!(s.edge_type(knows).symmetric);
        assert_eq!(s.node_type_by_name("drug"), Some(drug));
        assert_eq!(s.edge_type_by_name("interacts"), Some(knows));
        assert_eq!(s.node_type_by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "unknown src node type")]
    fn edge_type_requires_known_endpoints() {
        let mut s = Schema::new();
        let a = s.add_node_type("a", 4);
        let _ = s.add_edge_type("bad", NodeTypeId(5), a, false);
    }
}
