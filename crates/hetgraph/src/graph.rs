//! The heterograph container: typed nodes with per-type features and typed
//! edge lists, plus the flattened message-passing views the GNN layer
//! consumes.

use crate::schema::{EdgeTypeId, NodeTypeId, Schema};
use std::sync::Arc;

/// Global node index within a [`NodeStore`].
pub type NodeId = u32;

/// Immutable node universe: types and features. Shared (via `Arc`) between
/// the global graph and every client sub-heterograph so node identities stay
/// aligned across the federation without copying features.
#[derive(Debug)]
pub struct NodeStore {
    schema: Schema,
    /// Node type of each global node.
    node_type: Vec<NodeTypeId>,
    /// Row of each node inside its type's feature matrix.
    local_index: Vec<u32>,
    /// Per node type: flat row-major features `[count_t, feat_dim_t]`.
    features: Vec<Vec<f32>>,
    /// Per node type: global ids in local order.
    nodes_of_type: Vec<Vec<NodeId>>,
}

impl NodeStore {
    /// Build a node store from per-type node counts and features.
    ///
    /// `features[t]` must have length `counts[t] * schema.node_type(t).feat_dim`.
    pub fn new(schema: Schema, counts: &[usize], features: Vec<Vec<f32>>) -> Self {
        assert_eq!(
            counts.len(),
            schema.num_node_types(),
            "counts per node type"
        );
        assert_eq!(
            features.len(),
            schema.num_node_types(),
            "features per node type"
        );
        for (t, (&c, f)) in counts.iter().zip(&features).enumerate() {
            let d = schema.node_type(NodeTypeId(t as u16)).feat_dim;
            assert_eq!(f.len(), c * d, "feature length for node type {t}");
        }
        let total: usize = counts.iter().sum();
        let mut node_type = Vec::with_capacity(total);
        let mut local_index = Vec::with_capacity(total);
        let mut nodes_of_type: Vec<Vec<NodeId>> = vec![Vec::new(); counts.len()];
        for (t, &c) in counts.iter().enumerate() {
            for i in 0..c {
                let gid = node_type.len() as NodeId;
                node_type.push(NodeTypeId(t as u16));
                local_index.push(i as u32);
                nodes_of_type[t].push(gid);
            }
        }
        Self {
            schema,
            node_type,
            local_index,
            features,
            nodes_of_type,
        }
    }

    /// The schema this store instantiates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total node count across all types.
    pub fn num_nodes(&self) -> usize {
        self.node_type.len()
    }

    /// Node count of one type.
    pub fn num_nodes_of_type(&self, t: NodeTypeId) -> usize {
        self.nodes_of_type[t.index()].len()
    }

    /// Type of a node.
    pub fn type_of(&self, v: NodeId) -> NodeTypeId {
        self.node_type[v as usize]
    }

    /// Row index of `v` within its type's feature matrix.
    pub fn local_index(&self, v: NodeId) -> u32 {
        self.local_index[v as usize]
    }

    /// Global ids of all nodes of a type, in local order.
    pub fn nodes_of_type(&self, t: NodeTypeId) -> &[NodeId] {
        &self.nodes_of_type[t.index()]
    }

    /// Flat row-major feature matrix of one node type.
    pub fn features_of_type(&self, t: NodeTypeId) -> &[f32] {
        &self.features[t.index()]
    }

    /// Feature vector of a single node.
    pub fn features_of(&self, v: NodeId) -> &[f32] {
        let t = self.type_of(v);
        let d = self.schema.node_type(t).feat_dim;
        let li = self.local_index(v) as usize;
        &self.features[t.index()][li * d..(li + 1) * d]
    }
}

/// A typed edge list: parallel `src`/`dst` arrays for one edge type.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeList {
    /// Source endpoints.
    pub src: Vec<NodeId>,
    /// Destination endpoints.
    pub dst: Vec<NodeId>,
}

impl EdgeList {
    /// Empty edge list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when there are no edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Append one edge.
    pub fn push(&mut self, src: NodeId, dst: NodeId) {
        self.src.push(src);
        self.dst.push(dst);
    }

    /// Iterate `(src, dst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }
}

/// A heterogeneous graph: a shared node universe plus per-edge-type edge
/// lists. Client sub-heterographs are `HeteroGraph`s over the same
/// [`NodeStore`] with different (typically overlapping) edge subsets.
#[derive(Clone, Debug)]
pub struct HeteroGraph {
    nodes: Arc<NodeStore>,
    edges: Vec<EdgeList>,
}

impl HeteroGraph {
    /// An edgeless graph over a node universe.
    pub fn new(nodes: Arc<NodeStore>) -> Self {
        let n = nodes.schema().num_edge_types();
        Self {
            nodes,
            edges: vec![EdgeList::new(); n],
        }
    }

    /// Build from explicit per-type edge lists.
    ///
    /// # Panics
    /// Panics if the edge-list count does not match the schema, an endpoint
    /// is out of range, or an endpoint's node type violates the edge type's
    /// signature.
    pub fn from_edges(nodes: Arc<NodeStore>, edges: Vec<EdgeList>) -> Self {
        assert_eq!(
            edges.len(),
            nodes.schema().num_edge_types(),
            "edge list per edge type"
        );
        let n = nodes.num_nodes() as NodeId;
        for (t, list) in edges.iter().enumerate() {
            let et = nodes.schema().edge_type(EdgeTypeId(t as u16));
            for (s, d) in list.iter() {
                assert!(s < n && d < n, "edge endpoint out of range");
                assert_eq!(
                    nodes.type_of(s),
                    et.src_type,
                    "src type mismatch for edge type {t}"
                );
                assert_eq!(
                    nodes.type_of(d),
                    et.dst_type,
                    "dst type mismatch for edge type {t}"
                );
            }
        }
        Self { nodes, edges }
    }

    /// The shared node universe.
    pub fn nodes(&self) -> &Arc<NodeStore> {
        &self.nodes
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.nodes.schema()
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.num_nodes()
    }

    /// Total edge count across types.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// Edges of one type.
    pub fn edges_of_type(&self, t: EdgeTypeId) -> &EdgeList {
        &self.edges[t.index()]
    }

    /// Mutable edges of one type.
    pub fn edges_of_type_mut(&mut self, t: EdgeTypeId) -> &mut EdgeList {
        &mut self.edges[t.index()]
    }

    /// Per-type edge counts.
    pub fn edge_counts(&self) -> Vec<usize> {
        self.edges.iter().map(|e| e.len()).collect()
    }

    /// The edge-type distribution `P(ψ(e) | e ∈ E)` — the quantity whose
    /// divergence across clients defines the paper's non-IID setting.
    pub fn edge_type_distribution(&self) -> Vec<f64> {
        let total = self.num_edges();
        if total == 0 {
            return vec![0.0; self.edges.len()];
        }
        self.edges
            .iter()
            .map(|e| e.len() as f64 / total as f64)
            .collect()
    }

    /// Graph density `|E| / (|V| * (|V| - 1))` (directed convention).
    pub fn density(&self) -> f64 {
        let n = self.num_nodes() as f64;
        if n < 2.0 {
            return 0.0;
        }
        self.num_edges() as f64 / (n * (n - 1.0))
    }

    /// Build the flattened message-passing view used by GNN layers: edge
    /// arrays `(src, dst, etype)` where symmetric edge types contribute both
    /// directions and, optionally, every node gets a self-loop with a
    /// dedicated pseudo edge type `num_edge_types()`.
    pub fn message_edges(&self, add_self_loops: bool) -> MessageEdges {
        let mut cap = 0;
        for (t, list) in self.edges.iter().enumerate() {
            let sym = self.schema().edge_type(EdgeTypeId(t as u16)).symmetric;
            cap += list.len() * if sym { 2 } else { 1 };
        }
        if add_self_loops {
            cap += self.num_nodes();
        }
        let mut src = Vec::with_capacity(cap);
        let mut dst = Vec::with_capacity(cap);
        let mut etype = Vec::with_capacity(cap);
        for (t, list) in self.edges.iter().enumerate() {
            let sym = self.schema().edge_type(EdgeTypeId(t as u16)).symmetric;
            for (s, d) in list.iter() {
                src.push(s);
                dst.push(d);
                etype.push(t as u32);
                if sym && s != d {
                    src.push(d);
                    dst.push(s);
                    etype.push(t as u32);
                }
            }
        }
        let self_loop_type = self.schema().num_edge_types() as u32;
        if add_self_loops {
            for v in 0..self.num_nodes() as NodeId {
                src.push(v);
                dst.push(v);
                etype.push(self_loop_type);
            }
        }
        MessageEdges {
            src,
            dst,
            etype,
            num_message_types: self_loop_type as usize + usize::from(add_self_loops),
        }
    }

    /// In-degree of each node under the message-passing view (used by tests
    /// and samplers).
    pub fn message_in_degrees(&self, add_self_loops: bool) -> Vec<u32> {
        let me = self.message_edges(add_self_loops);
        let mut deg = vec![0u32; self.num_nodes()];
        for &d in &me.dst {
            deg[d as usize] += 1;
        }
        deg
    }
}

/// Flattened edge arrays for message passing.
#[derive(Clone, Debug)]
pub struct MessageEdges {
    /// Source node of each message.
    pub src: Vec<NodeId>,
    /// Destination node of each message.
    pub dst: Vec<NodeId>,
    /// Edge type of each message (self-loops use `num_edge_types()` as a
    /// pseudo type).
    pub etype: Vec<u32>,
    /// Number of distinct message edge types including the self-loop type.
    pub num_message_types: usize,
}

impl MessageEdges {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when there are no messages.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store() -> Arc<NodeStore> {
        let mut s = Schema::new();
        let a = s.add_node_type("a", 2);
        let b = s.add_node_type("b", 3);
        s.add_edge_type("a-b", a, b, false);
        s.add_edge_type("a-a", a, a, true);
        // 3 type-a nodes (global 0..3), 2 type-b nodes (global 3..5)
        let feats_a = vec![0.0; 3 * 2];
        let feats_b = vec![0.0; 2 * 3];
        Arc::new(NodeStore::new(s, &[3, 2], vec![feats_a, feats_b]))
    }

    #[test]
    fn node_store_indexing() {
        let ns = tiny_store();
        assert_eq!(ns.num_nodes(), 5);
        assert_eq!(ns.type_of(0), NodeTypeId(0));
        assert_eq!(ns.type_of(4), NodeTypeId(1));
        assert_eq!(ns.local_index(4), 1);
        assert_eq!(ns.nodes_of_type(NodeTypeId(1)), &[3, 4]);
        assert_eq!(ns.features_of(3).len(), 3);
    }

    #[test]
    fn graph_edge_accounting() {
        let ns = tiny_store();
        let mut g = HeteroGraph::new(ns);
        g.edges_of_type_mut(EdgeTypeId(0)).push(0, 3);
        g.edges_of_type_mut(EdgeTypeId(0)).push(1, 4);
        g.edges_of_type_mut(EdgeTypeId(1)).push(0, 2);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_counts(), vec![2, 1]);
        let dist = g.edge_type_distribution();
        assert!((dist[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((dist[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn message_edges_mirror_symmetric_types_and_add_self_loops() {
        let ns = tiny_store();
        let mut g = HeteroGraph::new(ns);
        g.edges_of_type_mut(EdgeTypeId(0)).push(0, 3); // directed
        g.edges_of_type_mut(EdgeTypeId(1)).push(0, 2); // symmetric
        let me = g.message_edges(true);
        // 1 directed + 2 mirrored + 5 self-loops
        assert_eq!(me.len(), 1 + 2 + 5);
        assert_eq!(me.num_message_types, 3);
        // the mirrored copy exists
        assert!(me
            .src
            .iter()
            .zip(&me.dst)
            .zip(&me.etype)
            .any(|((&s, &d), &t)| s == 2 && d == 0 && t == 1));
        // self-loops use the pseudo type
        let loops = me.etype.iter().filter(|&&t| t == 2).count();
        assert_eq!(loops, 5);
    }

    #[test]
    fn symmetric_self_edge_not_double_mirrored() {
        let ns = tiny_store();
        let mut g = HeteroGraph::new(ns);
        g.edges_of_type_mut(EdgeTypeId(1)).push(1, 1);
        let me = g.message_edges(false);
        assert_eq!(me.len(), 1);
    }

    #[test]
    fn from_edges_validates_types() {
        let ns = tiny_store();
        let mut lists = vec![EdgeList::new(), EdgeList::new()];
        lists[0].push(0, 3);
        let g = HeteroGraph::from_edges(ns, lists);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "dst type mismatch")]
    fn from_edges_rejects_signature_violation() {
        let ns = tiny_store();
        let mut lists = vec![EdgeList::new(), EdgeList::new()];
        lists[0].push(0, 1); // a-b edge pointing at a type-a node
        let _ = HeteroGraph::from_edges(ns, lists);
    }

    #[test]
    fn degrees_count_incoming_messages() {
        let ns = tiny_store();
        let mut g = HeteroGraph::new(ns);
        g.edges_of_type_mut(EdgeTypeId(0)).push(0, 3);
        g.edges_of_type_mut(EdgeTypeId(0)).push(1, 3);
        let deg = g.message_in_degrees(false);
        assert_eq!(deg[3], 2);
        assert_eq!(deg[0], 0);
        let deg_loops = g.message_in_degrees(true);
        assert_eq!(deg_loops[3], 3);
        assert_eq!(deg_loops[0], 1);
    }

    #[test]
    fn density_of_empty_graph_is_zero() {
        let ns = tiny_store();
        let g = HeteroGraph::new(ns);
        assert_eq!(g.density(), 0.0);
    }
}
