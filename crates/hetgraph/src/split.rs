//! Train/test edge splitting for link prediction.
//!
//! The paper splits the *global* edge set (90/10 for Amazon, 85/15 for
//! DBLP); clients sample their sub-heterographs from the training portion
//! and the global test portion evaluates all edge types.

use crate::graph::{EdgeList, HeteroGraph};
use crate::schema::EdgeTypeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A train/test split of a heterograph's edges. Both sides share the node
/// universe of the original graph.
#[derive(Clone, Debug)]
pub struct EdgeSplit {
    /// Graph holding the training edges.
    pub train: HeteroGraph,
    /// Graph holding the held-out test edges.
    pub test: HeteroGraph,
}

/// Split every edge type independently: `test_fraction` of each type's
/// edges go to the test side, the rest to the train side. Per-type
/// stratification keeps rare edge types represented in both sides.
pub fn split_edges<R: Rng + ?Sized>(
    graph: &HeteroGraph,
    test_fraction: f64,
    rng: &mut R,
) -> EdgeSplit {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1), got {test_fraction}"
    );
    let schema = graph.schema().clone();
    let mut train_lists = Vec::with_capacity(schema.num_edge_types());
    let mut test_lists = Vec::with_capacity(schema.num_edge_types());
    for t in schema.edge_type_ids() {
        let list = graph.edges_of_type(t);
        let mut order: Vec<usize> = (0..list.len()).collect();
        order.shuffle(rng);
        let n_test = ((list.len() as f64) * test_fraction).round() as usize;
        // Keep at least one training edge per non-empty type.
        let n_test = n_test.min(list.len().saturating_sub(1));
        let mut train = EdgeList::new();
        let mut test = EdgeList::new();
        for (rank, &i) in order.iter().enumerate() {
            if rank < n_test {
                test.push(list.src[i], list.dst[i]);
            } else {
                train.push(list.src[i], list.dst[i]);
            }
        }
        train_lists.push(train);
        test_lists.push(test);
    }
    EdgeSplit {
        train: HeteroGraph::from_edges(graph.nodes().clone(), train_lists),
        test: HeteroGraph::from_edges(graph.nodes().clone(), test_lists),
    }
}

/// Sample (with replacement across calls, without within a call) a fraction
/// of one edge type's edges into a new [`EdgeList`].
pub fn sample_edge_fraction<R: Rng + ?Sized>(
    list: &EdgeList,
    fraction: f64,
    rng: &mut R,
) -> EdgeList {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let n = ((list.len() as f64) * fraction).round() as usize;
    let mut order: Vec<usize> = (0..list.len()).collect();
    order.shuffle(rng);
    let mut out = EdgeList::new();
    for &i in order.iter().take(n) {
        out.push(list.src[i], list.dst[i]);
    }
    out
}

/// Union of two heterographs over the same node universe (edge multisets
/// are concatenated; used to build IID client splits with overlap).
pub fn union(a: &HeteroGraph, b: &HeteroGraph) -> HeteroGraph {
    assert!(
        std::sync::Arc::ptr_eq(a.nodes(), b.nodes()),
        "union: different node stores"
    );
    let mut out = a.clone();
    for t in a.schema().edge_type_ids().collect::<Vec<_>>() {
        let extra = b.edges_of_type(t).clone();
        let dst = out.edges_of_type_mut(t);
        dst.src.extend_from_slice(&extra.src);
        dst.dst.extend_from_slice(&extra.dst);
    }
    out
}

/// Per-type edge membership check (`O(|E_t|)`; test helper).
pub fn contains_edge(graph: &HeteroGraph, t: EdgeTypeId, src: u32, dst: u32) -> bool {
    graph
        .edges_of_type(t)
        .iter()
        .any(|(s, d)| s == src && d == dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeStore;
    use crate::schema::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn line_graph(n: usize) -> HeteroGraph {
        let mut s = Schema::new();
        let a = s.add_node_type("a", 1);
        s.add_edge_type("e", a, a, false);
        let store = Arc::new(NodeStore::new(s, &[n], vec![vec![0.0; n]]));
        let mut g = HeteroGraph::new(store);
        for i in 0..n as u32 - 1 {
            g.edges_of_type_mut(EdgeTypeId(0)).push(i, i + 1);
        }
        g
    }

    #[test]
    fn split_partitions_each_type() {
        let g = line_graph(101); // 100 edges
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_edges(&g, 0.1, &mut rng);
        assert_eq!(split.test.num_edges(), 10);
        assert_eq!(split.train.num_edges(), 90);
        // disjoint
        for (s, d) in split.test.edges_of_type(EdgeTypeId(0)).iter() {
            assert!(!contains_edge(&split.train, EdgeTypeId(0), s, d));
        }
    }

    #[test]
    fn split_keeps_a_training_edge_for_tiny_types() {
        let g = line_graph(2); // a single edge
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_edges(&g, 0.9, &mut rng);
        assert_eq!(split.train.num_edges(), 1);
        assert_eq!(split.test.num_edges(), 0);
    }

    #[test]
    fn sample_edge_fraction_respects_size() {
        let g = line_graph(51);
        let mut rng = StdRng::seed_from_u64(9);
        let sampled = sample_edge_fraction(g.edges_of_type(EdgeTypeId(0)), 0.3, &mut rng);
        assert_eq!(sampled.len(), 15);
        // all sampled edges exist in the original
        for (s, d) in sampled.iter() {
            assert!(contains_edge(&g, EdgeTypeId(0), s, d));
        }
    }

    #[test]
    fn union_concatenates_edges() {
        let g = line_graph(11);
        let mut rng = StdRng::seed_from_u64(1);
        let a = sample_edge_fraction(g.edges_of_type(EdgeTypeId(0)), 0.5, &mut rng);
        let b = sample_edge_fraction(g.edges_of_type(EdgeTypeId(0)), 0.5, &mut rng);
        let mut ga = HeteroGraph::new(g.nodes().clone());
        *ga.edges_of_type_mut(EdgeTypeId(0)) = a;
        let mut gb = HeteroGraph::new(g.nodes().clone());
        *gb.edges_of_type_mut(EdgeTypeId(0)) = b;
        let u = union(&ga, &gb);
        assert_eq!(u.num_edges(), 10);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let g = line_graph(40);
        let s1 = split_edges(&g, 0.2, &mut StdRng::seed_from_u64(5));
        let s2 = split_edges(&g, 0.2, &mut StdRng::seed_from_u64(5));
        assert_eq!(
            s1.test.edges_of_type(EdgeTypeId(0)),
            s2.test.edges_of_type(EdgeTypeId(0))
        );
    }
}
