//! Metapath composition — deriving higher-order relations by chaining edge
//! types (e.g. the classic `author → paper → author` co-authorship
//! metapath). Metapath-based neighbor sets underpin a whole family of
//! heterograph models (HAN, MAGNN, metapath2vec); this module provides the
//! relational-join primitive.

use crate::graph::{EdgeList, HeteroGraph, NodeId};
use crate::schema::EdgeTypeId;
use std::collections::BTreeSet;

/// Errors from metapath composition.
#[derive(Debug, PartialEq, Eq)]
pub enum MetapathError {
    /// The metapath is empty.
    Empty,
    /// Consecutive edge types do not share an endpoint node type.
    TypeMismatch {
        /// Position of the offending step.
        step: usize,
    },
}

impl std::fmt::Display for MetapathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetapathError::Empty => write!(f, "metapath must have at least one step"),
            MetapathError::TypeMismatch { step } => {
                write!(
                    f,
                    "metapath step {step}: destination type does not match the next source type"
                )
            }
        }
    }
}

impl std::error::Error for MetapathError {}

/// Compose a metapath into a derived edge list: `(u, w)` is included when a
/// path `u →_{t1} v →_{t2} … → w` exists following the given edge types in
/// order. Duplicate `(u, w)` pairs are deduplicated; self-pairs (`u = w`)
/// are kept only when `keep_self` is true.
///
/// Symmetric edge types are traversed in both directions (matching the
/// message-passing view).
pub fn compose_metapath(
    graph: &HeteroGraph,
    path: &[EdgeTypeId],
    keep_self: bool,
) -> Result<EdgeList, MetapathError> {
    if path.is_empty() {
        return Err(MetapathError::Empty);
    }
    let schema = graph.schema();
    // Validate endpoint-type chaining (taking symmetry into account is
    // deliberately strict: we require dst(t_i) == src(t_{i+1})).
    for (i, w) in path.windows(2).enumerate() {
        let cur = schema.edge_type(w[0]);
        let next = schema.edge_type(w[1]);
        if cur.dst_type != next.src_type {
            return Err(MetapathError::TypeMismatch { step: i });
        }
    }

    // Adjacency of one edge type as (src -> [dst]) including mirrored
    // symmetric edges.
    let adjacency = |t: EdgeTypeId| -> Vec<Vec<NodeId>> {
        let mut adj = vec![Vec::new(); graph.num_nodes()];
        let meta = schema.edge_type(t);
        for (s, d) in graph.edges_of_type(t).iter() {
            adj[s as usize].push(d);
            if meta.symmetric && s != d {
                adj[d as usize].push(s);
            }
        }
        adj
    };

    // Frontier expansion: start from every node of the first step's source
    // type, walk the chain.
    let first_src_type = schema.edge_type(path[0]).src_type;
    let starts = graph.nodes().nodes_of_type(first_src_type);
    let mut pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let adjs: Vec<Vec<Vec<NodeId>>> = path.iter().map(|&t| adjacency(t)).collect();
    for &start in starts {
        let mut frontier: BTreeSet<NodeId> = BTreeSet::new();
        frontier.insert(start);
        for adj in &adjs {
            let mut next = BTreeSet::new();
            for &v in &frontier {
                for &w in &adj[v as usize] {
                    next.insert(w);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        for &end in &frontier {
            if keep_self || end != start {
                pairs.insert((start, end));
            }
        }
    }
    let mut sorted: Vec<(NodeId, NodeId)> = pairs.into_iter().collect();
    sorted.sort_unstable();
    let mut out = EdgeList::new();
    for (s, d) in sorted {
        out.push(s, d);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeStore;
    use crate::schema::Schema;
    use std::sync::Arc;

    /// authors 0..3, papers 3..6; writes: 0-3, 1-3, 1-4, 2-5
    fn bibliographic() -> HeteroGraph {
        let mut s = Schema::new();
        let author = s.add_node_type("author", 1);
        let paper = s.add_node_type("paper", 1);
        s.add_edge_type("writes", author, paper, false);
        s.add_edge_type("cites", paper, paper, false);
        let store = Arc::new(NodeStore::new(s, &[3, 3], vec![vec![0.0; 3], vec![0.0; 3]]));
        let mut writes = EdgeList::new();
        writes.push(0, 3);
        writes.push(1, 3);
        writes.push(1, 4);
        writes.push(2, 5);
        let mut cites = EdgeList::new();
        cites.push(3, 5); // paper 3 cites paper 5
        HeteroGraph::from_edges(store, vec![writes, cites])
    }

    #[test]
    fn author_paper_author_needs_reverse_step() {
        // writes ∘ writes is invalid: paper dst != author src.
        let g = bibliographic();
        let err = compose_metapath(&g, &[EdgeTypeId(0), EdgeTypeId(0)], false).unwrap_err();
        assert_eq!(err, MetapathError::TypeMismatch { step: 0 });
    }

    #[test]
    fn writes_cites_finds_two_hop_papers() {
        let g = bibliographic();
        // author →writes paper →cites paper: authors 0 and 1 reach paper 5
        let derived = compose_metapath(&g, &[EdgeTypeId(0), EdgeTypeId(1)], false).unwrap();
        let pairs: Vec<(u32, u32)> = derived.iter().collect();
        assert_eq!(pairs, vec![(0, 5), (1, 5)]);
    }

    #[test]
    fn symmetric_coauthor_metapath() {
        // Schema with a symmetric co-author relation: one step is enough.
        let mut s = Schema::new();
        let author = s.add_node_type("author", 1);
        s.add_edge_type("coauthor", author, author, true);
        let store = Arc::new(NodeStore::new(s, &[3], vec![vec![0.0; 3]]));
        let mut co = EdgeList::new();
        co.push(0, 1);
        co.push(1, 2);
        let g = HeteroGraph::from_edges(store, vec![co]);
        // coauthor ∘ coauthor: 0 reaches 2 (via 1), 0 reaches 0 (dropped),
        // each node reaches itself (dropped without keep_self).
        let two_hop = compose_metapath(&g, &[EdgeTypeId(0), EdgeTypeId(0)], false).unwrap();
        let pairs: Vec<(u32, u32)> = two_hop.iter().collect();
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(2, 0)));
        assert!(pairs.iter().all(|&(s, d)| s != d));
        let with_self = compose_metapath(&g, &[EdgeTypeId(0), EdgeTypeId(0)], true).unwrap();
        assert!(with_self.iter().any(|(s, d)| s == d));
    }

    #[test]
    fn empty_metapath_rejected() {
        let g = bibliographic();
        assert_eq!(
            compose_metapath(&g, &[], false).unwrap_err(),
            MetapathError::Empty
        );
    }

    #[test]
    fn single_step_equals_mirrored_edges() {
        let g = bibliographic();
        let one = compose_metapath(&g, &[EdgeTypeId(0)], false).unwrap();
        assert_eq!(one.len(), 4); // the four distinct writes pairs
    }
}
