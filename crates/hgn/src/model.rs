//! Simple-HGN (Lv et al., KDD 2021) — the encoder/decoder the paper
//! federates — implemented on the `fedda-tensor` tape.
//!
//! The encoder is multi-head GAT extended with the three Simple-HGN
//! enhancements the paper describes (§5.1.1):
//!
//! 1. **learnable edge-type embeddings** inside the attention score
//!    (Eq. 2): `α_uv ∝ exp(LeakyReLU(aᵀ[W h_u ‖ W h_v ‖ W_r r_ψ(e)]))`,
//!    decomposed here as `a_src·Wh_u + a_dst·Wh_v + a_edge·W_r r_ψ(e)`;
//! 2. **pre-activation residual connections** between layers (Eq. 3);
//! 3. **L2 normalisation** of the final embeddings.
//!
//! The decoder scores node pairs with dot product or DistMult. Edge-type
//! embeddings and DistMult relation vectors are registered as *disentangled*
//! parameter units (`ParamMeta::per_edge_type`), the paper's `[N_d]` set
//! that FedDA's parameter activation masks operate on.

use crate::config::{Decoder, HgnConfig};
use crate::view::GraphView;
use fedda_hetgraph::{EdgeTypeId, LinkExample, NodeTypeId, Schema};
use fedda_tensor::{init, Graph, Matrix, ParamId, ParamMeta, ParamSet, TapeBindings, Var};
use rand::Rng;
use std::sync::Arc;

/// Per-head parameter handles of one attention layer.
struct HeadParams {
    w: ParamId,
    a_src: ParamId,
    a_dst: ParamId,
    a_edge: Option<ParamId>,
    w_r: Option<ParamId>,
}

/// Parameter handles of one attention layer.
struct LayerParams {
    heads: Vec<HeadParams>,
    w_res: Option<ParamId>,
    /// One edge-type embedding unit per message type (disentangled for real
    /// types, shared for the self-loop pseudo type).
    edge_emb: Vec<ParamId>,
}

/// The Simple-HGN model: architecture + parameter handles.
///
/// The model itself is stateless across calls; all learnable state lives in
/// the [`ParamSet`] created by [`SimpleHgn::init_params`], so the FL layer
/// can clone/broadcast/average parameter sets without touching the model.
pub struct SimpleHgn {
    config: HgnConfig,
    in_proj: Vec<ParamId>,
    in_bias: Vec<ParamId>,
    layers: Vec<LayerParams>,
    dec_rel: Vec<ParamId>,
    dec_scale: ParamId,
    dec_bias: ParamId,
    num_edge_types: usize,
    num_message_types: usize,
}

impl SimpleHgn {
    /// Build the model for a schema and initialise a fresh parameter set.
    ///
    /// All clients must construct the model from the same schema and config
    /// so their parameter sets are structurally identical — this is what
    /// FedAvg's "same initialisation" requirement (§4) means here.
    pub fn init_params<R: Rng + ?Sized>(
        schema: &Schema,
        config: &HgnConfig,
        rng: &mut R,
    ) -> (Self, ParamSet) {
        // fedda-lint: allow(panic-path, reason = "constructor contract documented on HgnConfig::validate; a bad config cannot produce a usable model")
        config.validate().expect("invalid HgnConfig");
        let mut ps = ParamSet::new();
        let d_model = config.out_dim();
        let num_edge_types = schema.num_edge_types();
        let num_message_types = num_edge_types + usize::from(config.add_self_loops);

        let mut in_proj = Vec::with_capacity(schema.num_node_types());
        let mut in_bias = Vec::with_capacity(schema.num_node_types());
        for t in schema.node_type_ids() {
            let meta = schema.node_type(t);
            in_proj.push(ps.add(
                format!("enc.in_proj.{}", meta.name),
                init::xavier_uniform(rng, meta.feat_dim, d_model),
            ));
            in_bias.push(ps.add(
                format!("enc.in_bias.{}", meta.name),
                Matrix::zeros(1, d_model),
            ));
        }

        let mut layers = Vec::with_capacity(config.num_layers);
        for l in 0..config.num_layers {
            let mut heads = Vec::with_capacity(config.num_heads);
            for h in 0..config.num_heads {
                let w = ps.add(
                    format!("l{l}.h{h}.W"),
                    init::xavier_uniform(rng, d_model, config.hidden_dim),
                );
                let a_src = ps.add(
                    format!("l{l}.h{h}.a_src"),
                    init::xavier_uniform(rng, config.hidden_dim, 1),
                );
                let a_dst = ps.add(
                    format!("l{l}.h{h}.a_dst"),
                    init::xavier_uniform(rng, config.hidden_dim, 1),
                );
                let (a_edge, w_r) = if config.edge_type_attention {
                    (
                        Some(ps.add(
                            format!("l{l}.h{h}.a_edge"),
                            init::xavier_uniform(rng, config.edge_emb_dim, 1),
                        )),
                        Some(ps.add(
                            format!("l{l}.h{h}.W_r"),
                            init::xavier_uniform(rng, config.edge_emb_dim, config.edge_emb_dim),
                        )),
                    )
                } else {
                    (None, None)
                };
                heads.push(HeadParams {
                    w,
                    a_src,
                    a_dst,
                    a_edge,
                    w_r,
                });
            }
            let w_res = config.residual.then(|| {
                ps.add(
                    format!("l{l}.W_res"),
                    init::xavier_uniform(rng, d_model, d_model),
                )
            });
            let mut edge_emb = Vec::new();
            if config.edge_type_attention {
                for t in 0..num_message_types {
                    let meta = if t < num_edge_types {
                        ParamMeta::per_edge_type(t)
                    } else {
                        ParamMeta::shared() // self-loop pseudo type
                    };
                    edge_emb.push(ps.add_with_meta(
                        format!("l{l}.edge_emb.t{t}"),
                        init::xavier_uniform(rng, 1, config.edge_emb_dim),
                        meta,
                    ));
                }
            }
            layers.push(LayerParams {
                heads,
                w_res,
                edge_emb,
            });
        }

        let mut dec_rel = Vec::new();
        if config.decoder == Decoder::DistMult {
            for t in 0..num_edge_types {
                dec_rel.push(ps.add_with_meta(
                    format!("dec.rel.t{t}"),
                    Matrix::full(1, d_model, 1.0),
                    ParamMeta::per_edge_type(t),
                ));
            }
        }
        // Logit calibration: with L2-normalised embeddings the raw decoder
        // output lives in [-1, 1]; a learnable affine map gives BCE useful
        // logit magnitudes.
        let dec_scale = ps.add("dec.scale", Matrix::full(1, 1, 4.0));
        let dec_bias = ps.add("dec.bias", Matrix::zeros(1, 1));

        let model = Self {
            config: config.clone(),
            in_proj,
            in_bias,
            layers,
            dec_rel,
            dec_scale,
            dec_bias,
            num_edge_types,
            num_message_types,
        };
        (model, ps)
    }

    /// The model's configuration.
    pub fn config(&self) -> &HgnConfig {
        &self.config
    }

    /// Number of real edge types.
    pub fn num_edge_types(&self) -> usize {
        self.num_edge_types
    }

    /// Encode all nodes of a graph view into `[num_nodes, out_dim]`
    /// embeddings on the given tape.
    ///
    /// `dropout_rng` enables feature dropout when `Some` (training mode).
    pub fn encode<R: Rng + ?Sized>(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        view: &GraphView,
        mut dropout_rng: Option<&mut R>,
    ) -> Var {
        assert_eq!(
            view.num_message_types, self.num_message_types,
            "GraphView message types do not match the model (self-loop setting mismatch?)"
        );
        let cfg = &self.config;

        // Input projection per node type, assembled into the global node
        // matrix via scatter-add (each node appears exactly once).
        let mut h = {
            let mut projected = Vec::with_capacity(view.num_node_types());
            for (t, feats) in view.type_features.iter().enumerate() {
                let x = graph.input(feats.clone());
                let w = bindings.leaf(graph, params, self.in_proj[t]);
                let b = bindings.leaf(graph, params, self.in_bias[t]);
                let xw = graph.matmul(x, w);
                let xwb = graph.add_row_broadcast(xw, b);
                projected.push(graph.scatter_add_rows(
                    xwb,
                    view.type_global_ids[t].clone(),
                    view.num_nodes,
                ));
            }
            let mut acc = projected[0];
            for &p in &projected[1..] {
                acc = graph.add(acc, p);
            }
            acc
        };

        // Previous layer's per-head attention weights, for the optional
        // attention-residual blending (config.attn_residual).
        let mut prev_alphas: Vec<Var> = Vec::new();
        for layer in &self.layers {
            if cfg.dropout > 0.0 {
                if let Some(rng) = dropout_rng.as_deref_mut() {
                    h = apply_dropout(graph, h, cfg.dropout, rng);
                }
            }
            // Per-message edge-attention term, shared basis across heads:
            // R[t] = edge-type embedding, per head transformed by W_r and
            // projected by a_edge.
            let edge_emb_matrix = if cfg.edge_type_attention {
                let rows: Vec<Var> = layer
                    .edge_emb
                    .iter()
                    .map(|&id| bindings.leaf(graph, params, id))
                    .collect();
                Some(graph.concat_rows(&rows))
            } else {
                None
            };

            let mut head_outputs = Vec::with_capacity(layer.heads.len());
            let mut new_alphas = Vec::with_capacity(layer.heads.len());
            for head in &layer.heads {
                let w = bindings.leaf(graph, params, head.w);
                let hw = graph.matmul(h, w); // [n, hidden]
                let a_src = bindings.leaf(graph, params, head.a_src);
                let a_dst = bindings.leaf(graph, params, head.a_dst);
                let s_src = graph.matmul(hw, a_src); // [n, 1]
                let s_dst = graph.matmul(hw, a_dst); // [n, 1]
                let e_src = graph.gather_rows(s_src, view.src.clone()); // [E,1]
                let e_dst = graph.gather_rows(s_dst, view.dst.clone()); // [E,1]
                let mut score = graph.add(e_src, e_dst);
                if let (Some(emb), Some(a_edge_id), Some(w_r_id)) =
                    (edge_emb_matrix, head.a_edge, head.w_r)
                {
                    let w_r = bindings.leaf(graph, params, w_r_id);
                    let a_edge = bindings.leaf(graph, params, a_edge_id);
                    let transformed = graph.matmul(emb, w_r); // [T, d_e]
                    let per_type = graph.matmul(transformed, a_edge); // [T, 1]
                    let per_edge = graph.gather_rows(per_type, view.etype.clone()); // [E,1]
                    score = graph.add(score, per_edge);
                }
                let act = graph.leaky_relu(score, cfg.negative_slope);
                let mut alpha = graph.segment_softmax(act, view.segments.clone());
                if cfg.attn_residual > 0.0 {
                    if let Some(&prev) = prev_alphas.get(head_outputs.len()) {
                        let fresh = graph.scale(alpha, 1.0 - cfg.attn_residual);
                        let carried = graph.scale(prev, cfg.attn_residual);
                        alpha = graph.add(fresh, carried);
                    }
                }
                new_alphas.push(alpha);
                let src_feats = graph.gather_rows(hw, view.src.clone()); // [E, hidden]
                let weighted = graph.mul_col_broadcast(src_feats, alpha);
                let agg = graph.scatter_add_rows(weighted, view.dst.clone(), view.num_nodes);
                head_outputs.push(agg);
            }
            prev_alphas = new_alphas;
            let concat = if head_outputs.len() == 1 {
                head_outputs[0]
            } else {
                graph.concat_cols(&head_outputs)
            };
            let pre_act = if let Some(w_res_id) = layer.w_res {
                let w_res = bindings.leaf(graph, params, w_res_id);
                let res = graph.matmul(h, w_res);
                graph.add(concat, res)
            } else {
                concat
            };
            h = graph.elu(pre_act, 1.0);
        }

        if cfg.l2_normalize {
            h = graph.l2_normalize_rows(h, 1e-12);
        }
        h
    }

    /// Score link examples against node embeddings; returns logits `[B, 1]`.
    pub fn score_links(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        embeddings: Var,
        examples: &[LinkExample],
    ) -> Var {
        assert!(!examples.is_empty(), "score_links: no examples");
        let src: Arc<Vec<u32>> = Arc::new(examples.iter().map(|e| e.src).collect());
        let dst: Arc<Vec<u32>> = Arc::new(examples.iter().map(|e| e.dst).collect());
        let o_src = graph.gather_rows(embeddings, src);
        let o_dst = graph.gather_rows(embeddings, dst);
        let raw = match self.config.decoder {
            Decoder::DotProduct => graph.row_dot(o_src, o_dst),
            Decoder::DistMult => {
                let rel_rows: Vec<Var> = self
                    .dec_rel
                    .iter()
                    .map(|&id| bindings.leaf(graph, params, id))
                    .collect();
                let rel = graph.concat_rows(&rel_rows); // [T, d]
                let etypes: Arc<Vec<u32>> =
                    Arc::new(examples.iter().map(|e| e.etype.0 as u32).collect());
                let per_example = graph.gather_rows(rel, etypes); // [B, d]
                let modulated = graph.mul(o_src, per_example);
                graph.row_dot(modulated, o_dst)
            }
        };
        let scale = bindings.leaf(graph, params, self.dec_scale);
        let bias = bindings.leaf(graph, params, self.dec_bias);
        let scaled = graph.matmul(raw, scale); // [B,1] @ [1,1]
        graph.add_row_broadcast(scaled, bias)
    }

    /// Convenience: encode + score in one fresh tape, returning raw logit
    /// values (no gradient bookkeeping). Used by evaluation.
    pub fn infer_logits(
        &self,
        params: &ParamSet,
        view: &GraphView,
        examples: &[LinkExample],
    ) -> Vec<f32> {
        let mut graph = Graph::new();
        let mut bindings = TapeBindings::new();
        let emb = self.encode::<rand::rngs::StdRng>(&mut graph, &mut bindings, params, view, None);
        let logits = self.score_links(&mut graph, &mut bindings, params, emb, examples);
        graph.value(logits).as_slice().to_vec()
    }

    /// Edge types whose disentangled units exist in this model (helper for
    /// tests and the FL masking layer).
    pub fn disentangled_edge_types(&self, params: &ParamSet) -> Vec<EdgeTypeId> {
        let mut seen = vec![false; self.num_edge_types];
        for (_, p) in params.iter() {
            if let Some(t) = p.meta().edge_type {
                if t < self.num_edge_types {
                    seen[t] = true;
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(t, &s)| s.then_some(EdgeTypeId(t as u16)))
            .collect()
    }

    /// Node-type input dimensionality used at construction (for checks).
    pub fn expects_feat_dim(&self, params: &ParamSet, t: NodeTypeId) -> usize {
        params.get(self.in_proj[t.index()]).value().rows()
    }
}

/// Inverted dropout with a freshly sampled mask.
fn apply_dropout<R: Rng + ?Sized>(graph: &mut Graph, x: Var, p: f32, rng: &mut R) -> Var {
    let (r, c) = graph.shape(x);
    let keep = 1.0 - p;
    let mask: Vec<f32> = (0..r * c)
        .map(|_| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        })
        .collect();
    graph.dropout_with_mask(x, Arc::new(mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedda_data::{dblp_like, PresetOptions};
    use fedda_hetgraph::LinkSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup() -> (SimpleHgn, ParamSet, GraphView, fedda_hetgraph::HeteroGraph) {
        let opts = PresetOptions {
            scale: 0.0015,
            seed: 5,
            ..Default::default()
        };
        let g = dblp_like(&opts).graph;
        let cfg = HgnConfig {
            hidden_dim: 4,
            num_layers: 2,
            num_heads: 2,
            edge_emb_dim: 4,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let (model, params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&g, cfg.add_self_loops);
        (model, params, view, g)
    }

    #[test]
    fn encode_produces_normalized_embeddings() {
        let (model, params, view, _g) = tiny_setup();
        let mut graph = Graph::new();
        let mut tb = TapeBindings::new();
        let emb = model.encode::<StdRng>(&mut graph, &mut tb, &params, &view, None);
        let (n, d) = graph.shape(emb);
        assert_eq!(n, view.num_nodes);
        assert_eq!(d, model.config().out_dim());
        for row in graph.value(emb).rows_iter() {
            let norm: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4, "row norm {norm}");
        }
        assert!(!graph.value(emb).has_non_finite());
    }

    #[test]
    fn score_links_shapes_and_grads() {
        let (model, mut params, view, g) = tiny_setup();
        let sampler = LinkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let pos = sampler.all_positives();
        let examples = sampler.with_negatives(&pos[..8.min(pos.len())], 1, &mut rng);
        let mut graph = Graph::new();
        let mut tb = TapeBindings::new();
        let emb = model.encode::<StdRng>(&mut graph, &mut tb, &params, &view, None);
        let logits = model.score_links(&mut graph, &mut tb, &params, emb, &examples);
        assert_eq!(graph.shape(logits), (examples.len(), 1));
        let targets: Vec<f32> = examples
            .iter()
            .map(|e| if e.label { 1.0 } else { 0.0 })
            .collect();
        let loss = graph.bce_with_logits(logits, Arc::new(targets));
        graph.backward(loss);
        params.zero_grads();
        tb.accumulate_grads(&graph, &mut params);
        // Gradients flow into encoder weights and decoder calibration.
        let gnorm = params.grad_norm_sq();
        assert!(gnorm > 0.0, "no gradient reached the parameters");
        assert!(!params.has_non_finite());
    }

    #[test]
    fn distmult_decoder_registers_disentangled_relations() {
        let opts = PresetOptions {
            scale: 0.0015,
            seed: 5,
            ..Default::default()
        };
        let g = dblp_like(&opts).graph;
        let cfg = HgnConfig {
            decoder: Decoder::DistMult,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let (model, params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let dis = model.disentangled_edge_types(&params);
        assert_eq!(dis.len(), g.schema().num_edge_types());
        // N_d counts per-type units from both attention and decoder
        assert!(params.num_disentangled() >= g.schema().num_edge_types());
    }

    #[test]
    fn gat_ablation_has_fewer_params() {
        let opts = PresetOptions {
            scale: 0.0015,
            seed: 5,
            ..Default::default()
        };
        let g = dblp_like(&opts).graph;
        let mut rng = StdRng::seed_from_u64(0);
        let full = HgnConfig::default();
        let (_m1, p1) = SimpleHgn::init_params(g.schema(), &full, &mut rng);
        let (_m2, p2) = SimpleHgn::init_params(g.schema(), &full.gat(), &mut rng);
        assert!(p2.num_scalars() < p1.num_scalars());
        assert_eq!(p2.num_disentangled(), 0, "GAT has no per-type units");
    }

    #[test]
    fn same_seed_same_init() {
        let opts = PresetOptions {
            scale: 0.0015,
            seed: 5,
            ..Default::default()
        };
        let g = dblp_like(&opts).graph;
        let cfg = HgnConfig::default();
        let (_a, pa) = SimpleHgn::init_params(g.schema(), &cfg, &mut StdRng::seed_from_u64(9));
        let (_b, pb) = SimpleHgn::init_params(g.schema(), &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(pa.flatten(), pb.flatten());
    }

    #[test]
    fn attention_residual_changes_deep_layers_only() {
        let opts = PresetOptions {
            scale: 0.0015,
            seed: 5,
            ..Default::default()
        };
        let g = dblp_like(&opts).graph;
        let base = HgnConfig {
            hidden_dim: 4,
            num_layers: 2,
            num_heads: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let (model, params) = SimpleHgn::init_params(g.schema(), &base, &mut rng);
        let view = GraphView::new(&g, base.add_self_loops);
        let mut graph = Graph::new();
        let mut tb = TapeBindings::new();
        let plain = model.encode::<StdRng>(&mut graph, &mut tb, &params, &view, None);
        let plain_vals = graph.value(plain).as_slice().to_vec();

        let with_res = SimpleHgn {
            config: HgnConfig {
                attn_residual: 0.5,
                ..base.clone()
            },
            ..model
        };
        let mut graph2 = Graph::new();
        let mut tb2 = TapeBindings::new();
        let blended = with_res.encode::<StdRng>(&mut graph2, &mut tb2, &params, &view, None);
        let blended_vals = graph2.value(blended).as_slice().to_vec();
        assert_ne!(
            plain_vals, blended_vals,
            "residual attention must change layer ≥ 2 outputs"
        );
        assert!(!graph2.value(blended).has_non_finite());

        // Attention weights remain a convex combination: still normalised
        // per destination, so embeddings stay bounded after L2 norm.
        for row in graph2.value(blended).rows_iter() {
            let norm: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn single_layer_attention_residual_is_identity() {
        let opts = PresetOptions {
            scale: 0.0015,
            seed: 5,
            ..Default::default()
        };
        let g = dblp_like(&opts).graph;
        let base = HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 1,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let (model, params) = SimpleHgn::init_params(g.schema(), &base, &mut rng);
        let view = GraphView::new(&g, base.add_self_loops);
        let mut g1 = Graph::new();
        let mut t1 = TapeBindings::new();
        let plain = model.encode::<StdRng>(&mut g1, &mut t1, &params, &view, None);
        let with_res = SimpleHgn {
            config: HgnConfig {
                attn_residual: 0.5,
                ..base
            },
            ..model
        };
        let mut g2 = Graph::new();
        let mut t2 = TapeBindings::new();
        let blended = with_res.encode::<StdRng>(&mut g2, &mut t2, &params, &view, None);
        // With one layer there is no previous attention to blend with.
        assert_eq!(g1.value(plain).as_slice(), g2.value(blended).as_slice());
    }

    #[test]
    fn dropout_changes_training_forward_only() {
        let (model, params, view, _g) = tiny_setup();
        let mut cfg = model.config().clone();
        cfg.dropout = 0.5;
        // Rebuild with dropout via a fresh model sharing the same params
        // layout (config only affects forward behaviour here).
        let mut graph = Graph::new();
        let mut tb = TapeBindings::new();
        let mut rng = StdRng::seed_from_u64(2);
        // training mode: dropout_rng = Some
        let model_do = SimpleHgn {
            config: cfg,
            ..model
        };
        let emb_train = model_do.encode(&mut graph, &mut tb, &params, &view, Some(&mut rng));
        let mut graph2 = Graph::new();
        let mut tb2 = TapeBindings::new();
        let emb_eval = model_do.encode::<StdRng>(&mut graph2, &mut tb2, &params, &view, None);
        // different values under dropout
        assert_ne!(
            graph.value(emb_train).as_slice(),
            graph2.value(emb_eval).as_slice()
        );
    }
}
