//! Model configuration for Simple-HGN and its GAT ablation.

/// Link-score decoder choice (Simple-HGN §5.1.1 uses dot product or
/// DistMult depending on the dataset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decoder {
    /// `score(u, v) = s * (o_u · o_v) + b` — with L2-normalised outputs this
    /// is scaled cosine similarity. The learnable scale/bias map the
    /// `[-1, 1]` cosine range onto useful logit magnitudes.
    DotProduct,
    /// `score(u, v) = s * Σ_d o_u[d] * r_t[d] * o_v[d] + b` with a learnable
    /// relation vector `r_t` per edge type (disentangled units).
    DistMult,
}

/// Hyper-parameters of the Simple-HGN encoder + decoder.
///
/// The paper's default is a three-layer, three-head model (§6.1); the
/// reproduction defaults are smaller so CPU experiments stay fast, and the
/// benches that regenerate the paper's tables set the paper values
/// explicitly.
#[derive(Clone, Debug)]
pub struct HgnConfig {
    /// Hidden width per attention head.
    pub hidden_dim: usize,
    /// Number of attention layers.
    pub num_layers: usize,
    /// Number of attention heads per layer.
    pub num_heads: usize,
    /// Width of the learnable edge-type embeddings.
    pub edge_emb_dim: usize,
    /// LeakyReLU negative slope in attention scores.
    pub negative_slope: f32,
    /// Feature dropout probability applied to layer inputs during training.
    pub dropout: f32,
    /// Use pre-activation residual connections between layers (Eq. 3).
    pub residual: bool,
    /// L2-normalise the final node embeddings (Simple-HGN's third
    /// enhancement).
    pub l2_normalize: bool,
    /// Include learnable edge-type embeddings in attention (Eq. 2). With
    /// this off the encoder degrades to multi-head GAT — the paper's
    /// starting point and our ablation baseline.
    pub edge_type_attention: bool,
    /// Add self-loop messages with a dedicated pseudo edge type.
    pub add_self_loops: bool,
    /// Attention-residual blending `β ∈ [0, 1)`: layer `l`'s attention is
    /// `(1-β)·softmax(score) + β·α^{(l-1)}` (the released Simple-HGN's
    /// fourth trick; `0` disables).
    pub attn_residual: f32,
    /// Link-score decoder.
    pub decoder: Decoder,
}

impl Default for HgnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 16,
            num_layers: 2,
            num_heads: 2,
            edge_emb_dim: 8,
            negative_slope: 0.05,
            dropout: 0.0,
            residual: true,
            l2_normalize: true,
            edge_type_attention: true,
            add_self_loops: true,
            attn_residual: 0.0,
            decoder: Decoder::DotProduct,
        }
    }
}

impl HgnConfig {
    /// The paper's Simple-HGN configuration: 3 layers, 3 heads.
    pub fn paper_default() -> Self {
        Self {
            hidden_dim: 16,
            num_layers: 3,
            num_heads: 3,
            ..Self::default()
        }
    }

    /// Vanilla GAT ablation: no edge-type information in attention, dot
    /// decoder.
    pub fn gat(&self) -> Self {
        Self {
            edge_type_attention: false,
            decoder: Decoder::DotProduct,
            ..self.clone()
        }
    }

    /// Output embedding width (`heads * hidden` — heads are concatenated).
    pub fn out_dim(&self) -> usize {
        self.num_heads * self.hidden_dim
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden_dim == 0 || self.num_layers == 0 || self.num_heads == 0 {
            return Err("hidden_dim, num_layers and num_heads must be positive".into());
        }
        if self.edge_emb_dim == 0 && self.edge_type_attention {
            return Err("edge_emb_dim must be positive when edge_type_attention is on".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout must be in [0,1), got {}", self.dropout));
        }
        if !(0.0..1.0).contains(&self.attn_residual) {
            return Err(format!(
                "attn_residual must be in [0,1), got {}",
                self.attn_residual
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(HgnConfig::default().validate().is_ok());
        assert!(HgnConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn paper_default_is_three_by_three() {
        let c = HgnConfig::paper_default();
        assert_eq!(c.num_layers, 3);
        assert_eq!(c.num_heads, 3);
        assert_eq!(c.out_dim(), 48);
    }

    #[test]
    fn gat_ablation_disables_edge_attention() {
        let c = HgnConfig::default().gat();
        assert!(!c.edge_type_attention);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = HgnConfig {
            num_heads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = HgnConfig {
            dropout: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let mut c = HgnConfig {
            edge_emb_dim: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.edge_type_attention = false;
        assert!(c.validate().is_ok());
    }
}
