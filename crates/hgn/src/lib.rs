//! # fedda-hgn
//!
//! Simple-HGN (Lv et al., KDD 2021) and its GAT ablation, implemented from
//! scratch on the `fedda-tensor` autodiff tape — the heterogeneous graph
//! neural network the FedDA paper federates.
//!
//! * [`HgnConfig`] / [`Decoder`] — architecture hyper-parameters, including
//!   the paper's 3-layer / 3-head default and a GAT ablation switch;
//! * [`GraphView`] — precomputed, tape-ready message-passing arrays for one
//!   heterograph;
//! * [`SimpleHgn`] — the encoder (edge-type-aware attention, pre-activation
//!   residuals, L2-normalised outputs) and decoders (dot product /
//!   DistMult), with edge-type embeddings and relation vectors registered
//!   as *disentangled* parameter units for FedDA's masking;
//! * [`train_local`] / [`evaluate`] — the `ClientUpdate` loop of
//!   Algorithm 1 and the ROC-AUC / MRR evaluation protocol.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod classifier;
mod config;
mod model;
mod predictor;
mod rgcn;
mod trainer;
mod view;

pub use classifier::NodeClassifier;
pub use config::{Decoder, HgnConfig};
pub use model::SimpleHgn;
pub use predictor::LinkPredictor;
pub use rgcn::{Rgcn, RgcnConfig};
pub use trainer::{
    evaluate, evaluate_detailed, train_local, train_local_penalized, DetailedEvalResult,
    EvalResult, Optimizer, Penalty, TrainConfig, TrainStats,
};
pub use view::GraphView;
