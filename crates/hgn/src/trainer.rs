//! Local training and evaluation of a Simple-HGN link predictor.
//!
//! This is the `ClientUpdate` inner loop of Algorithm 1: split the local
//! positives into batches of size `B`, pair each with sampled negatives,
//! and run `E` epochs of gradient steps. Evaluation computes the paper's
//! two metrics (ROC-AUC and MRR) on held-out edges.

use crate::predictor::LinkPredictor;
use crate::view::GraphView;
use fedda_hetgraph::{LinkExample, LinkSampler};
use fedda_metrics::{mrr, roc_auc, RankQuery};
use fedda_tensor::{Adam, Graph, ParamSet, Sgd, TapeBindings};
use rand::Rng;
use std::sync::Arc;

/// Optimiser choice for local updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Optimizer {
    /// Plain SGD (the FedAvg paper's local update).
    Sgd,
    /// Adam (what Simple-HGN's released code uses).
    Adam,
}

/// Local-training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Local epochs per round (`E` in Algorithm 1).
    pub local_epochs: usize,
    /// Mini-batch size (`B`); positives per batch before negatives.
    pub batch_size: usize,
    /// Learning rate (paper: 5e-4 with Adam at full scale).
    pub lr: f32,
    /// Negative samples per positive for the training loss.
    pub negatives_per_positive: usize,
    /// Gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Optimiser for local updates.
    pub optimizer: Optimizer,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            local_epochs: 1,
            batch_size: 4096,
            lr: 1e-2,
            negatives_per_positive: 1,
            grad_clip: 5.0,
            optimizer: Optimizer::Adam,
        }
    }
}

/// Summary of one local training call.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainStats {
    /// Mean loss over all batches.
    pub mean_loss: f32,
    /// Number of gradient steps taken.
    pub steps: usize,
}

/// A differentiable penalty added to the local objective at every gradient
/// step — the client-side seam federated regularisers (FedProx, FedDyn)
/// plug into.
///
/// The penalised objective is
/// `L(θ) + μ/2·‖θ − θ_ref‖² + ⟨linear, θ⟩`, so each step's gradient gains
/// `μ·(θ − θ_ref) + linear`. The penalty gradient is applied *after* the
/// task gradients accumulate and *before* gradient clipping, so the clip
/// bounds the full (regularised) update direction.
#[derive(Clone, Copy, Debug)]
pub struct Penalty<'a> {
    /// Proximal coefficient `μ ≥ 0` (FedProx's μ, FedDyn's α).
    pub prox_mu: f32,
    /// Anchor `θ_ref` of the proximal term — normally the round's broadcast
    /// parameters. Must have the same unit layout as the trained set.
    pub reference: &'a ParamSet,
    /// Optional linear-term gradient in [`ParamSet::flatten`] order, added
    /// verbatim to every step's gradient (FedDyn's `−∇̂ᵢ` state).
    pub linear: Option<&'a [f32]>,
}

/// Add the penalty gradient `μ·(θ − θ_ref) + linear` to every unit's
/// accumulated gradient.
fn apply_penalty_grads(params: &mut ParamSet, penalty: &Penalty<'_>) {
    if let Some(linear) = penalty.linear {
        assert_eq!(
            linear.len(),
            params.num_scalars(),
            "linear penalty must be one value per scalar in flatten order"
        );
    }
    let ids: Vec<_> = params.ids().collect();
    let mut offset = 0usize;
    for id in ids {
        let extra: Vec<f32> = {
            let theta = params.get(id).value().as_slice();
            let reference = penalty.reference.get(id).value().as_slice();
            assert_eq!(theta.len(), reference.len(), "penalty reference layout");
            theta
                .iter()
                .zip(reference)
                .enumerate()
                .map(|(k, (&t, &r))| {
                    let lin = penalty.linear.map_or(0.0, |l| l[offset + k]);
                    penalty.prox_mu * (t - r) + lin
                })
                .collect()
        };
        let grad = params.get_mut(id).grad_mut().as_mut_slice();
        for (g, e) in grad.iter_mut().zip(&extra) {
            *g += e;
        }
        offset += extra.len();
    }
}

/// Run `E` local epochs of link-prediction training on one graph.
///
/// `positives` is the client's local task (a biased client passes only its
/// specialised types, per §6.1); message passing always uses the full local
/// graph `view`.
pub fn train_local<R: Rng>(
    model: &dyn LinkPredictor,
    params: &mut ParamSet,
    view: &GraphView,
    sampler: &LinkSampler<'_>,
    positives: &[LinkExample],
    config: &TrainConfig,
    rng: &mut R,
) -> TrainStats {
    train_local_penalized(model, params, view, sampler, positives, config, None, rng)
}

/// [`train_local`] with an optional [`Penalty`] on the objective.
///
/// With `penalty: None` this is bit-identical to [`train_local`] — the
/// penalty branch adds no RNG draws and no float operations when absent.
#[allow(clippy::too_many_arguments)]
pub fn train_local_penalized<R: Rng>(
    model: &dyn LinkPredictor,
    params: &mut ParamSet,
    view: &GraphView,
    sampler: &LinkSampler<'_>,
    positives: &[LinkExample],
    config: &TrainConfig,
    penalty: Option<&Penalty<'_>>,
    rng: &mut R,
) -> TrainStats {
    assert!(config.local_epochs > 0, "local_epochs must be positive");
    if positives.is_empty() {
        return TrainStats::default();
    }
    let mut adam = Adam::new(config.lr);
    let sgd = Sgd::new(config.lr);
    let mut total_loss = 0.0f64;
    let mut steps = 0usize;
    for _epoch in 0..config.local_epochs {
        let mut examples = sampler.with_negatives(positives, config.negatives_per_positive, rng);
        let batches = LinkSampler::batches(&mut examples, config.batch_size.max(1), rng);
        for batch in &batches {
            let mut graph = Graph::with_capacity(256);
            let mut bindings = TapeBindings::new();
            let dropout = model.dropout_prob() > 0.0;
            let emb = if dropout {
                model.encode_nodes(
                    &mut graph,
                    &mut bindings,
                    params,
                    view,
                    Some(rng as &mut dyn rand::RngCore),
                )
            } else {
                model.encode_nodes(&mut graph, &mut bindings, params, view, None)
            };
            let logits = model.score_examples(&mut graph, &mut bindings, params, emb, batch);
            let targets: Vec<f32> = batch
                .iter()
                .map(|e| if e.label { 1.0 } else { 0.0 })
                .collect();
            let loss = graph.bce_with_logits(logits, Arc::new(targets));
            total_loss += f64::from(graph.value(loss).get(0, 0));
            graph.backward(loss);
            params.zero_grads();
            bindings.accumulate_grads(&graph, params);
            if let Some(pen) = penalty {
                apply_penalty_grads(params, pen);
            }
            if config.grad_clip > 0.0 {
                params.clip_grad_norm(config.grad_clip);
            }
            match config.optimizer {
                Optimizer::Adam => adam.step(params),
                Optimizer::Sgd => sgd.step(params),
            }
            steps += 1;
        }
    }
    TrainStats {
        mean_loss: (total_loss / steps.max(1) as f64) as f32,
        steps,
    }
}

/// Link-prediction evaluation result.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalResult {
    /// ROC-AUC over positives and sampled negatives.
    pub roc_auc: f64,
    /// Mean reciprocal rank of each positive against its negatives.
    pub mrr: f64,
    /// Positives evaluated.
    pub num_positives: usize,
}

/// Evaluate on held-out positives: each is scored against
/// `negatives_per_positive` type-respecting corruptions.
///
/// Message passing uses `view` (normally the *training* graph — scoring
/// test edges through a graph that contains them leaks labels).
pub fn evaluate<R: Rng + ?Sized>(
    model: &dyn LinkPredictor,
    params: &ParamSet,
    view: &GraphView,
    sampler: &LinkSampler<'_>,
    test_positives: &[LinkExample],
    negatives_per_positive: usize,
    rng: &mut R,
) -> EvalResult {
    assert!(
        negatives_per_positive > 0,
        "need at least one negative per positive"
    );
    if test_positives.is_empty() {
        return EvalResult::default();
    }
    let examples = sampler.with_negatives(test_positives, negatives_per_positive, rng);
    let logits = model.logits(params, view, &examples);
    let labels: Vec<bool> = examples.iter().map(|e| e.label).collect();
    let auc = roc_auc(&logits, &labels);
    // Examples are laid out positive-first per group by `with_negatives`.
    let group = 1 + negatives_per_positive;
    let queries: Vec<RankQuery> = logits
        .chunks(group)
        .map(|chunk| RankQuery {
            positive: chunk[0],
            negatives: chunk[1..].to_vec(),
        })
        .collect();
    EvalResult {
        roc_auc: auc,
        mrr: mrr(&queries),
        num_positives: test_positives.len(),
    }
}

/// Extended evaluation: overall metrics plus a per-edge-type breakdown —
/// the fairness view (does the global model serve rare link types?).
#[derive(Clone, Debug, Default)]
pub struct DetailedEvalResult {
    /// Overall metrics.
    pub overall: EvalResult,
    /// Hits@1 over the ranking queries.
    pub hits_at_1: f64,
    /// Hits@3 over the ranking queries.
    pub hits_at_3: f64,
    /// Average precision over all scored examples.
    pub average_precision: f64,
    /// ROC-AUC per edge type (label, value, positive count).
    pub auc_by_edge_type: fedda_metrics::GroupedMetric,
}

/// Evaluate with per-edge-type breakdowns and extra ranking metrics.
pub fn evaluate_detailed<R: Rng + ?Sized>(
    model: &dyn LinkPredictor,
    params: &ParamSet,
    view: &GraphView,
    sampler: &LinkSampler<'_>,
    test_positives: &[LinkExample],
    negatives_per_positive: usize,
    rng: &mut R,
) -> DetailedEvalResult {
    assert!(
        negatives_per_positive > 0,
        "need at least one negative per positive"
    );
    if test_positives.is_empty() {
        return DetailedEvalResult::default();
    }
    let examples = sampler.with_negatives(test_positives, negatives_per_positive, rng);
    let logits = model.logits(params, view, &examples);
    let labels: Vec<bool> = examples.iter().map(|e| e.label).collect();
    let auc = roc_auc(&logits, &labels);
    let group = 1 + negatives_per_positive;
    let queries: Vec<RankQuery> = logits
        .chunks(group)
        .map(|chunk| RankQuery {
            positive: chunk[0],
            negatives: chunk[1..].to_vec(),
        })
        .collect();

    // Per-edge-type AUC: slice the flat example/logit arrays by type.
    let schema = sampler.graph().schema();
    let mut by_type = Vec::new();
    for t in schema.edge_type_ids() {
        let (mut scores, mut labs) = (Vec::new(), Vec::new());
        for (e, &s) in examples.iter().zip(&logits) {
            if e.etype == t {
                scores.push(s);
                labs.push(e.label);
            }
        }
        let n_pos = labs.iter().filter(|&&l| l).count();
        let value = if n_pos > 0 && n_pos < labs.len() {
            roc_auc(&scores, &labs)
        } else {
            0.5
        };
        by_type.push((schema.edge_type(t).name.clone(), value, n_pos));
    }

    DetailedEvalResult {
        overall: EvalResult {
            roc_auc: auc,
            mrr: mrr(&queries),
            num_positives: test_positives.len(),
        },
        hits_at_1: fedda_metrics::hits_at_k(&queries, 1),
        hits_at_3: fedda_metrics::hits_at_k(&queries, 3),
        average_precision: fedda_metrics::average_precision(&logits, &labels),
        auc_by_edge_type: fedda_metrics::GroupedMetric::new(by_type),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HgnConfig;
    use crate::SimpleHgn;
    use fedda_data::{amazon_like, PresetOptions};
    use fedda_hetgraph::split::split_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let opts = PresetOptions {
            scale: 0.004,
            seed: 3,
            ..Default::default()
        };
        let g = amazon_like(&opts).graph;
        let mut rng = StdRng::seed_from_u64(0);
        let split = split_edges(&g, 0.2, &mut rng);
        let cfg = HgnConfig {
            hidden_dim: 8,
            num_layers: 2,
            num_heads: 2,
            ..Default::default()
        };
        let (model, mut params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&split.train, cfg.add_self_loops);
        let train_sampler = LinkSampler::new(&split.train);
        let test_sampler = LinkSampler::new(&split.test);
        let positives = train_sampler.all_positives();
        let test_pos = test_sampler.all_positives();

        let before = evaluate(
            &model,
            &params,
            &view,
            &train_sampler,
            &test_pos,
            5,
            &mut rng,
        );
        let tc = TrainConfig {
            local_epochs: 30,
            lr: 5e-3,
            ..Default::default()
        };
        let stats = train_local(
            &model,
            &mut params,
            &view,
            &train_sampler,
            &positives,
            &tc,
            &mut rng,
        );
        assert!(stats.steps >= 30);
        let after = evaluate(
            &model,
            &params,
            &view,
            &train_sampler,
            &test_pos,
            5,
            &mut rng,
        );
        assert!(
            after.roc_auc > 0.60,
            "trained AUC should clearly beat chance, got {:.3} (before {:.3})",
            after.roc_auc,
            before.roc_auc
        );
        assert!(after.roc_auc > before.roc_auc + 0.03);
        assert!(after.mrr > 0.0 && after.mrr <= 1.0);
    }

    #[test]
    fn empty_positives_are_a_no_op() {
        let opts = PresetOptions {
            scale: 0.002,
            seed: 3,
            ..Default::default()
        };
        let g = amazon_like(&opts).graph;
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = HgnConfig::default();
        let (model, mut params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&g, cfg.add_self_loops);
        let sampler = LinkSampler::new(&g);
        let before = params.flatten();
        let stats = train_local(
            &model,
            &mut params,
            &view,
            &sampler,
            &[],
            &TrainConfig::default(),
            &mut rng,
        );
        assert_eq!(stats.steps, 0);
        assert_eq!(params.flatten(), before);
        let eval = evaluate(&model, &params, &view, &sampler, &[], 3, &mut rng);
        assert_eq!(eval.num_positives, 0);
    }

    #[test]
    fn detailed_evaluation_breaks_down_by_edge_type() {
        let opts = PresetOptions {
            scale: 0.004,
            seed: 3,
            ..Default::default()
        };
        let g = amazon_like(&opts).graph;
        let mut rng = StdRng::seed_from_u64(0);
        let split = split_edges(&g, 0.2, &mut rng);
        let cfg = HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 1,
            ..Default::default()
        };
        let (model, params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&split.train, cfg.add_self_loops);
        let sampler = LinkSampler::new(&split.train);
        let test_sampler = LinkSampler::new(&split.test);
        let test_pos = test_sampler.all_positives();
        let detail = evaluate_detailed(&model, &params, &view, &sampler, &test_pos, 4, &mut rng);
        assert_eq!(detail.auc_by_edge_type.groups.len(), 2);
        let support: usize = detail
            .auc_by_edge_type
            .groups
            .iter()
            .map(|(_, _, n)| n)
            .sum();
        assert_eq!(support, test_pos.len());
        assert!((0.0..=1.0).contains(&detail.hits_at_1));
        assert!(detail.hits_at_1 <= detail.hits_at_3 + 1e-12);
        assert!((0.0..=1.0).contains(&detail.average_precision));
        assert!(detail.overall.roc_auc.is_finite());
        // empty input is safe
        let empty = evaluate_detailed(&model, &params, &view, &sampler, &[], 4, &mut rng);
        assert_eq!(empty.overall.num_positives, 0);
    }

    #[test]
    fn sgd_optimizer_also_trains() {
        let opts = PresetOptions {
            scale: 0.002,
            seed: 3,
            ..Default::default()
        };
        let g = amazon_like(&opts).graph;
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 1,
            ..Default::default()
        };
        let (model, mut params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&g, cfg.add_self_loops);
        let sampler = LinkSampler::new(&g);
        let positives = sampler.all_positives();
        let before = params.flatten();
        let tc = TrainConfig {
            optimizer: Optimizer::Sgd,
            local_epochs: 2,
            ..Default::default()
        };
        train_local(
            &model,
            &mut params,
            &view,
            &sampler,
            &positives,
            &tc,
            &mut rng,
        );
        assert_ne!(params.flatten(), before, "SGD must move the parameters");
        assert!(!params.has_non_finite());
    }
}
