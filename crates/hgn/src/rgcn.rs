//! R-GCN (Schlichtkrull et al., 2018) — a second heterograph encoder, used
//! to demonstrate that the FedDA framework "can fit any HGN model" (§6.1).
//!
//! Layer update:
//! `h_v^{(l+1)} = σ( Σ_r Σ_{u ∈ N_r(v)} (1 / c_{v,r}) W_r^{(l)} h_u
//!                 + W_0^{(l)} h_v )`
//! with a per-relation weight matrix `W_r` and mean normalisation
//! `c_{v,r} = |N_r(v)|`.
//!
//! R-GCN is an especially natural fit for FedDA's parameter activation: the
//! *per-relation weight matrices* are exactly the disentangled units — a
//! client that holds no edges of relation `r` contributes nothing to
//! `W_r`, so the server quickly learns to stop requesting it.

use crate::config::Decoder;
use crate::predictor::LinkPredictor;
use crate::view::GraphView;
use fedda_hetgraph::{LinkExample, Schema};
use fedda_tensor::{init, Graph, Matrix, ParamId, ParamMeta, ParamSet, TapeBindings, Var};
use rand::{Rng, RngCore};
use std::sync::Arc;

/// R-GCN hyper-parameters.
#[derive(Clone, Debug)]
pub struct RgcnConfig {
    /// Hidden width of every layer.
    pub hidden_dim: usize,
    /// Number of R-GCN layers.
    pub num_layers: usize,
    /// L2-normalise the final embeddings (keeps the decoder calibration
    /// identical to Simple-HGN's).
    pub l2_normalize: bool,
    /// Link-score decoder.
    pub decoder: Decoder,
}

impl Default for RgcnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 32,
            num_layers: 2,
            l2_normalize: true,
            decoder: Decoder::DotProduct,
        }
    }
}

struct RgcnLayer {
    /// Per-relation weights (disentangled units).
    w_rel: Vec<ParamId>,
    /// Self-connection weight.
    w_self: ParamId,
    /// Bias row.
    bias: ParamId,
}

/// The R-GCN model. Parameter layout, like [`crate::SimpleHgn`]'s, is
/// deterministic given schema + config, so federated averaging is
/// meaningful.
pub struct Rgcn {
    config: RgcnConfig,
    in_proj: Vec<ParamId>,
    layers: Vec<RgcnLayer>,
    dec_rel: Vec<ParamId>,
    dec_scale: ParamId,
    dec_bias: ParamId,
    num_edge_types: usize,
}

impl Rgcn {
    /// Build the model for a schema and initialise a fresh parameter set.
    pub fn init_params<R: Rng + ?Sized>(
        schema: &Schema,
        config: &RgcnConfig,
        rng: &mut R,
    ) -> (Self, ParamSet) {
        assert!(
            config.hidden_dim > 0 && config.num_layers > 0,
            "invalid RgcnConfig"
        );
        let mut ps = ParamSet::new();
        let d = config.hidden_dim;
        let num_edge_types = schema.num_edge_types();

        let in_proj = schema
            .node_type_ids()
            .map(|t| {
                let meta = schema.node_type(t);
                ps.add(
                    format!("rgcn.in_proj.{}", meta.name),
                    init::xavier_uniform(rng, meta.feat_dim, d),
                )
            })
            .collect();

        let layers = (0..config.num_layers)
            .map(|l| {
                let w_rel = (0..num_edge_types)
                    .map(|t| {
                        ps.add_with_meta(
                            format!("rgcn.l{l}.W_rel.t{t}"),
                            init::xavier_uniform(rng, d, d),
                            ParamMeta::per_edge_type(t),
                        )
                    })
                    .collect();
                let w_self = ps.add(format!("rgcn.l{l}.W_self"), init::xavier_uniform(rng, d, d));
                let bias = ps.add(format!("rgcn.l{l}.bias"), Matrix::zeros(1, d));
                RgcnLayer {
                    w_rel,
                    w_self,
                    bias,
                }
            })
            .collect();

        let mut dec_rel = Vec::new();
        if config.decoder == Decoder::DistMult {
            for t in 0..num_edge_types {
                dec_rel.push(ps.add_with_meta(
                    format!("rgcn.dec.rel.t{t}"),
                    Matrix::full(1, d, 1.0),
                    ParamMeta::per_edge_type(t),
                ));
            }
        }
        let dec_scale = ps.add("rgcn.dec.scale", Matrix::full(1, 1, 4.0));
        let dec_bias = ps.add("rgcn.dec.bias", Matrix::zeros(1, 1));

        (
            Self {
                config: config.clone(),
                in_proj,
                layers,
                dec_rel,
                dec_scale,
                dec_bias,
                num_edge_types,
            },
            ps,
        )
    }

    /// The configuration.
    pub fn config(&self) -> &RgcnConfig {
        &self.config
    }

    /// Split the view's flat message arrays into per-relation `(src, dst,
    /// inv_degree)` triples. Self-loop pseudo-edges (type ≥ real types) are
    /// ignored — R-GCN has an explicit self weight instead.
    #[allow(clippy::type_complexity)]
    fn per_relation_edges(&self, view: &GraphView) -> Vec<(Arc<Vec<u32>>, Arc<Vec<u32>>, Matrix)> {
        let mut srcs: Vec<Vec<u32>> = vec![Vec::new(); self.num_edge_types];
        let mut dsts: Vec<Vec<u32>> = vec![Vec::new(); self.num_edge_types];
        for ((&s, &d), &t) in view.src.iter().zip(view.dst.iter()).zip(view.etype.iter()) {
            let t = t as usize;
            if t < self.num_edge_types {
                srcs[t].push(s);
                dsts[t].push(d);
            }
        }
        srcs.into_iter()
            .zip(dsts)
            .map(|(src, dst)| {
                let mut deg = vec![0u32; view.num_nodes];
                for &d in &dst {
                    deg[d as usize] += 1;
                }
                let inv: Vec<f32> = dst
                    .iter()
                    .map(|&d| 1.0 / deg[d as usize].max(1) as f32)
                    .collect();
                (Arc::new(src), Arc::new(dst), Matrix::col_vector(inv))
            })
            .collect()
    }
}

impl LinkPredictor for Rgcn {
    fn encode_nodes(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        view: &GraphView,
        _dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        // Input projection per node type, assembled via scatter-add.
        let mut h = {
            let mut acc: Option<Var> = None;
            for (t, feats) in view.type_features.iter().enumerate() {
                let x = graph.input(feats.clone());
                let w = bindings.leaf(graph, params, self.in_proj[t]);
                let xw = graph.matmul(x, w);
                let scattered =
                    graph.scatter_add_rows(xw, view.type_global_ids[t].clone(), view.num_nodes);
                acc = Some(match acc {
                    Some(a) => graph.add(a, scattered),
                    None => scattered,
                });
            }
            // fedda-lint: allow(panic-path, reason = "Schema guarantees >= 1 node type for any graph that reaches the encoder; the loop above always assigns acc")
            acc.expect("at least one node type")
        };

        let relations = self.per_relation_edges(view);
        for layer in &self.layers {
            let w_self = bindings.leaf(graph, params, layer.w_self);
            let mut out = graph.matmul(h, w_self);
            for (t, (src, dst, inv_deg)) in relations.iter().enumerate() {
                if src.is_empty() {
                    continue;
                }
                let w_r = bindings.leaf(graph, params, layer.w_rel[t]);
                let hw = graph.matmul(h, w_r);
                let msgs = graph.gather_rows(hw, src.clone());
                let inv = graph.input(inv_deg.clone());
                let normalized = graph.mul_col_broadcast(msgs, inv);
                let agg = graph.scatter_add_rows(normalized, dst.clone(), view.num_nodes);
                out = graph.add(out, agg);
            }
            let bias = bindings.leaf(graph, params, layer.bias);
            let biased = graph.add_row_broadcast(out, bias);
            h = graph.elu(biased, 1.0);
        }

        if self.config.l2_normalize {
            h = graph.l2_normalize_rows(h, 1e-12);
        }
        h
    }

    fn score_examples(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        embeddings: Var,
        examples: &[LinkExample],
    ) -> Var {
        assert!(!examples.is_empty(), "score_examples: no examples");
        let src: Arc<Vec<u32>> = Arc::new(examples.iter().map(|e| e.src).collect());
        let dst: Arc<Vec<u32>> = Arc::new(examples.iter().map(|e| e.dst).collect());
        let o_src = graph.gather_rows(embeddings, src);
        let o_dst = graph.gather_rows(embeddings, dst);
        let raw = match self.config.decoder {
            Decoder::DotProduct => graph.row_dot(o_src, o_dst),
            Decoder::DistMult => {
                let rel_rows: Vec<Var> = self
                    .dec_rel
                    .iter()
                    .map(|&id| bindings.leaf(graph, params, id))
                    .collect();
                let rel = graph.concat_rows(&rel_rows);
                let etypes: Arc<Vec<u32>> =
                    Arc::new(examples.iter().map(|e| e.etype.0 as u32).collect());
                let per_example = graph.gather_rows(rel, etypes);
                let modulated = graph.mul(o_src, per_example);
                graph.row_dot(modulated, o_dst)
            }
        };
        let scale = bindings.leaf(graph, params, self.dec_scale);
        let bias = bindings.leaf(graph, params, self.dec_bias);
        let scaled = graph.matmul(raw, scale);
        graph.add_row_broadcast(scaled, bias)
    }

    fn uses_self_loops(&self) -> bool {
        // R-GCN models the self-connection with an explicit W_self term.
        false
    }

    fn name(&self) -> &'static str {
        "R-GCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedda_data::{dblp_like, PresetOptions};
    use fedda_hetgraph::LinkSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Rgcn, ParamSet, GraphView, fedda_hetgraph::HeteroGraph) {
        let g = dblp_like(&PresetOptions {
            scale: 0.0015,
            seed: 2,
            ..Default::default()
        })
        .graph;
        let cfg = RgcnConfig {
            hidden_dim: 8,
            num_layers: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let (model, params) = Rgcn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&g, model.uses_self_loops());
        (model, params, view, g)
    }

    #[test]
    fn rgcn_registers_per_relation_disentangled_units() {
        let (model, params, _, g) = setup();
        // 2 layers × 5 relations = 10 disentangled W_rel units
        assert_eq!(params.num_disentangled(), 2 * g.schema().num_edge_types());
        assert_eq!(model.num_edge_types, 5);
    }

    #[test]
    fn rgcn_forward_shapes_and_norms() {
        let (model, params, view, _) = setup();
        let mut graph = Graph::new();
        let mut tb = TapeBindings::new();
        let emb = model.encode_nodes(&mut graph, &mut tb, &params, &view, None);
        let (n, d) = graph.shape(emb);
        assert_eq!(n, view.num_nodes);
        assert_eq!(d, model.config().hidden_dim);
        assert!(!graph.value(emb).has_non_finite());
        for row in graph.value(emb).rows_iter() {
            let norm: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn rgcn_gradients_flow_through_relation_weights() {
        let (model, mut params, view, g) = setup();
        let sampler = LinkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let pos = sampler.all_positives();
        let examples = sampler.with_negatives(&pos[..8.min(pos.len())], 1, &mut rng);
        let mut graph = Graph::new();
        let mut tb = TapeBindings::new();
        let emb = model.encode_nodes(&mut graph, &mut tb, &params, &view, None);
        let logits = model.score_examples(&mut graph, &mut tb, &params, emb, &examples);
        let targets: Vec<f32> = examples
            .iter()
            .map(|e| if e.label { 1.0 } else { 0.0 })
            .collect();
        let loss = graph.bce_with_logits(logits, Arc::new(targets));
        graph.backward(loss);
        params.zero_grads();
        tb.accumulate_grads(&graph, &mut params);
        // at least one per-relation weight received gradient
        let got_rel_grad = params
            .iter()
            .any(|(_, p)| p.meta().disentangled && p.grad().norm_sq() > 0.0);
        assert!(got_rel_grad, "no gradient reached any W_rel");
        assert!(!params.has_non_finite());
    }

    #[test]
    fn rgcn_mean_normalisation_uses_in_degrees() {
        let (model, _, view, _) = setup();
        let rels = model.per_relation_edges(&view);
        assert_eq!(rels.len(), 5);
        for (src, dst, inv) in &rels {
            assert_eq!(src.len(), dst.len());
            assert_eq!(inv.rows(), dst.len());
            // each inverse degree is in (0, 1]
            assert!(inv.as_slice().iter().all(|&x| x > 0.0 && x <= 1.0));
            // grouping by destination, the inverse degrees of a node's
            // incoming edges sum to 1
            let mut sums = std::collections::BTreeMap::new();
            for (&d, &w) in dst.iter().zip(inv.as_slice()) {
                *sums.entry(d).or_insert(0.0f32) += w;
            }
            for (&node, &s) in &sums {
                assert!((s - 1.0).abs() < 1e-4, "node {node} weights sum to {s}");
            }
        }
    }
}
