//! Node classification on top of any heterograph encoder — the standard
//! companion task to link prediction on HGN benchmarks (the Simple-HGN
//! paper evaluates both; FedDA's paper focuses on link prediction, so this
//! lives here as the natural extension).
//!
//! A [`NodeClassifier`] wraps a [`LinkPredictor`]'s encoder with a linear
//! softmax head and trains with multi-class cross-entropy on labelled
//! nodes.

use crate::predictor::LinkPredictor;
use crate::view::GraphView;
use fedda_metrics::{accuracy, macro_f1};
use fedda_tensor::{init, Adam, Graph, Matrix, ParamId, ParamSet, TapeBindings, Var};
use rand::Rng;
use std::sync::Arc;

/// A linear softmax head over node embeddings.
pub struct NodeClassifier<M: LinkPredictor> {
    encoder: M,
    head_w: ParamId,
    head_b: ParamId,
    num_classes: usize,
}

impl<M: LinkPredictor> NodeClassifier<M> {
    /// Wrap an encoder whose parameters live in `params`, adding the head's
    /// parameters to the same set (so the whole classifier is one
    /// federable `ParamSet`).
    ///
    /// `embed_dim` must match the encoder's output width.
    pub fn new<R: Rng + ?Sized>(
        encoder: M,
        params: &mut ParamSet,
        embed_dim: usize,
        num_classes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        let head_w = params.add(
            "clf.head.W",
            init::xavier_uniform(rng, embed_dim, num_classes),
        );
        let head_b = params.add("clf.head.b", Matrix::zeros(1, num_classes));
        Self {
            encoder,
            head_w,
            head_b,
            num_classes,
        }
    }

    /// The wrapped encoder.
    pub fn encoder(&self) -> &M {
        &self.encoder
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Class logits for the given nodes, on an existing tape.
    pub fn logits_on(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        view: &GraphView,
        nodes: &Arc<Vec<u32>>,
    ) -> Var {
        let emb = self
            .encoder
            .encode_nodes(graph, bindings, params, view, None);
        let selected = graph.gather_rows(emb, nodes.clone());
        let w = bindings.leaf(graph, params, self.head_w);
        let b = bindings.leaf(graph, params, self.head_b);
        let scores = graph.matmul(selected, w);
        graph.add_row_broadcast(scores, b)
    }

    /// Argmax class predictions for the given nodes.
    pub fn predict(&self, params: &ParamSet, view: &GraphView, nodes: &[u32]) -> Vec<u32> {
        let mut graph = Graph::new();
        let mut bindings = TapeBindings::new();
        let nodes = Arc::new(nodes.to_vec());
        let logits = self.logits_on(&mut graph, &mut bindings, params, view, &nodes);
        graph
            .value(logits)
            .rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Full-batch training on labelled nodes; returns the final epoch loss.
    pub fn train(
        &self,
        params: &mut ParamSet,
        view: &GraphView,
        nodes: &[u32],
        labels: &[u32],
        epochs: usize,
        lr: f32,
    ) -> f32 {
        assert_eq!(nodes.len(), labels.len(), "one label per node");
        assert!(!nodes.is_empty(), "no labelled nodes");
        debug_assert!(labels.iter().all(|&l| (l as usize) < self.num_classes));
        let nodes = Arc::new(nodes.to_vec());
        let labels = Arc::new(labels.to_vec());
        let mut adam = Adam::new(lr);
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut graph = Graph::new();
            let mut bindings = TapeBindings::new();
            let logits = self.logits_on(&mut graph, &mut bindings, params, view, &nodes);
            let loss = graph.cross_entropy_rows(logits, labels.clone());
            last = graph.value(loss).get(0, 0);
            graph.backward(loss);
            params.zero_grads();
            bindings.accumulate_grads(&graph, params);
            params.clip_grad_norm(5.0);
            adam.step(params);
        }
        last
    }

    /// Accuracy and macro-F1 on labelled nodes.
    pub fn evaluate(
        &self,
        params: &ParamSet,
        view: &GraphView,
        nodes: &[u32],
        labels: &[u32],
    ) -> (f64, f64) {
        let pred = self.predict(params, view, nodes);
        (
            accuracy(&pred, labels),
            macro_f1(&pred, labels, self.num_classes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HgnConfig, SimpleHgn};
    use fedda_data::{dblp_like, PresetOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classifier_learns_planted_communities() {
        let generated = dblp_like(&PresetOptions {
            scale: 0.002,
            seed: 8,
            ..Default::default()
        });
        let g = &generated.graph;
        let cfg = HgnConfig {
            hidden_dim: 8,
            num_layers: 2,
            num_heads: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let (encoder, mut params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let clf = NodeClassifier::new(
            encoder,
            &mut params,
            cfg.out_dim(),
            generated.communities_per_type,
            &mut rng,
        );
        let view = GraphView::new(g, cfg.add_self_loops);

        // Classify authors (node type 0) into their planted communities;
        // 70/30 train/test split on node index parity-ish.
        let authors = g.nodes().nodes_of_type(fedda_hetgraph::NodeTypeId(0));
        let labels: Vec<u32> = authors
            .iter()
            .map(|&v| generated.communities[v as usize])
            .collect();
        let cut = authors.len() * 7 / 10;
        let (train_nodes, test_nodes) = authors.split_at(cut);
        let (train_labels, test_labels) = labels.split_at(cut);

        let baseline =
            fedda_metrics::majority_baseline(test_labels, generated.communities_per_type);
        let loss0 = clf.train(&mut params, &view, train_nodes, train_labels, 1, 5e-3);
        let loss_end = clf.train(&mut params, &view, train_nodes, train_labels, 60, 5e-3);
        assert!(
            loss_end < loss0,
            "loss must decrease ({loss_end} !< {loss0})"
        );
        let (acc, f1) = clf.evaluate(&params, &view, test_nodes, test_labels);
        assert!(
            acc > baseline + 0.1,
            "classifier ({acc:.3}) must clearly beat the majority baseline ({baseline:.3})"
        );
        assert!(f1 > 0.0 && f1 <= 1.0);
    }

    #[test]
    fn predict_returns_valid_classes() {
        let generated = dblp_like(&PresetOptions {
            scale: 0.0015,
            seed: 9,
            ..Default::default()
        });
        let g = &generated.graph;
        let cfg = HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 1,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let (encoder, mut params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let clf = NodeClassifier::new(encoder, &mut params, cfg.out_dim(), 4, &mut rng);
        let view = GraphView::new(g, cfg.add_self_loops);
        let nodes: Vec<u32> = (0..10).collect();
        let pred = clf.predict(&params, &view, &nodes);
        assert_eq!(pred.len(), 10);
        assert!(pred.iter().all(|&c| c < 4));
        assert_eq!(clf.num_classes(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let generated = dblp_like(&PresetOptions {
            scale: 0.0015,
            seed: 9,
            ..Default::default()
        });
        let cfg = HgnConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let (encoder, mut params) =
            SimpleHgn::init_params(generated.graph.schema(), &cfg, &mut rng);
        let _ = NodeClassifier::new(encoder, &mut params, cfg.out_dim(), 1, &mut rng);
    }
}
