//! The model abstraction the FL layer trains: any encoder/decoder pair
//! that embeds a heterograph's nodes and scores candidate links.
//!
//! The paper notes its "proposed FedDA framework can fit any HGN model"
//! (§6.1); this trait is that seam. [`crate::SimpleHgn`] and [`crate::Rgcn`]
//! both implement it, and `fedda-fl` drives either without code changes —
//! all FedDA needs from a model is a structurally-stable [`ParamSet`] whose
//! disentangled units are tagged.

use crate::view::GraphView;
use fedda_hetgraph::LinkExample;
use fedda_tensor::{Graph, ParamSet, TapeBindings, Var};
use rand::RngCore;

/// A trainable link-prediction model over heterographs.
///
/// Implementations must be deterministic given their inputs (any dropout
/// randomness comes through the `dropout_rng` argument), and must build the
/// same parameter layout on every client so federated averaging is
/// meaningful.
pub trait LinkPredictor: Send + Sync {
    /// Embed every node of the view into `[num_nodes, out_dim]`.
    ///
    /// `dropout_rng = Some(_)` selects training mode (feature dropout where
    /// the model supports it); `None` is deterministic inference.
    fn encode_nodes(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        view: &GraphView,
        dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var;

    /// Score link examples against node embeddings; returns logits `[B, 1]`.
    fn score_examples(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        embeddings: Var,
        examples: &[LinkExample],
    ) -> Var;

    /// Whether graph views for this model should include self-loops.
    fn uses_self_loops(&self) -> bool;

    /// Feature-dropout probability during training (0 disables).
    fn dropout_prob(&self) -> f32 {
        0.0
    }

    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Inference convenience: encode + score on a fresh tape, returning raw
    /// logits.
    fn logits(&self, params: &ParamSet, view: &GraphView, examples: &[LinkExample]) -> Vec<f32> {
        let mut graph = Graph::new();
        let mut bindings = TapeBindings::new();
        let emb = self.encode_nodes(&mut graph, &mut bindings, params, view, None);
        let scores = self.score_examples(&mut graph, &mut bindings, params, emb, examples);
        graph.value(scores).as_slice().to_vec()
    }
}

impl LinkPredictor for crate::SimpleHgn {
    fn encode_nodes(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        view: &GraphView,
        dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        match dropout_rng {
            Some(rng) => self.encode(graph, bindings, params, view, Some(rng)),
            None => self.encode::<dyn RngCore>(graph, bindings, params, view, None),
        }
    }

    fn score_examples(
        &self,
        graph: &mut Graph,
        bindings: &mut TapeBindings,
        params: &ParamSet,
        embeddings: Var,
        examples: &[LinkExample],
    ) -> Var {
        self.score_links(graph, bindings, params, embeddings, examples)
    }

    fn uses_self_loops(&self) -> bool {
        self.config().add_self_loops
    }

    fn dropout_prob(&self) -> f32 {
        self.config().dropout
    }

    fn name(&self) -> &'static str {
        if self.config().edge_type_attention {
            "Simple-HGN"
        } else {
            "GAT"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HgnConfig, SimpleHgn};
    use fedda_data::{amazon_like, PresetOptions};
    use fedda_hetgraph::LinkSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trait_logits_match_inherent_infer_logits() {
        let g = amazon_like(&PresetOptions {
            scale: 0.002,
            seed: 1,
            ..Default::default()
        })
        .graph;
        let cfg = HgnConfig {
            hidden_dim: 4,
            num_layers: 1,
            num_heads: 1,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let (model, params) = SimpleHgn::init_params(g.schema(), &cfg, &mut rng);
        let view = GraphView::new(&g, cfg.add_self_loops);
        let sampler = LinkSampler::new(&g);
        let pos = sampler.all_positives();
        let examples = &pos[..4.min(pos.len())];
        let via_trait = LinkPredictor::logits(&model, &params, &view, examples);
        let inherent = model.infer_logits(&params, &view, examples);
        assert_eq!(via_trait, inherent);
        assert_eq!(LinkPredictor::name(&model), "Simple-HGN");
        assert!(model.uses_self_loops());
    }
}
