//! Precomputed message-passing view of a heterograph.
//!
//! The encoder runs many forward passes over the same topology (every local
//! epoch of every round), so the flattened edge arrays, softmax segments and
//! per-type feature matrices are computed once per client graph and shared
//! via `Arc` with every tape.

use fedda_hetgraph::{HeteroGraph, NodeTypeId};
use fedda_tensor::{Matrix, Segments};
use std::sync::Arc;

/// Immutable, tape-ready view of one heterograph.
pub struct GraphView {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Source node of each message edge.
    pub src: Arc<Vec<u32>>,
    /// Destination node of each message edge.
    pub dst: Arc<Vec<u32>>,
    /// Edge type of each message edge (self-loops use the pseudo type).
    pub etype: Arc<Vec<u32>>,
    /// Softmax segments: one segment per destination node.
    pub segments: Arc<Segments>,
    /// Number of message edge types (real types + self-loop pseudo type).
    pub num_message_types: usize,
    /// Number of real edge types in the schema.
    pub num_edge_types: usize,
    /// Per node type: raw feature matrix `[count_t, feat_dim_t]`.
    pub type_features: Vec<Matrix>,
    /// Per node type: global ids of its nodes (row order of
    /// `type_features`).
    pub type_global_ids: Vec<Arc<Vec<u32>>>,
}

impl GraphView {
    /// Build the view for a graph.
    ///
    /// # Panics
    /// Panics if the graph has no message edges (an encoder over an
    /// edgeless graph is degenerate; enable self-loops to avoid this).
    pub fn new(graph: &HeteroGraph, add_self_loops: bool) -> Self {
        let me = graph.message_edges(add_self_loops);
        assert!(!me.is_empty(), "GraphView: graph has no message edges");
        let num_nodes = graph.num_nodes();
        let segments = Arc::new(Segments::new(me.dst.clone(), num_nodes));
        let schema = graph.schema();
        let mut type_features = Vec::with_capacity(schema.num_node_types());
        let mut type_global_ids = Vec::with_capacity(schema.num_node_types());
        for t in schema.node_type_ids() {
            let d = schema.node_type(t).feat_dim;
            let count = graph.nodes().num_nodes_of_type(t);
            type_features.push(Matrix::from_vec(
                count,
                d,
                graph.nodes().features_of_type(t).to_vec(),
            ));
            type_global_ids.push(Arc::new(graph.nodes().nodes_of_type(t).to_vec()));
        }
        Self {
            num_nodes,
            src: Arc::new(me.src),
            dst: Arc::new(me.dst),
            etype: Arc::new(me.etype),
            segments,
            num_message_types: me.num_message_types,
            num_edge_types: schema.num_edge_types(),
            type_features,
            type_global_ids,
        }
    }

    /// Number of message edges.
    pub fn num_messages(&self) -> usize {
        self.src.len()
    }

    /// Node types present.
    pub fn num_node_types(&self) -> usize {
        self.type_features.len()
    }

    /// Feature dimension of a node type.
    pub fn feat_dim(&self, t: NodeTypeId) -> usize {
        self.type_features[t.index()].cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedda_data::{amazon_like, PresetOptions};

    #[test]
    fn view_matches_graph() {
        let g = amazon_like(&PresetOptions {
            scale: 0.01,
            seed: 2,
            ..Default::default()
        })
        .graph;
        let view = GraphView::new(&g, true);
        assert_eq!(view.num_nodes, g.num_nodes());
        assert_eq!(view.num_node_types(), 1);
        assert_eq!(view.num_edge_types, 2);
        assert_eq!(view.num_message_types, 3);
        // symmetric types are mirrored + self loops
        assert!(view.num_messages() > g.num_edges());
        assert_eq!(view.src.len(), view.dst.len());
        assert_eq!(view.src.len(), view.etype.len());
    }

    #[test]
    fn self_loops_can_be_disabled() {
        let g = amazon_like(&PresetOptions {
            scale: 0.01,
            seed: 2,
            ..Default::default()
        })
        .graph;
        let with = GraphView::new(&g, true);
        let without = GraphView::new(&g, false);
        assert_eq!(with.num_messages(), without.num_messages() + g.num_nodes());
        assert_eq!(without.num_message_types, 2);
    }
}
