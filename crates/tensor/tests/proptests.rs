//! Property-based tests over the tensor kernels and autodiff invariants.

use fedda_tensor::{Graph, Matrix, ParamSet, Segments};
use proptest::prelude::*;
use std::sync::Arc;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_tn_matches_naive(
        k in 1usize..6, m in 1usize..6, n in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_vec(k, m, (0..k*m).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let b = Matrix::from_vec(k, n, (0..k*n).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let fast = a.matmul_tn(&b);
        let naive = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_nt_matches_naive(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_vec(m, k, (0..m*k).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let b = Matrix::from_vec(n, k, (0..n*k).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let fast = a.matmul_nt(&b);
        let naive = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..20, k in 1usize..20, n in 1usize..20,
        seed in any::<u64>(),
    ) {
        use fedda_tensor::gemm;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |r: usize, c: usize| Matrix::from_vec(r, c, (0..r*c).map(|_| {
            // sprinkle exact zeros so the naive kernel's zero-skip is hit
            if rng.gen_range(0u8..4) == 0 { 0.0 } else { rng.gen_range(-2.0f32..2.0) }
        }).collect());
        let a = fill(m, k);
        let at = fill(k, m); // A stored transposed, for the tn kernel
        let b = fill(k, n);
        let bt = fill(n, k); // B stored transposed, for the nt kernel
        // The blocked kernels replay the naive per-element operation order,
        // so agreement is exact (bitwise), not approximate — below AND above
        // the dispatch threshold.
        prop_assert_eq!(gemm::gemm_nn(&a, &b), a.matmul_naive(&b));
        prop_assert_eq!(gemm::gemm_tn(&at, &b), at.matmul_tn_naive(&b));
        prop_assert_eq!(gemm::gemm_nt(&a, &bt), a.matmul_nt_naive(&bt));
    }

    #[test]
    fn dispatched_matmul_is_exact_above_threshold(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // 65³ > BLOCK_THRESHOLD = 64³, so Matrix::matmul takes the blocked
        // path; the naive reference must still match exactly. (ISSUE asks
        // ≤ 1e-4 relative here — bit-equality is strictly stronger.)
        let d = 65usize;
        let a = Matrix::from_vec(d, d, (0..d*d).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let b = Matrix::from_vec(d, d, (0..d*d).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        prop_assert_eq!(a.matmul(&b), a.matmul_naive(&b));
    }

    #[test]
    fn add_is_commutative(m in matrix_strategy(6), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (r, c) = m.shape();
        let other = Matrix::from_vec(r, c, (0..r*c).map(|_| rng.gen_range(-5.0f32..5.0)).collect());
        prop_assert_eq!(m.add(&other), other.add(&m));
    }

    #[test]
    fn scatter_of_gather_preserves_mass(rows in 1usize..8, cols in 1usize..5, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Matrix::from_vec(rows, cols,
            (0..rows*cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect());
        // A permutation gather followed by the inverse scatter is identity-sum.
        let mut idx: Vec<u32> = (0..rows as u32).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let gathered = m.gather_rows(&idx);
        let scattered = gathered.scatter_add_rows(&idx, rows);
        for (x, y) in scattered.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn segment_softmax_rows_sum_to_one(
        n_rows in 1usize..20, n_segs in 1usize..5, seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seg_of_row: Vec<u32> = (0..n_rows).map(|_| rng.gen_range(0..n_segs as u32)).collect();
        let x = Matrix::col_vector((0..n_rows).map(|_| rng.gen_range(-30.0f32..30.0)).collect());
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let segs = Arc::new(Segments::new(seg_of_row.clone(), n_segs));
        let y = g.segment_softmax(xv, segs);
        let out = g.value(y).as_slice();
        // all outputs are probabilities
        for &v in out {
            prop_assert!((0.0..=1.0 + 1e-5).contains(&v));
        }
        // each non-empty segment sums to 1
        let mut sums = vec![0.0f32; n_segs];
        let mut seen = vec![false; n_segs];
        for (i, &s) in seg_of_row.iter().enumerate() {
            sums[s as usize] += out[i];
            seen[s as usize] = true;
        }
        for (s, &present) in seen.iter().enumerate() {
            if present {
                prop_assert!((sums[s] - 1.0).abs() < 1e-4, "segment {} sums to {}", s, sums[s]);
            }
        }
    }

    #[test]
    fn l2_normalize_output_has_unit_or_zero_rows(m in matrix_strategy(6)) {
        let mut g = Graph::new();
        let v = g.leaf(m);
        let y = g.l2_normalize_rows(v, 1e-12);
        for row in g.value(y).rows_iter() {
            let norm: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm < 1.0 + 1e-4);
        }
    }

    #[test]
    fn flatten_load_flat_roundtrip(m in matrix_strategy(6), m2 in matrix_strategy(6)) {
        let mut ps = ParamSet::new();
        ps.add("a", m);
        ps.add("b", m2);
        let flat = ps.flatten();
        let mut ps2 = ps.clone();
        for (_, p) in ps2.iter_mut() {
            p.value_mut().fill(0.0);
        }
        ps2.load_flat(&flat);
        prop_assert_eq!(ps2.flatten(), flat);
    }

    #[test]
    fn unit_l2_distance_to_self_is_zero(m in matrix_strategy(6)) {
        let mut ps = ParamSet::new();
        ps.add("a", m);
        let d = ps.unit_l2_distances(&ps.clone());
        prop_assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn bce_loss_is_nonnegative(
        n in 1usize..20, seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let logits = Matrix::row_vector((0..n).map(|_| rng.gen_range(-20.0f32..20.0)).collect());
        let targets: Vec<f32> = (0..n).map(|_| if rng.gen::<bool>() { 1.0 } else { 0.0 }).collect();
        let mut g = Graph::new();
        let x = g.leaf(logits);
        let loss = g.bce_with_logits(x, Arc::new(targets));
        let v = g.value(loss).get(0, 0);
        prop_assert!(v >= 0.0);
        prop_assert!(v.is_finite());
    }

    #[test]
    fn backward_grads_are_finite_for_bounded_inputs(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Matrix::from_vec(3, 3, (0..9).map(|_| rng.gen_range(-5.0f32..5.0)).collect());
        let w = Matrix::from_vec(3, 2, (0..6).map(|_| rng.gen_range(-5.0f32..5.0)).collect());
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let wv = g.leaf(w);
        let y = g.matmul(xv, wv);
        let a = g.elu(y, 1.0);
        let s = g.sigmoid(a);
        let loss = g.mean_all(s);
        g.backward(loss);
        prop_assert!(!g.grad(xv).unwrap().has_non_finite());
        prop_assert!(!g.grad(wv).unwrap().has_non_finite());
    }
}
