//! Finite-difference gradient checks for every differentiable op on the
//! tape. Each check builds a scalar loss from a set of leaf matrices,
//! compares the analytic gradient against central differences, and fails on
//! relative error above a tolerance.

use fedda_tensor::{Graph, Matrix, Segments, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Build a loss from leaves, return (loss value, analytic grads).
fn run<F>(inputs: &[Matrix], f: F) -> (f32, Vec<Matrix>)
where
    F: Fn(&mut Graph, &[Var]) -> Var,
{
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|m| g.leaf(m.clone())).collect();
    let loss = f(&mut g, &vars);
    assert_eq!(g.shape(loss), (1, 1), "gradcheck loss must be scalar");
    let value = g.value(loss).get(0, 0);
    g.backward(loss);
    let grads = vars
        .iter()
        .map(|&v| {
            g.grad(v).cloned().unwrap_or_else(|| {
                let (r, c) = g.shape(v);
                Matrix::zeros(r, c)
            })
        })
        .collect();
    (value, grads)
}

/// Central-difference check of `f` around `inputs`.
fn gradcheck<F>(inputs: &[Matrix], f: F, tol: f32)
where
    F: Fn(&mut Graph, &[Var]) -> Var + Copy,
{
    let (_, analytic) = run(inputs, f);
    let h = 1e-3f32;
    for (pi, input) in inputs.iter().enumerate() {
        for i in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[pi].as_mut_slice()[i] += h;
            let (lp, _) = run(&plus, f);
            let mut minus = inputs.to_vec();
            minus[pi].as_mut_slice()[i] -= h;
            let (lm, _) = run(&minus, f);
            let numeric = (lp - lm) / (2.0 * h);
            let exact = analytic[pi].as_slice()[i];
            let denom = numeric.abs().max(exact.abs()).max(1.0);
            assert!(
                (numeric - exact).abs() / denom < tol,
                "param {pi} element {i}: numeric {numeric} vs analytic {exact}"
            );
        }
    }
}

fn randn(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    let data = (0..r * c).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    Matrix::from_vec(r, c, data)
}

/// Avoid values near a kink (for leaky_relu / elu at 0).
fn randn_away_from_zero(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    let data = (0..r * c)
        .map(|_| {
            let v: f32 = rng.gen_range(0.1f32..1.0);
            if rng.gen::<bool>() {
                v
            } else {
                -v
            }
        })
        .collect();
    Matrix::from_vec(r, c, data)
}

#[test]
fn grad_matmul() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = randn(&mut rng, 3, 4);
    let b = randn(&mut rng, 4, 2);
    gradcheck(
        &[a, b],
        |g, v| {
            let y = g.matmul(v[0], v[1]);
            g.sum_all(y)
        },
        1e-2,
    );
}

#[test]
fn grad_matmul_weighted() {
    // A non-uniform upstream gradient (dY varies per element) exercises the
    // matmul backward paths for real: dA = dY · Bᵀ runs matmul_nt and
    // dB = Aᵀ · dY runs matmul_tn. `sum_all` alone would feed them an
    // all-ones dY, which both transposed kernels pass trivially.
    let mut rng = StdRng::seed_from_u64(21);
    let a = randn(&mut rng, 3, 5);
    let b = randn(&mut rng, 5, 4);
    let w = randn(&mut rng, 3, 4);
    gradcheck(
        &[a, b, w],
        |g, v| {
            let y = g.matmul(v[0], v[1]);
            let weighted = g.mul(y, v[2]);
            let sq = g.mul(weighted, weighted);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_matmul_chain() {
    // Two chained matmuls: the inner product's gradient is itself a matmul
    // output, so matmul_nt/matmul_tn run on non-trivial dY matrices and
    // their results feed further backward steps.
    let mut rng = StdRng::seed_from_u64(22);
    let a = randn(&mut rng, 2, 4);
    let b = randn(&mut rng, 4, 3);
    let c = randn(&mut rng, 3, 2);
    gradcheck(
        &[a, b, c],
        |g, v| {
            let ab = g.matmul(v[0], v[1]);
            let abc = g.matmul(ab, v[2]);
            let sq = g.mul(abc, abc);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_add_sub_mul() {
    let mut rng = StdRng::seed_from_u64(2);
    let a = randn(&mut rng, 2, 3);
    let b = randn(&mut rng, 2, 3);
    gradcheck(
        &[a.clone(), b.clone()],
        |g, v| {
            let s = g.add(v[0], v[1]);
            let d = g.sub(s, v[1]);
            let m = g.mul(d, v[1]);
            let sq = g.mul(m, m);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_add_row_broadcast() {
    let mut rng = StdRng::seed_from_u64(3);
    let a = randn(&mut rng, 3, 4);
    let bias = randn(&mut rng, 1, 4);
    gradcheck(
        &[a, bias],
        |g, v| {
            let y = g.add_row_broadcast(v[0], v[1]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_mul_col_broadcast() {
    let mut rng = StdRng::seed_from_u64(4);
    let a = randn(&mut rng, 3, 4);
    let c = randn(&mut rng, 3, 1);
    gradcheck(
        &[a, c],
        |g, v| {
            let y = g.mul_col_broadcast(v[0], v[1]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_mul_row_broadcast() {
    let mut rng = StdRng::seed_from_u64(5);
    let a = randn(&mut rng, 3, 4);
    let r = randn(&mut rng, 1, 4);
    gradcheck(
        &[a, r],
        |g, v| {
            let y = g.mul_row_broadcast(v[0], v[1]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_scale_and_mean() {
    let mut rng = StdRng::seed_from_u64(6);
    let a = randn(&mut rng, 2, 5);
    gradcheck(
        &[a],
        |g, v| {
            let y = g.scale(v[0], 2.5);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_leaky_relu() {
    let mut rng = StdRng::seed_from_u64(7);
    let a = randn_away_from_zero(&mut rng, 3, 3);
    gradcheck(
        &[a],
        |g, v| {
            let y = g.leaky_relu(v[0], 0.2);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_elu() {
    let mut rng = StdRng::seed_from_u64(8);
    let a = randn_away_from_zero(&mut rng, 3, 3);
    gradcheck(
        &[a],
        |g, v| {
            let y = g.elu(v[0], 1.0);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_sigmoid() {
    let mut rng = StdRng::seed_from_u64(9);
    let a = randn(&mut rng, 2, 4);
    gradcheck(
        &[a],
        |g, v| {
            let y = g.sigmoid(v[0]);
            g.sum_all(y)
        },
        1e-2,
    );
}

#[test]
fn grad_concat_cols() {
    let mut rng = StdRng::seed_from_u64(10);
    let a = randn(&mut rng, 3, 2);
    let b = randn(&mut rng, 3, 3);
    gradcheck(
        &[a, b],
        |g, v| {
            let y = g.concat_cols(&[v[0], v[1]]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_concat_rows() {
    let mut rng = StdRng::seed_from_u64(18);
    let a = randn(&mut rng, 1, 3);
    let b = randn(&mut rng, 2, 3);
    gradcheck(
        &[a, b],
        |g, v| {
            let y = g.concat_rows(&[v[0], v[1]]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_gather_scatter() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = randn(&mut rng, 4, 3);
    let idx = Arc::new(vec![0u32, 2, 2, 3, 1]);
    let idx2 = Arc::new(vec![1u32, 1, 0, 2, 2]);
    gradcheck(
        &[a],
        |g, v| {
            let gathered = g.gather_rows(v[0], idx.clone());
            let scattered = g.scatter_add_rows(gathered, idx2.clone(), 3);
            let sq = g.mul(scattered, scattered);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_segment_softmax() {
    let mut rng = StdRng::seed_from_u64(12);
    let a = randn(&mut rng, 6, 1);
    let segs = Arc::new(Segments::new(vec![0, 0, 1, 1, 1, 2], 3));
    // weight the outputs so the gradient is not trivially zero
    let w = randn(&mut rng, 6, 1);
    gradcheck(
        &[a, w],
        |g, v| {
            let sm = g.segment_softmax(v[0], segs.clone());
            let weighted = g.mul(sm, v[1]);
            let sq = g.mul(weighted, weighted);
            g.sum_all(sq)
        },
        2e-2,
    );
}

#[test]
fn grad_l2_normalize_rows() {
    let mut rng = StdRng::seed_from_u64(13);
    // keep rows away from zero norm
    let mut a = randn(&mut rng, 3, 4);
    for x in a.as_mut_slice() {
        *x += if *x >= 0.0 { 0.5 } else { -0.5 };
    }
    let w = randn(&mut rng, 3, 4);
    gradcheck(
        &[a, w],
        |g, v| {
            let y = g.l2_normalize_rows(v[0], 1e-12);
            let p = g.mul(y, v[1]);
            g.sum_all(p)
        },
        2e-2,
    );
}

#[test]
fn grad_row_sum_and_row_dot() {
    let mut rng = StdRng::seed_from_u64(14);
    let a = randn(&mut rng, 3, 4);
    let b = randn(&mut rng, 3, 4);
    gradcheck(
        &[a, b],
        |g, v| {
            let rs = g.row_sum(v[0]);
            let rd = g.row_dot(v[0], v[1]);
            let both = g.mul(rs, rd);
            g.sum_all(both)
        },
        1e-2,
    );
}

#[test]
fn grad_bce_with_logits() {
    let mut rng = StdRng::seed_from_u64(15);
    let a = randn(&mut rng, 1, 6);
    let targets = Arc::new(vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    gradcheck(&[a], |g, v| g.bce_with_logits(v[0], targets.clone()), 1e-2);
}

#[test]
fn grad_dropout_with_mask() {
    let mut rng = StdRng::seed_from_u64(16);
    let a = randn(&mut rng, 2, 4);
    let mask = Arc::new(vec![2.0, 0.0, 2.0, 2.0, 0.0, 2.0, 0.0, 2.0]);
    gradcheck(
        &[a],
        |g, v| {
            let y = g.dropout_with_mask(v[0], mask.clone());
            let sq = g.mul(y, y);
            g.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_softmax_rows() {
    let mut rng = StdRng::seed_from_u64(19);
    let a = randn(&mut rng, 3, 4);
    let w = randn(&mut rng, 3, 4);
    gradcheck(
        &[a, w],
        |g, v| {
            let sm = g.softmax_rows(v[0]);
            let weighted = g.mul(sm, v[1]);
            let sq = g.mul(weighted, weighted);
            g.sum_all(sq)
        },
        2e-2,
    );
}

#[test]
fn grad_cross_entropy_rows() {
    let mut rng = StdRng::seed_from_u64(20);
    let a = randn(&mut rng, 4, 3);
    let targets = Arc::new(vec![0u32, 2, 1, 2]);
    gradcheck(
        &[a],
        |g, v| g.cross_entropy_rows(v[0], targets.clone()),
        1e-2,
    );
}

#[test]
fn grad_composite_attention_like_network() {
    // A miniature single-head GAT layer: this exercises the exact op
    // composition Simple-HGN uses, end to end.
    let mut rng = StdRng::seed_from_u64(17);
    let h = randn(&mut rng, 4, 3); // 4 nodes, dim 3
    let w = randn(&mut rng, 3, 2); // projection
    let attn = randn(&mut rng, 2, 1); // attention vector
    let src = Arc::new(vec![0u32, 1, 2, 3, 0]);
    let dst = Arc::new(vec![1u32, 2, 3, 0, 2]);
    let segs = Arc::new(Segments::new(vec![1, 2, 3, 0, 2], 4));
    gradcheck(
        &[h, w, attn],
        |g, v| {
            let wh = g.matmul(v[0], v[1]); // [4,2]
            let hs = g.gather_rows(wh, src.clone()); // [5,2]
            let hd = g.gather_rows(wh, dst.clone()); // [5,2]
            let cat = g.add(hs, hd); // stand-in for a^T[hs||hd]
            let scores = g.matmul(cat, v[2]); // [5,1]
            let act = g.leaky_relu(scores, 0.2);
            let alpha = g.segment_softmax(act, segs.clone());
            let msg = g.mul_col_broadcast(hs, alpha);
            let agg = g.scatter_add_rows(msg, dst.clone(), 4);
            let out = g.elu(agg, 1.0);
            let normed = g.l2_normalize_rows(out, 1e-12);
            let sq = g.mul(normed, normed);
            g.sum_all(sq)
        },
        3e-2,
    );
}
