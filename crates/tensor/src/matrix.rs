//! Dense, row-major `f32` matrix — the storage type underneath every
//! autodiff node in this crate.
//!
//! All tensors in the FedDA reproduction are rank-2 (vectors are `1 × n`
//! matrices); this keeps shape logic simple and the kernels flat and
//! vectorisable. Kernels never allocate inside inner loops, and the
//! mutating variants (`add_assign`, `scale_assign`, …) exist so optimisers
//! and gradient accumulation can reuse buffers.

use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// ```
/// use fedda_tensor::Matrix;
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
/// assert_eq!(a.matmul(&b).as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Create a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Create a `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            data,
            rows: 1,
            cols,
        }
    }

    /// Create a `n × 1` column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self {
            data,
            rows,
            cols: 1,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return its flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices. Yields exactly `rows()` items, even
    /// when `cols() == 0` (each item is then the empty slice) — a plain
    /// `chunks_exact(cols)` would yield zero rows for an `m × 0` matrix.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        let cols = self.cols;
        (0..self.rows).map(move |r| &self.data[r * cols..(r + 1) * cols])
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Matrix transpose (allocates).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self @ other` — plain matrix multiply.
    ///
    /// Large products (see [`crate::gemm::use_blocked`]) run on the
    /// parallel cache-blocked kernel; small ones use the naive loop. Both
    /// paths return bit-identical results (see the `gemm` module docs).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        if crate::gemm::use_blocked(self.rows, self.cols, other.cols) {
            crate::gemm::gemm_nn(self, other)
        } else {
            self.matmul_naive(other)
        }
    }

    /// Single-threaded i-k-j matmul — the reference kernel the blocked path
    /// must match bit-for-bit, and the fast path for small shapes.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // i-k-j loop order: the inner loop walks contiguous memory in both
        // `other` and `out`, which is what lets LLVM vectorise it.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                // fedda-lint: allow(float-eq, reason = "exact-zero sparsity skip: adding a*b with a == 0.0 is a bitwise no-op, so skipping preserves bit-identity")
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materialising the transpose (large
    /// products dispatch to the blocked kernel, which does materialise it —
    /// the `O(m·k)` copy is noise next to the `O(m·k·n)` product).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        if crate::gemm::use_blocked(self.cols, self.rows, other.cols) {
            crate::gemm::gemm_tn(self, other)
        } else {
            self.matmul_tn_naive(other)
        }
    }

    /// Single-threaded p-outer `self^T @ other` reference kernel.
    pub fn matmul_tn_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                // fedda-lint: allow(float-eq, reason = "exact-zero sparsity skip: adding a*b with a == 0.0 is a bitwise no-op, so skipping preserves bit-identity")
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materialising the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        if crate::gemm::use_blocked(self.rows, self.cols, other.rows) {
            crate::gemm::gemm_nt(self, other)
        } else {
            self.matmul_nt_naive(other)
        }
    }

    /// Single-threaded dot-product `self @ other^T` reference kernel.
    pub fn matmul_nt_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += scale * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self *= scalar`.
    pub fn scale_assign(&mut self, scalar: f32) {
        self.data.iter_mut().for_each(|x| *x *= scalar);
    }

    /// Elementwise sum (allocates).
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Elementwise difference (allocates).
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Elementwise product (allocates).
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "mul shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scalar product (allocates).
    pub fn scale(&self, scalar: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(scalar);
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Maximum absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Gather rows by index: `out[i] = self[idx[i]]`.
    ///
    /// # Panics
    /// Panics (via bounds checks) when an index is out of range.
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &j) in idx.iter().enumerate() {
            let j = j as usize;
            assert!(
                j < self.rows,
                "gather_rows: index {} out of {} rows",
                j,
                self.rows
            );
            out.row_mut(i).copy_from_slice(self.row(j));
        }
        out
    }

    /// Scatter-add rows: `out[idx[i]] += self[i]`, with `out` having
    /// `out_rows` rows.
    pub fn scatter_add_rows(&self, idx: &[u32], out_rows: usize) -> Matrix {
        assert_eq!(
            idx.len(),
            self.rows,
            "scatter_add_rows: index count mismatch"
        );
        let mut out = Matrix::zeros(out_rows, self.cols);
        for (i, &j) in idx.iter().enumerate() {
            let j = j as usize;
            assert!(
                j < out_rows,
                "scatter_add_rows: index {} out of {} rows",
                j,
                out_rows
            );
            let src = self.row(i);
            for (o, &s) in out.row_mut(j).iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_iter_yields_every_row_of_zero_width_matrices() {
        // Regression: the old chunks(cols) implementation yielded zero rows
        // for any m×0 matrix, silently skipping rows in row-wise loops.
        let m = Matrix::zeros(3, 0);
        let rows: Vec<&[f32]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
        // 0×n and 0×0 still yield nothing.
        assert_eq!(Matrix::zeros(0, 4).rows_iter().count(), 0);
        assert_eq!(Matrix::zeros(0, 0).rows_iter().count(), 0);
        // Sane shape unchanged: rows come out in order with correct width.
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f32]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn constructors_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.norm_sq() - 30.0).abs() < 1e-6);
        assert!(!a.has_non_finite());
        let nan = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(nan.has_non_finite());
    }

    #[test]
    fn gather_and_scatter_are_adjoint_shapes() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = g.scatter_add_rows(&[2, 0, 2], 3);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 0.0, 0.0, 10.0, 12.0]);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_vec(1, 2, vec![2.0, 4.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn empty_matrix_mean_is_zero() {
        let m = Matrix::zeros(0, 4);
        assert_eq!(m.mean(), 0.0);
        assert!(m.is_empty());
    }
}
