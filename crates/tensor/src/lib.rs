//! # fedda-tensor
//!
//! A small, dependency-light dense tensor library with tape-based
//! reverse-mode automatic differentiation, purpose-built for the FedDA
//! reproduction (heterogeneous graph neural networks trained inside a
//! federated-learning simulator).
//!
//! The crate provides:
//!
//! * [`Matrix`] — dense row-major `f32` storage with the kernels the models
//!   need (matmul with fused transposes, gather/scatter, reductions);
//! * [`Graph`] / [`Var`] — a define-by-run autodiff tape whose op set covers
//!   GAT-style attention (segment softmax over incoming edges), residual
//!   connections, L2-normalised outputs, and binary-cross-entropy link
//!   prediction losses;
//! * [`ParamSet`] / [`Param`] — named parameter units with FL metadata
//!   (shared vs. per-edge-type "disentangled" units, the paper's `[N]` and
//!   `[N_d]` index sets);
//! * [`Sgd`] / [`Adam`] — optimisers over a `ParamSet`;
//! * [`init`] — seedable weight initialisers.
//!
//! Everything is deterministic given a seed: no thread-local RNGs, no
//! unordered hash iteration on numeric paths.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gemm;
pub mod init;
mod matrix;
mod optim;
mod param;
mod tape;

pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use param::{Param, ParamId, ParamMeta, ParamSet, TapeBindings};
pub use tape::{sigmoid_scalar, Graph, Segments, Var};
