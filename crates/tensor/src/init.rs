//! Weight initialisers.
//!
//! All initialisers take an explicit RNG so experiments are reproducible
//! end-to-end from a single seed (the FL harness derives one sub-seed per
//! client per round).

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols).max(1) as f32).sqrt();
    uniform(rng, rows, cols, -a, a)
}

/// Xavier/Glorot normal initialisation: `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let std = (2.0 / (rows + cols).max(1) as f32).sqrt();
    normal(rng, rows, cols, 0.0, std)
}

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Gaussian initialisation via Box–Muller (avoids a rand_distr dependency).
pub fn normal<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    mean: f32,
    std: f32,
) -> Matrix {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let (z0, z1) = box_muller(rng);
        data.push(mean + std * z0);
        if data.len() < n {
            data.push(mean + std * z1);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// One Box–Muller draw: two independent standard normals.
pub fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    // Guard against log(0).
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 64, 32);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x > -bound && x < bound));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = normal(&mut rng, 100, 100, 1.0, 2.0);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / (m.len() - 1) as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "var was {var}");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(42), 8, 8);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(42), 8, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn odd_element_count_normal() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = normal(&mut rng, 3, 3, 0.0, 1.0);
        assert_eq!(m.len(), 9);
        assert!(!m.has_non_finite());
    }
}
