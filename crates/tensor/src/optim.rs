//! Optimisers over a [`ParamSet`].
//!
//! Both optimisers follow the same contract: the training loop accumulates
//! gradients into the set (via [`crate::TapeBindings::accumulate_grads`]),
//! calls `step`, then `zero_grads`.

use crate::matrix::Matrix;
use crate::param::ParamSet;

/// Plain stochastic gradient descent with optional weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Apply one update: `w -= lr * (g + wd * w)`.
    pub fn step(&self, params: &mut ParamSet) {
        for (_, p) in params.iter_mut() {
            let wd = self.weight_decay;
            let lr = self.lr;
            // Read grad (cloned), then write value.
            let grad = p.grad().clone();
            let value = p.value_mut();
            for (w, &g) in value.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *w -= lr * (g + wd * *w);
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard hyper-parameters (`beta1=0.9`, `beta2=0.999`).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Reset the moment estimates (used when a client receives a fresh
    /// global model and should not carry momentum across rounds).
    pub fn reset_state(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|(_, p)| Matrix::zeros(p.value().rows(), p.value().cols()))
                .collect();
            self.v = params
                .iter()
                .map(|(_, p)| Matrix::zeros(p.value().rows(), p.value().cols()))
                .collect();
            self.t = 0;
        }
    }

    /// Apply one Adam update.
    pub fn step(&mut self, params: &mut ParamSet) {
        self.ensure_state(params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, (_, p)) in params.iter_mut().enumerate() {
            let grad = p.grad().clone();
            let value = p.value_mut();
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            for i in 0..grad.len() {
                let mut g = grad.as_slice()[i];
                // fedda-lint: allow(float-eq, reason = "config-flag check against the literal default 0.0, not a computed value; skipping the add keeps g bit-identical to the no-decay path")
                if self.weight_decay != 0.0 {
                    g += self.weight_decay * value.as_slice()[i];
                }
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSet;

    fn quadratic_grad(ps: &mut ParamSet) {
        // loss = 0.5 * ||w - 3||^2  =>  grad = w - 3
        let ids: Vec<_> = ps.ids().collect();
        for id in ids {
            let val = ps.get(id).value().clone();
            let g = ps.get_mut(id).grad_mut();
            for (gi, &wi) in g.as_mut_slice().iter_mut().zip(val.as_slice()) {
                *gi = wi - 3.0;
            }
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::row_vector(vec![0.0, 10.0]));
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            ps.zero_grads();
            quadratic_grad(&mut ps);
            opt.step(&mut ps);
        }
        for &w in ps.get(ps.id_of("w").unwrap()).value().as_slice() {
            assert!((w - 3.0).abs() < 1e-3, "w = {w}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::row_vector(vec![-5.0, 20.0]));
        let mut opt = Adam::new(0.3);
        for _ in 0..500 {
            ps.zero_grads();
            quadratic_grad(&mut ps);
            opt.step(&mut ps);
        }
        for &w in ps.get(ps.id_of("w").unwrap()).value().as_slice() {
            assert!((w - 3.0).abs() < 1e-2, "w = {w}");
        }
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::row_vector(vec![1.0]));
        let opt = Sgd {
            lr: 0.1,
            weight_decay: 0.5,
        };
        // zero gradient: only decay acts
        opt.step(&mut ps);
        let w = ps.get(ps.id_of("w").unwrap()).value().get(0, 0);
        assert!((w - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_reset_state_clears_momentum() {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::row_vector(vec![0.0]));
        let mut opt = Adam::new(0.1);
        ps.zero_grads();
        quadratic_grad(&mut ps);
        opt.step(&mut ps);
        opt.reset_state();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }
}
